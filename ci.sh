#!/usr/bin/env bash
# Repo CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Smoke logs land in CI_LOG_DIR when set (the GitHub workflow uploads it as
# an artifact on failure); otherwise in a throwaway tempdir.
if [ -n "${CI_LOG_DIR:-}" ]; then
    smoke_dir="$CI_LOG_DIR"
    mkdir -p "$smoke_dir"
else
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
fi

# Harness smoke gate: save a baseline then compare against it in the same
# environment. Tiny sizes, 1 rep; the huge relative tolerance means this
# asserts the registry -> stats -> baseline pipeline, never wall-clock.
./target/release/fun3d-bench run --suite smoke \
    --save-baseline "$smoke_dir/smoke.json" \
    --events-dir "$smoke_dir/runs" > "$smoke_dir/save.log"
./target/release/fun3d-bench run --suite smoke \
    --baseline "$smoke_dir/smoke.json" --tol-rel 1000 > "$smoke_dir/gate.log"
grep -q "overall:" "$smoke_dir/gate.log"

# Run inspection: `fun3d-report show` on a gate-written report must render
# the Figure 5 convergence table (from the sibling event stream) and the
# Table 3 phase breakdown; a self-diff must report zero regressions.
./target/release/fun3d-report show "$smoke_dir/runs/table1.json" > "$smoke_dir/show.log"
grep -q "Convergence (Figure 5)" "$smoke_dir/show.log"
grep -q "Phase breakdown (Table 3)" "$smoke_dir/show.log"
./target/release/fun3d-report diff "$smoke_dir/runs/table1.json" \
    "$smoke_dir/runs/table1.json" > "$smoke_dir/diff.log"
grep -q "regressions: 0" "$smoke_dir/diff.log"

# Threaded leg: the same workspace tests and smoke gate with a 2-thread
# team, so the _par kernels and their determinism contract run in CI.  The
# report must record the thread count, and a threaded self-diff must be
# clean (threading cannot perturb the metrics the gate compares).
FUN3D_THREADS=2 cargo test -q --workspace
./target/release/fun3d-bench run --suite smoke --threads 2 \
    --save-baseline "$smoke_dir/smoke-t2.json" \
    --events-dir "$smoke_dir/runs-t2" > "$smoke_dir/save-t2.log"
./target/release/fun3d-bench run --suite smoke --threads 2 \
    --baseline "$smoke_dir/smoke-t2.json" --tol-rel 1000 > "$smoke_dir/gate-t2.log"
grep -q "overall:" "$smoke_dir/gate-t2.log"
grep -q '"nthreads":"2"' "$smoke_dir/runs-t2/table1.json"
./target/release/fun3d-report diff "$smoke_dir/runs-t2/table1.json" \
    "$smoke_dir/runs-t2/table1.json" > "$smoke_dir/diff-t2.log"
grep -q "regressions: 0" "$smoke_dir/diff-t2.log"

echo "ci: all checks passed"
