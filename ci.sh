#!/usr/bin/env bash
# Repo CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check

# Harness smoke gate: save a baseline then compare against it in the same
# environment. Tiny sizes, 1 rep; the huge relative tolerance means this
# asserts the registry -> stats -> baseline pipeline, never wall-clock.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/fun3d-bench run --suite smoke \
    --save-baseline "$smoke_dir/smoke.json" > "$smoke_dir/save.log"
./target/release/fun3d-bench run --suite smoke \
    --baseline "$smoke_dir/smoke.json" --tol-rel 1000 > "$smoke_dir/gate.log"
grep -q "overall:" "$smoke_dir/gate.log"

echo "ci: all checks passed"
