#!/usr/bin/env bash
# Repo CI gate: build, test, lint, format. Run before every push.
#
# Knobs (all optional, for the split CI matrix):
#   CI_LINT_ONLY=1     run only the static checks (clippy/fmt/doc) and exit —
#                      the fast `lint` job of the workflow matrix.
#   CI_SKIP_LINT=1     skip those same checks — the `test` job sets this so
#                      the two jobs partition the work instead of repeating it.
#   CI_BASELINE_DIR=d  cross-commit gating: if d/smoke.json exists (restored
#                      from the previous main run), compare against it before
#                      refreshing it with this run's baseline.
set -euo pipefail
cd "$(dirname "$0")"

run_lint() {
    cargo clippy --workspace -- -D warnings
    cargo fmt --check
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet
}

if [ -n "${CI_LINT_ONLY:-}" ]; then
    run_lint
    echo "ci: lint checks passed"
    exit 0
fi

cargo build --release --workspace
cargo test -q --workspace
if [ -z "${CI_SKIP_LINT:-}" ]; then
    run_lint
fi

# Smoke logs land in CI_LOG_DIR when set (the GitHub workflow uploads it as
# an artifact on failure); otherwise in a throwaway tempdir.
if [ -n "${CI_LOG_DIR:-}" ]; then
    smoke_dir="$CI_LOG_DIR"
    mkdir -p "$smoke_dir"
else
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
fi

# Harness smoke gate: save a baseline then compare against it in the same
# environment. Tiny sizes, 1 rep; the huge relative tolerance means this
# asserts the registry -> stats -> baseline pipeline, never wall-clock.
./target/release/fun3d-bench run --suite smoke \
    --save-baseline "$smoke_dir/smoke.json" \
    --events-dir "$smoke_dir/runs" > "$smoke_dir/save.log"
./target/release/fun3d-bench run --suite smoke \
    --baseline "$smoke_dir/smoke.json" --tol-rel 1000 > "$smoke_dir/gate.log"
grep -q "overall:" "$smoke_dir/gate.log"

# Failure-path smoke: an injected 100x slowdown against the baseline just
# saved must make the gate exit nonzero and print REGRESSED verdicts — if
# this leg passes, a real regression cannot slip through a broken gate.
if FUN3D_BENCH_SLOWDOWN=100 ./target/release/fun3d-bench run --suite smoke \
    --baseline "$smoke_dir/smoke.json" --events-dir "$smoke_dir/runs-slow" \
    > "$smoke_dir/slowdown.log" 2>&1; then
    echo "ci: injected slowdown did not fail the gate"; exit 1
fi
grep -q "REGRESSED" "$smoke_dir/slowdown.log"
grep -q "overall: REGRESSED" "$smoke_dir/slowdown.log"

# Cross-commit gating: when the workflow restores the previous main run's
# baseline into CI_BASELINE_DIR, gate this commit against it (huge relative
# tolerance — shared runners are noisy; this asserts metric-set stability
# commit to commit, the MAD band catches true collapses), then refresh the
# directory so the next run compares against us.
if [ -n "${CI_BASELINE_DIR:-}" ]; then
    mkdir -p "$CI_BASELINE_DIR"
    if [ -f "$CI_BASELINE_DIR/smoke.json" ]; then
        ./target/release/fun3d-bench run --suite smoke \
            --baseline "$CI_BASELINE_DIR/smoke.json" --tol-rel 1000 \
            > "$smoke_dir/cross-commit.log"
        grep -q "overall:" "$smoke_dir/cross-commit.log"
    else
        echo "ci: no previous baseline in CI_BASELINE_DIR; seeding it"
    fi
    cp "$smoke_dir/smoke.json" "$CI_BASELINE_DIR/smoke.json"
fi

# Run inspection: `fun3d-report show` on a gate-written report must render
# the Figure 5 convergence table (from the sibling event stream) and the
# Table 3 phase breakdown; a self-diff must report zero regressions.
./target/release/fun3d-report show "$smoke_dir/runs/table1.json" > "$smoke_dir/show.log"
grep -q "Convergence (Figure 5)" "$smoke_dir/show.log"
grep -q "Phase breakdown (Table 3)" "$smoke_dir/show.log"
./target/release/fun3d-report diff "$smoke_dir/runs/table1.json" \
    "$smoke_dir/runs/table1.json" > "$smoke_dir/diff.log"
grep -q "regressions: 0" "$smoke_dir/diff.log"

# Threaded leg: the same workspace tests and smoke gate with a 2-thread
# team, so the _par kernels and their determinism contract run in CI.  The
# report must record the thread count, and a threaded self-diff must be
# clean (threading cannot perturb the metrics the gate compares).
FUN3D_THREADS=2 cargo test -q --workspace
./target/release/fun3d-bench run --suite smoke --threads 2 \
    --save-baseline "$smoke_dir/smoke-t2.json" \
    --events-dir "$smoke_dir/runs-t2" > "$smoke_dir/save-t2.log"
./target/release/fun3d-bench run --suite smoke --threads 2 \
    --baseline "$smoke_dir/smoke-t2.json" --tol-rel 1000 > "$smoke_dir/gate-t2.log"
grep -q "overall:" "$smoke_dir/gate-t2.log"
grep -q '"nthreads":"2"' "$smoke_dir/runs-t2/table1.json"
./target/release/fun3d-report diff "$smoke_dir/runs-t2/table1.json" \
    "$smoke_dir/runs-t2/table1.json" > "$smoke_dir/diff-t2.log"
grep -q "regressions: 0" "$smoke_dir/diff-t2.log"

# Profiling leg: the smoke suite with per-thread region profiling on at 2
# threads.  The spmv run must emit ParRegion events, achieved-bandwidth
# (gbps) metrics, and a renderable `fun3d-report profile` view with both
# the imbalance and roofline tables.
./target/release/fun3d-bench run --suite smoke --threads 2 --profile \
    --events-dir "$smoke_dir/runs-prof" > "$smoke_dir/gate-prof.log"
grep -q "overall:" "$smoke_dir/gate-prof.log"
grep -q '"ev":"par_region"' "$smoke_dir/runs-prof/spmv.events.jsonl"
grep -q 'gbps' "$smoke_dir/runs-prof/spmv.json"
grep -q '"par/spmv_csr"' "$smoke_dir/runs-prof/spmv.json"
./target/release/fun3d-report profile "$smoke_dir/runs-prof/spmv.json" \
    > "$smoke_dir/profile.log"
grep -q "load imbalance (Table 3)" "$smoke_dir/profile.log"
grep -q "Achieved bandwidth (Table 2)" "$smoke_dir/profile.log"
grep -q "spmv_csr" "$smoke_dir/profile.log"
# `show` must fold the imbalance summary in; pre-profile reports (earlier
# legs wrote them without --profile) must still render without it.
./target/release/fun3d-report show "$smoke_dir/runs-prof/spmv.json" > "$smoke_dir/show-prof.log"
grep -q "Parallel regions (2 threads)" "$smoke_dir/show-prof.log"
! grep -q "Parallel regions" "$smoke_dir/show.log"

# Micro-kernel identity leg: the Newton solve must produce bit-identical
# residual histories under all three FUN3D_BLOCK_KERNEL tiers (the JSON
# float encoding is shortest-round-trip, so string equality is bit
# equality), and the blockspec experiment must print a >1.0x batched
# speedup verdict — the tiers are only worth shipping if they pay.
for k in generic fixed batched; do
    FUN3D_BLOCK_KERNEL=$k ./target/release/table1 --scale 0.05 --steps 2 \
        --threads 2 --quiet --json "$smoke_dir/kern-$k.json" \
        --events "$smoke_dir/kern-$k.events.jsonl" > /dev/null
    grep -o '"residual_norm":[^,}]*' "$smoke_dir/kern-$k.events.jsonl" \
        > "$smoke_dir/resid-$k.txt"
done
[ -s "$smoke_dir/resid-generic.txt" ] \
    || { echo "ci: kernel-identity leg recorded no residual norms"; exit 1; }
cmp -s "$smoke_dir/resid-generic.txt" "$smoke_dir/resid-fixed.txt" \
    || { echo "ci: fixed kernel residuals diverged from generic"; exit 1; }
cmp -s "$smoke_dir/resid-generic.txt" "$smoke_dir/resid-batched.txt" \
    || { echo "ci: batched kernel residuals diverged from generic"; exit 1; }
./target/release/blockspec --scale 0.15 --threads 2 \
    --json "$smoke_dir/blockspec.json" > "$smoke_dir/blockspec.log"
grep -q "blockspec verdict: batched pays off" "$smoke_dir/blockspec.log" \
    || { echo "ci: batched kernels show no speedup over generic"; exit 1; }
grep -q '"spmv_bcsr:gbps"' "$smoke_dir/blockspec.json"
grep -q '"bilu_sweep:gbps"' "$smoke_dir/blockspec.json"
./target/release/fun3d-report profile "$smoke_dir/blockspec.json" \
    > "$smoke_dir/blockspec-profile.log"
grep -q "Repeated block structure" "$smoke_dir/blockspec-profile.log"
grep -q "template hit rate" "$smoke_dir/blockspec-profile.log"

# Profiling overhead on the standalone spmv bin must stay under 5% (median
# CSR time, profiling off vs on).  One retry damps scheduler noise.
check_overhead() {
    t_off=$(./target/release/spmv --scale 0.2 --threads 2 --quiet \
        --json "$smoke_dir/spmv-off.json" > /dev/null \
        && grep -o '"time_csr_s":[0-9.e-]*' "$smoke_dir/spmv-off.json" | cut -d: -f2)
    t_on=$(./target/release/spmv --scale 0.2 --threads 2 --quiet --profile \
        --json "$smoke_dir/spmv-on.json" > /dev/null \
        && grep -o '"time_csr_s":[0-9.e-]*' "$smoke_dir/spmv-on.json" | cut -d: -f2)
    awk -v off="$t_off" -v on="$t_on" 'BEGIN { exit !(on <= off * 1.05) }'
}
check_overhead || { echo "ci: profiling overhead check retrying"; check_overhead; }

# Rank-tracing leg: the `ranks` sweep at 4 simulated ranks with per-rank
# tracing.  The chrome trace must carry one lane per rank plus message
# flow arrows, the report the critical-path and wait-fraction gate
# metrics with eta_impl in (0, 1], and `fun3d-report comm` the per-rank
# phase table with a laggard called out.
./target/release/ranks --scale 0.01 --ranks 4 --trace-ranks --quiet \
    --json "$smoke_dir/ranks.json" --trace "$smoke_dir/ranks.trace.json" \
    > "$smoke_dir/ranks.log"
lanes=$(grep -o '"tid":[0-9]*' "$smoke_dir/ranks.trace.json" | sort -u | wc -l)
[ "$lanes" -eq 4 ] || { echo "ci: expected 4 trace lanes, got $lanes"; exit 1; }
grep -q '"ph":"s"' "$smoke_dir/ranks.trace.json"
eta=$(grep -o '"eta_impl":[0-9.e-]*' "$smoke_dir/ranks.json" | cut -d: -f2)
awk -v e="$eta" 'BEGIN { exit !(e > 0 && e <= 1) }' \
    || { echo "ci: eta_impl out of (0,1]: $eta"; exit 1; }
grep -q '"cp:total_s"' "$smoke_dir/ranks.json"
grep -q '"rank:scatter:wait_frac"' "$smoke_dir/ranks.json"
grep -q '"comm:bytes_per_iter"' "$smoke_dir/ranks.json"
./target/release/fun3d-report comm "$smoke_dir/ranks.json" > "$smoke_dir/comm.log"
grep -q "Per-rank phases" "$smoke_dir/comm.log"
grep -q "laggard" "$smoke_dir/comm.log"
grep -q "Critical path" "$smoke_dir/comm.log"
# The rank sweep must also gate cleanly against its own baseline.
./target/release/fun3d-bench run --suite ranks --scale 0.01 --ranks 4 --trace-ranks \
    --save-baseline "$smoke_dir/ranks-base.json" > "$smoke_dir/ranks-save.log"
./target/release/fun3d-bench run --suite ranks --scale 0.01 --ranks 4 --trace-ranks \
    --baseline "$smoke_dir/ranks-base.json" --tol-rel 1000 > "$smoke_dir/ranks-gate.log"
grep -q "overall:" "$smoke_dir/ranks-gate.log"

# Rank tracing off must cost <5% wall clock (the traced run above already
# pinned the simulated results; bitwise identity is a unit test).  One
# retry damps scheduler noise.
check_trace_overhead() {
    t_off=$(./target/release/ranks --scale 0.01 --ranks 4 --quiet \
        --json "$smoke_dir/ranks-off.json" > /dev/null \
        && grep -o '"wall_s":[0-9.e-]*' "$smoke_dir/ranks-off.json" | cut -d: -f2)
    t_on=$(./target/release/ranks --scale 0.01 --ranks 4 --trace-ranks --quiet \
        --json "$smoke_dir/ranks-on.json" > /dev/null \
        && grep -o '"wall_s":[0-9.e-]*' "$smoke_dir/ranks-on.json" | cut -d: -f2)
    awk -v off="$t_off" -v on="$t_on" 'BEGIN { exit !(on <= off * 1.05) }'
}
check_trace_overhead \
    || { echo "ci: rank-trace overhead check retrying"; check_trace_overhead; }

# Serving leg: a short open-loop smoke through the fun3d-serve engine (2
# workers, 2 arrival rates).  The report must carry the throughput and
# p99 tail gate metrics, a warm cache (hit rate > 0 after the first
# batch), and the direct-path identity check; `fun3d-report serve` must
# render the sweep and the knee summary.
FUN3D_SERVE_WORKERS=2 ./target/release/serve --steps 2 --quiet \
    --json "$smoke_dir/serve.json" > "$smoke_dir/serve.log"
grep -q '"rate0:solves_per_s"' "$smoke_dir/serve.json"
grep -q '"rate1:solves_per_s"' "$smoke_dir/serve.json"
grep -q '"rate1:p99_s"' "$smoke_dir/serve.json"
# Keys contain a colon, so the value is awk/cut field 3.
hit=$(grep -o '"serve:hit_rate":[0-9.e-]*' "$smoke_dir/serve.json" | cut -d: -f3)
awk -v h="$hit" 'BEGIN { exit !(h > 0.5) }' \
    || { echo "ci: serve cache hit rate too low: $hit"; exit 1; }
ident=$(grep -o '"serve:identity_match_ratio":[0-9.e-]*' "$smoke_dir/serve.json" | cut -d: -f3)
awk -v r="$ident" 'BEGIN { exit !(r == 1) }' \
    || { echo "ci: served results diverged from the direct path: $ident"; exit 1; }
./target/release/fun3d-report serve "$smoke_dir/serve.json" > "$smoke_dir/serve-view.log"
grep -q "Open-loop rate sweep" "$smoke_dir/serve-view.log"
grep -q "cache hit rate" "$smoke_dir/serve-view.log"
# The serve experiment must gate cleanly against its own baseline.
FUN3D_SERVE_WORKERS=2 ./target/release/fun3d-bench run --suite serve --steps 2 \
    --save-baseline "$smoke_dir/serve-base.json" > "$smoke_dir/serve-save.log"
FUN3D_SERVE_WORKERS=2 ./target/release/fun3d-bench run --suite serve --steps 2 \
    --baseline "$smoke_dir/serve-base.json" --tol-rel 1000 > "$smoke_dir/serve-gate.log"
grep -q "overall:" "$smoke_dir/serve-gate.log"
# Overload must reject, not hang: one worker at 3.2x its calibrated
# capacity with a depth-4 queue has to bounce arrivals at the door and
# still finish (the timeout is the no-deadlock assertion).  One retry
# damps scheduler noise in the reject count.
check_serve_rejects() {
    timeout 300 env FUN3D_SERVE_WORKERS=1 ./target/release/serve --steps 2 --quiet \
        --json "$smoke_dir/serve-w1.json" > /dev/null || return 1
    rej=$(grep -o '"serve:rejected_total":[0-9.e-]*' "$smoke_dir/serve-w1.json" | cut -d: -f3)
    awk -v r="$rej" 'BEGIN { exit !(r > 0) }'
}
check_serve_rejects \
    || { echo "ci: serve reject check retrying"; check_serve_rejects; } \
    || { echo "ci: overloaded serve engine produced no rejects"; exit 1; }

# Live-metrics leg: the same sweep with the collector, request tracing,
# and SLO layer on.  The metrics sidecar must carry the core series and a
# parseable Prometheus scrape, every request must leave a trace event, the
# 1-worker overload must drive health to saturated, and `fun3d-report
# live` must render sparklines with the health timeline.
FUN3D_SERVE_WORKERS=1 timeout 300 ./target/release/serve --steps 2 --quiet \
    --metrics --metrics-out "$smoke_dir/serve-live.metrics.jsonl" \
    --events "$smoke_dir/serve-live.events.jsonl" \
    --json "$smoke_dir/serve-live.json" > "$smoke_dir/serve-live.log"
grep -q '"series":"queue_depth"' "$smoke_dir/serve-live.metrics.jsonl"
grep -q '"series":"throughput_solves_per_s"' "$smoke_dir/serve-live.metrics.jsonl"
grep -q '"series":"health_state"' "$smoke_dir/serve-live.metrics.jsonl"
# The Prometheus exposition parses: every non-comment line is
# `fun3d_<name> <float>`, and at least one sample is present.
awk '/^#/ { next }
     !/^fun3d_[a-z0-9_]+ -?[0-9][0-9.e+-]*$/ { bad = 1 }
     { n += 1 }
     END { exit !(n > 0 && !bad) }' "$smoke_dir/serve-live.metrics.jsonl.prom" \
    || { echo "ci: malformed Prometheus scrape"; exit 1; }
grep -q '"ev":"request_trace"' "$smoke_dir/serve-live.events.jsonl"
# Overloading one worker at the top sweep rate must saturate its SLO.
grep -q '"rate1:health_state":2' "$smoke_dir/serve-live.json" \
    || { echo "ci: overloaded serve engine not marked saturated"; exit 1; }
grep -q '"serve:queue_wait_frac"' "$smoke_dir/serve-live.json"
./target/release/fun3d-report live "$smoke_dir/serve-live.json" > "$smoke_dir/live-view.log"
grep -q "Time series" "$smoke_dir/live-view.log"
grep -q "Health timeline" "$smoke_dir/live-view.log"
grep -q "saturated" "$smoke_dir/live-view.log"
# Metrics off must cost <5% wall clock vs the run above (same 1-worker
# sweep; the dark run's single relaxed atomic load per request is the
# whole overhead budget).  One retry damps scheduler noise.
check_metrics_overhead() {
    t_off=$(FUN3D_SERVE_WORKERS=1 timeout 300 ./target/release/serve --steps 2 --quiet \
        --json "$smoke_dir/serve-dark.json" > /dev/null \
        && grep -o '"wall_s":[0-9.e-]*' "$smoke_dir/serve-dark.json" | cut -d: -f2)
    t_on=$(FUN3D_SERVE_WORKERS=1 timeout 300 ./target/release/serve --steps 2 --quiet \
        --metrics --json "$smoke_dir/serve-on.json" > /dev/null \
        && grep -o '"wall_s":[0-9.e-]*' "$smoke_dir/serve-on.json" | cut -d: -f2)
    awk -v off="$t_off" -v on="$t_on" 'BEGIN { exit !(on <= off * 1.05) }'
}
check_metrics_overhead \
    || { echo "ci: metrics overhead check retrying"; check_metrics_overhead; }

# Flight-recorder / diagnosis leg.  An injected panic must leave a
# parseable `fun3d-blackbox/1` dump that `fun3d-report explain` renders;
# an injected NaN must raise a solver anomaly event and exit 3; `explain`
# on the profiled spmv run must rank it bandwidth-bound with %-of-STREAM
# evidence; and the slowdown A/B pair must name the regressed phase.
if FUN3D_PANIC_AT_STEP=1 ./target/release/table1 --scale 0.05 --steps 2 \
    --quiet --blackbox "$smoke_dir/panic.blackbox.jsonl" \
    > "$smoke_dir/panic.log" 2>&1; then
    echo "ci: injected panic did not fail the run"; exit 1
fi
grep -q '"schema":"fun3d-blackbox/1"' "$smoke_dir/panic.blackbox.jsonl"
grep -q '"reason":"panic"' "$smoke_dir/panic.blackbox.jsonl"
./target/release/fun3d-report explain \
    --blackbox "$smoke_dir/panic.blackbox.jsonl" > "$smoke_dir/panic-explain.log"
grep -q "anomaly-terminated" "$smoke_dir/panic-explain.log"
grep -q "Flight recorder" "$smoke_dir/panic-explain.log"

nan_status=0
FUN3D_NAN_AT_STEP=1 ./target/release/table1 --scale 0.05 --steps 2 --quiet \
    --json "$smoke_dir/nan.json" --events "$smoke_dir/nan.events.jsonl" \
    > "$smoke_dir/nan.log" 2>&1 || nan_status=$?
[ "$nan_status" -eq 3 ] \
    || { echo "ci: injected NaN exited $nan_status, expected 3"; exit 1; }
grep -q '"ev":"anomaly"' "$smoke_dir/nan.events.jsonl"
grep -q "non_finite_residual" "$smoke_dir/nan.events.jsonl"
./target/release/fun3d-report explain "$smoke_dir/nan.json" \
    --events "$smoke_dir/nan.events.jsonl" > "$smoke_dir/nan-explain.log"
grep -q "1. anomaly-terminated" "$smoke_dir/nan-explain.log"

./target/release/fun3d-report explain "$smoke_dir/runs-prof/spmv.json" \
    > "$smoke_dir/explain.log"
grep -q "bandwidth-bound" "$smoke_dir/explain.log"
grep -q "% of STREAM" "$smoke_dir/explain.log"
grep -q "explain:confidence" "$smoke_dir/explain.log"
./target/release/fun3d-report explain "$smoke_dir/runs/spmv.json" \
    "$smoke_dir/runs-slow/spmv.json" > "$smoke_dir/explain-ab.log"
grep -q "regressed phase:" "$smoke_dir/explain-ab.log"
# The attributed phase must be a real span phase, not the run-level bucket.
grep -q 'regression attributed to phase `spmv' "$smoke_dir/explain-ab.log"

# Recorder-on overhead must stay under 5% (median CSR spmv time, armed vs
# dark; the armed run only pays a try_lock ring write per span).  Best of
# five interleaved runs per side damps scheduler noise, plus one retry.
bb_sample() {
    ./target/release/spmv --scale 0.5 --threads 2 --quiet "$@" \
        --json "$smoke_dir/bb-run.json" > /dev/null \
        && grep -o '"time_csr_s":[0-9.e-]*' "$smoke_dir/bb-run.json" | cut -d: -f2
}
check_blackbox_overhead() {
    t_off=""
    t_on=""
    for _ in 1 2 3 4 5; do
        t=$(bb_sample)
        t_off=$(awk -v a="${t_off:-$t}" -v b="$t" 'BEGIN { print (a < b) ? a : b }')
        t=$(bb_sample --blackbox "$smoke_dir/bb-on.blackbox.jsonl")
        t_on=$(awk -v a="${t_on:-$t}" -v b="$t" 'BEGIN { print (a < b) ? a : b }')
    done
    awk -v off="$t_off" -v on="$t_on" 'BEGIN { exit !(on <= off * 1.05) }'
}
check_blackbox_overhead \
    || { echo "ci: flight-recorder overhead check retrying"; check_blackbox_overhead; }

echo "ci: all checks passed"
