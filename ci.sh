#!/usr/bin/env bash
# Repo CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check

echo "ci: all checks passed"
