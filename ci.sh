#!/usr/bin/env bash
# Repo CI gate: build, test, lint, format. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

# Harness smoke gate: save a baseline then compare against it in the same
# environment. Tiny sizes, 1 rep; the huge relative tolerance means this
# asserts the registry -> stats -> baseline pipeline, never wall-clock.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/fun3d-bench run --suite smoke \
    --save-baseline "$smoke_dir/smoke.json" \
    --events-dir "$smoke_dir/runs" > "$smoke_dir/save.log"
./target/release/fun3d-bench run --suite smoke \
    --baseline "$smoke_dir/smoke.json" --tol-rel 1000 > "$smoke_dir/gate.log"
grep -q "overall:" "$smoke_dir/gate.log"

# Run inspection: `fun3d-report show` on a gate-written report must render
# the Figure 5 convergence table (from the sibling event stream) and the
# Table 3 phase breakdown; a self-diff must report zero regressions.
./target/release/fun3d-report show "$smoke_dir/runs/table1.json" > "$smoke_dir/show.log"
grep -q "Convergence (Figure 5)" "$smoke_dir/show.log"
grep -q "Phase breakdown (Table 3)" "$smoke_dir/show.log"
./target/release/fun3d-report diff "$smoke_dir/runs/table1.json" \
    "$smoke_dir/runs/table1.json" > "$smoke_dir/diff.log"
grep -q "regressions: 0" "$smoke_dir/diff.log"

echo "ci: all checks passed"
