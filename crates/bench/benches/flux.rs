//! Criterion micro-bench: the edge-based flux kernel under the orderings of
//! Table 1 / Figure 3 — sorted vs vector-colored edges, first vs second
//! order, interlaced vs segregated fields.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fun3d_bench::perturbed_state;
use fun3d_core::config::apply_orderings;
use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_mesh::reorder::{EdgeOrdering, VertexOrdering};
use fun3d_sparse::layout::FieldLayout;

fn bench_flux(c: &mut Criterion) {
    let base = BumpChannelSpec::with_target_vertices(15_000).build();
    let mut group = c.benchmark_group("flux");
    let configs = [
        (
            "tuned",
            VertexOrdering::ReverseCuthillMcKee,
            EdgeOrdering::VertexSorted,
        ),
        (
            "colored",
            VertexOrdering::Random(7),
            EdgeOrdering::VectorColored,
        ),
    ];
    for (name, vord, eord) in configs {
        let mesh = apply_orderings(base.clone(), vord, eord);
        group.throughput(Throughput::Elements(mesh.nedges() as u64));
        for layout in [FieldLayout::Interlaced, FieldLayout::Segregated] {
            let lname = match layout {
                FieldLayout::Interlaced => "interlaced",
                FieldLayout::Segregated => "segregated",
            };
            let disc = Discretization::new(
                &mesh,
                FlowModel::incompressible(),
                layout,
                SpatialOrder::First,
            );
            let q = perturbed_state(&disc, 0.01);
            let mut res = FieldVec::zeros(mesh.nverts(), 4, layout);
            let mut ws = disc.workspace();
            group.bench_function(format!("first-{name}-{lname}"), |b| {
                b.iter(|| disc.residual(&q, &mut res, &mut ws))
            });
        }
        // Second order on the tuned interlaced configuration only.
        let disc = Discretization::new(
            &mesh,
            FlowModel::incompressible(),
            FieldLayout::Interlaced,
            SpatialOrder::Second,
        );
        let q = perturbed_state(&disc, 0.01);
        let mut res = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut ws = disc.workspace();
        group.bench_function(format!("second-{name}-interlaced"), |b| {
            b.iter(|| disc.residual(&q, &mut res, &mut ws))
        });
    }
    group.finish();
}

fn bench_jacobian(c: &mut Criterion) {
    let mesh = BumpChannelSpec::with_target_vertices(8_000).build();
    let mut group = c.benchmark_group("jacobian-assembly");
    group.sample_size(10);
    for model in [FlowModel::incompressible(), FlowModel::compressible()] {
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let q = perturbed_state(&disc, 0.01);
        let tag = if model.ncomp() == 4 { "incomp" } else { "comp" };
        group.bench_function(tag, |b| b.iter(|| disc.jacobian(&q)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flux, bench_jacobian
}
criterion_main!(benches);
