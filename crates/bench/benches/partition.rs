//! Criterion micro-bench: partitioner construction and refinement cost, and
//! RCM ordering cost — the setup-phase work a production run amortizes.

use criterion::{criterion_group, criterion_main, Criterion};
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_mesh::reorder::rcm;
use fun3d_partition::{partition_fragmented, partition_kway, partition_pway, refine_boundary};

fn bench_partition(c: &mut Criterion) {
    let g = BumpChannelSpec::with_target_vertices(12_000)
        .build()
        .vertex_graph();
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for k in [8usize, 32] {
        group.bench_function(format!("kway-{k}"), |b| b.iter(|| partition_kway(&g, k, 1)));
        group.bench_function(format!("pway-{k}"), |b| b.iter(|| partition_pway(&g, k, 1)));
        group.bench_function(format!("fragmented-{k}"), |b| {
            b.iter(|| partition_fragmented(&g, k, 2, 1))
        });
        group.bench_function(format!("refine-{k}"), |b| {
            b.iter_batched(
                || partition_kway(&g, k, 1),
                |mut p| refine_boundary(&g, &mut p, 1.05, 4),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_rcm(c: &mut Criterion) {
    let g = BumpChannelSpec::with_target_vertices(12_000)
        .build()
        .vertex_graph();
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    group.bench_function("rcm", |b| b.iter(|| rcm(&g)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_partition, bench_rcm
}
criterion_main!(benches);
