//! Criterion micro-bench: sparse matrix-vector product under the storage
//! choices of Table 1 — point CSR vs block CSR (structural blocking), and
//! the interlaced vs segregated unknown orderings.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fun3d_bench::representative_jacobian;
use fun3d_euler::model::FlowModel;
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::layout::FieldLayout;

fn bench_spmv(c: &mut Criterion) {
    let mesh = BumpChannelSpec::with_target_vertices(12_000).build();
    let mut group = c.benchmark_group("spmv");
    for model in [FlowModel::incompressible(), FlowModel::compressible()] {
        let b = model.ncomp();
        let tag = if b == 4 { "incomp" } else { "comp" };
        let csr_i = representative_jacobian(&mesh, model, FieldLayout::Interlaced, 10.0);
        let csr_s = representative_jacobian(&mesh, model, FieldLayout::Segregated, 10.0);
        let bcsr = BcsrMatrix::from_csr(&csr_i, b);
        let n = csr_i.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
        let mut y = vec![0.0; n];
        group.throughput(Throughput::Elements(csr_i.nnz() as u64));
        group.bench_function(format!("csr-interlaced-{tag}"), |bch| {
            bch.iter(|| csr_i.spmv(&x, &mut y))
        });
        group.bench_function(format!("csr-segregated-{tag}"), |bch| {
            bch.iter(|| csr_s.spmv(&x, &mut y))
        });
        group.bench_function(format!("bcsr-b{b}-{tag}"), |bch| {
            bch.iter(|| bcsr.spmv(&x, &mut y))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv
}
criterion_main!(benches);
