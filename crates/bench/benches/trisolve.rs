//! Criterion micro-bench: ILU(k) triangular solves with double vs single
//! precision factor storage — the Table 2 effect on the host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fun3d_bench::representative_jacobian;
use fun3d_euler::model::FlowModel;
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_sparse::ilu::{IluFactors, IluOptions, PrecStorage};
use fun3d_sparse::layout::FieldLayout;

fn bench_trisolve(c: &mut Criterion) {
    let mesh = BumpChannelSpec::with_target_vertices(12_000).build();
    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        10.0,
    );
    let n = jac.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64 - 9.0) / 9.0).collect();
    let mut x = vec![0.0; n];
    let mut group = c.benchmark_group("trisolve");
    for fill in [0usize, 1] {
        for (name, storage) in [("f64", PrecStorage::Double), ("f32", PrecStorage::Single)] {
            let f = IluFactors::factor(
                &jac,
                &IluOptions {
                    fill_level: fill,
                    storage,
                },
            )
            .expect("factorable");
            group.throughput(Throughput::Elements(f.nnz() as u64));
            group.bench_function(format!("ilu{fill}-{name}"), |bch| {
                bch.iter(|| f.solve(&b, &mut x))
            });
        }
    }
    group.finish();
}

fn bench_factor(c: &mut Criterion) {
    let mesh = BumpChannelSpec::with_target_vertices(8_000).build();
    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        10.0,
    );
    let mut group = c.benchmark_group("ilu-factor");
    group.sample_size(10);
    for fill in [0usize, 1, 2] {
        group.bench_function(format!("ilu{fill}"), |bch| {
            bch.iter(|| IluFactors::factor(&jac, &IluOptions::with_fill(fill)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trisolve, bench_factor
}
criterion_main!(benches);
