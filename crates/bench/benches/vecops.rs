//! Criterion micro-bench: the BLAS-1 kernels of the Krylov iteration (the
//! bandwidth-bound floor of the solve phase), plus a mini-STREAM reference.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fun3d_sparse::vec_ops;

fn bench_vecops(c: &mut Criterion) {
    let n = 1_000_000usize;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1e-4).sin()).collect();
    let mut y: Vec<f64> = (0..n).map(|i| (i as f64 * 1e-4).cos()).collect();
    let mut group = c.benchmark_group("vecops");
    group.throughput(Throughput::Bytes((16 * n) as u64));
    group.bench_function("dot", |b| {
        b.iter(|| std::hint::black_box(vec_ops::dot(&x, &y)))
    });
    group.bench_function("axpy", |b| b.iter(|| vec_ops::axpy(1.0001, &x, &mut y)));
    group.throughput(Throughput::Bytes((8 * n) as u64));
    group.bench_function("norm2", |b| {
        b.iter(|| std::hint::black_box(vec_ops::norm2(&x)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vecops
}
criterion_main!(benches);
