//! Thin CLI wrapper: Section 2.4 ablation studies.
//! The core loop lives in `fun3d_bench::runners::ablations`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin ablations [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("ablations", 0.3);
    let out = runners::ablations::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.exit_if_anomalous(&out);
}
