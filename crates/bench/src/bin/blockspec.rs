//! Thin CLI wrapper: BCSR micro-kernel tiers (generic/fixed/batched) per
//! block size, with repeated-block-structure telemetry.
//! The core loop lives in `fun3d_bench::runners::blockspec`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin blockspec [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("blockspec", 0.25);
    let out = runners::blockspec::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
