//! Thin CLI wrapper: Figure 1 fixed-size scaling on the ASCI Red model.
//! The core loop lives in `fun3d_bench::runners::figure1`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure1 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("figure1", 1.0);
    let out = runners::figure1::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
