//! Thin CLI wrapper: Figure 2 Gflop/s and time across the paper's machines.
//! The core loop lives in `fun3d_bench::runners::figure2`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure2 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("figure2", 1.0);
    let out = runners::figure2::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
