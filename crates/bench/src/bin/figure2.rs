//! Regenerates **Figure 2**: aggregate Gflop/s and execution time for the
//! 2.8M-vertex case on the paper's three most capable machines — ASCI Red,
//! ASCI Blue Pacific, and the Cray T3E — with the ideal-scaling reference.
//!
//! The machines are long gone; each is represented by its calibrated
//! [`fun3d_memmodel::machine::MachineSpec`] inside the fixed-size scaling
//! model.  Shape to reproduce: near-linear Gflop/s on Red, T3E the fastest
//! per node on memory-bound phases, execution time flattening as the
//! surface-to-volume ratio and iteration growth bite.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure2`

use fun3d_bench::{print_table, BenchArgs};
use fun3d_core::scaling::{Calibration, FixedSizeModel, ProblemShape};
use fun3d_memmodel::machine::MachineSpec;

fn main() {
    let args = BenchArgs::parse(1.0);
    let machines = [
        MachineSpec::asci_red(),
        MachineSpec::asci_blue_pacific(),
        MachineSpec::cray_t3e(),
    ];
    let procs = [128usize, 256, 512, 1024, 2048, 3072];

    let mut gflop_rows: Vec<Vec<String>> = Vec::new();
    let mut time_rows: Vec<Vec<String>> = Vec::new();
    let mut models = Vec::new();
    for m in &machines {
        models.push(FixedSizeModel {
            machine: m.clone(),
            shape: ProblemShape::large_euler(),
            cal: Calibration::paper_defaults(),
        });
    }
    for &p in &procs {
        let mut grow = vec![p.to_string()];
        let mut trow = vec![p.to_string()];
        for (m, model) in machines.iter().zip(&models) {
            if p > m.max_nodes {
                grow.push("-".to_string());
                trow.push("-".to_string());
                continue;
            }
            let pt = model.predict(p);
            grow.push(format!("{:.1}", pt.gflops));
            trow.push(format!("{:.0}s", pt.time));
        }
        // Ideal scaling lines (linear from the 128-node Red point).
        let base = models[0].predict(128);
        grow.push(format!("{:.1}", base.gflops * p as f64 / 128.0));
        trow.push(format!("{:.0}s", base.time * 128.0 / p as f64));
        gflop_rows.push(grow);
        time_rows.push(trow);
    }
    print_table(
        "Figure 2a: aggregate Gflop/s vs nodes",
        &[
            "Nodes",
            "ASCI Red",
            "Blue Pacific",
            "Cray T3E",
            "ideal (Red)",
        ],
        &gflop_rows,
    );
    print_table(
        "Figure 2b: execution time vs nodes",
        &[
            "Nodes",
            "ASCI Red",
            "Blue Pacific",
            "Cray T3E",
            "ideal (Red)",
        ],
        &time_rows,
    );
    println!("\nShape to check: Gflop/s nearly linear on Red but time above the ideal line");
    println!("(growing redundant work); T3E fastest per node on the bandwidth-bound solve;");
    println!("Blue Pacific limited by its interconnect; T3E/Blue curves stop at their");
    println!("machine sizes (1024/1464 nodes) as in the paper.");

    let mut perf = fun3d_telemetry::report::PerfReport::new("figure2");
    args.annotate(&mut perf);
    for (m, model) in machines.iter().zip(&models) {
        for &p in &procs {
            if p > m.max_nodes {
                continue;
            }
            let pt = model.predict(p);
            perf.push_metric(format!("gflops_{}_p{p}", m.name), pt.gflops);
            perf.push_metric(format!("time_s_{}_p{p}", m.name), pt.time);
        }
    }
    args.emit_report(&perf);
}
