//! Thin CLI wrapper: Figure 3 simulated TLB/L2 misses under data orderings.
//! The core loop lives in `fun3d_bench::runners::figure3`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure3 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("figure3", 1.0);
    let out = runners::figure3::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
