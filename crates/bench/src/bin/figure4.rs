//! Thin CLI wrapper: Figure 4 k-way vs fragmented partitioning.
//! The core loop lives in `fun3d_bench::runners::figure4`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure4 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("figure4", 0.01);
    let out = runners::figure4::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
