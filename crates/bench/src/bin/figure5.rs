//! Thin CLI wrapper: Figure 5 residual vs pseudo-timestep across CFL choices.
//! The core loop lives in `fun3d_bench::runners::figure5`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin figure5 [--scale f]
//!   [--json out.json] [--trace trace.json] [--events ev.jsonl]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("figure5", 0.005);
    let out = runners::figure5::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.emit_events(&out.events);
    args.exit_if_anomalous(&out);
}
