//! Thin CLI wrapper: Eqs. (1)-(2) conflict-miss bound validation.
//! The core loop lives in `fun3d_bench::runners::miss_bounds`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin miss_bounds [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("miss_bounds", 1.0);
    let out = runners::miss_bounds::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
