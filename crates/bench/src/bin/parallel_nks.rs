//! Thin CLI wrapper: measured distributed NKS scaling.
//! The core loop lives in `fun3d_bench::runners::parallel_nks`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin parallel_nks [--scale f]
//!   [--json out.json] [--trace trace.json] [--events ev.jsonl]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("parallel_nks", 0.03);
    let out = runners::parallel_nks::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.emit_events(&out.events);
}
