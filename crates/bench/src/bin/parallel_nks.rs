//! Measured parallel ΨNKS scaling: the real distributed solver (threads +
//! messages) at laptop-feasible rank counts, reporting the same efficiency
//! decomposition and phase breakdown as Table 3 — fully *measured*, as a
//! complement to the `table3` regenerator's model extrapolation.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin parallel_nks [--scale f]`

use fun3d_bench::{print_table, BenchArgs};
use fun3d_core::efficiency::{efficiency_table, ScalingPoint};
use fun3d_core::parallel_nks::{solve_parallel_nks, ParallelNksOptions};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;

fn main() {
    let args = BenchArgs::parse(0.03);
    let spec = args.family_spec(MeshFamily::Medium);
    let mesh = spec.build();
    println!(
        "Parallel NKS (real message-passing ranks): {} vertices, ASCI Red simulated clock",
        mesh.nverts()
    );
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::asci_red();
    // Fixed work: exactly 20 pseudo-timesteps per rank count (the paper's
    // per-time-step framing). Chasing a fixed *reduction* instead couples
    // the comparison to case-specific continuation plateaus (see figure5).
    let opts = ParallelNksOptions {
        max_steps: 20,
        target_reduction: 0.0,
        ..Default::default()
    };

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8] {
        let part = partition_kway(&graph, p, 3);
        let report = solve_parallel_nks(&mesh, FlowModel::incompressible(), &part.part, p, &machine, &opts);
        println!(
            "  p={p}: residual reduction {:.1e} after 20 steps",
            report.final_residual / report.residual_history[0]
        );
        let steps = report.residual_history.len() - 1;
        let lin: usize = report.linear_iters.iter().sum();
        // Phase percentages from the max-loaded rank.
        let bd = report
            .breakdowns
            .iter()
            .max_by(|a, b| a.total().partial_cmp(&b.total()).unwrap())
            .unwrap();
        let (red, sync, scat) = bd.overhead_percentages();
        rows.push(vec![
            p.to_string(),
            steps.to_string(),
            lin.to_string(),
            format!("{:.3}s", report.sim_time),
            format!("{red:.1}"),
            format!("{sync:.1}"),
            format!("{scat:.1}"),
        ]);
        points.push(ScalingPoint {
            nprocs: p,
            its: lin.max(1),
            time: report.sim_time,
        });
    }
    print_table(
        "Measured parallel NKS (simulated ASCI Red time; percentages from the busiest rank)",
        &[
            "Ranks",
            "Steps",
            "Linear its",
            "Sim time",
            "Reductions %",
            "Impl. sync %",
            "Scatters %",
        ],
        &rows,
    );

    let rows: Vec<Vec<String>> = efficiency_table(&points)
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.eta_overall),
                format!("{:.2}", r.eta_alg),
                format!("{:.2}", r.eta_impl),
            ]
        })
        .collect();
    print_table(
        "Efficiency decomposition (eta_overall = eta_alg x eta_impl)",
        &["Ranks", "Speedup", "eta_overall", "eta_alg", "eta_impl"],
        &rows,
    );
    println!("\nSame conclusion as Table 3, here fully measured: the algorithmic term (more");
    println!("Jacobi blocks -> more iterations) dominates the degradation; the implementation");
    println!("term stays close to 1 at these scales.");
}
