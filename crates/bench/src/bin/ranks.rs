//! Thin CLI wrapper: rank-count sweep with per-rank distributed tracing.
//! The core loop lives in `fun3d_bench::runners::ranks`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin ranks [--scale f]
//!   [--ranks n] [--trace-ranks] [--json out.json] [--trace trace.json]
//!   [--events ev.jsonl]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("ranks", 0.02);
    let out = runners::ranks::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.emit_events(&out.events);
}
