//! Thin CLI wrapper: open-loop load sweep through the `fun3d-serve` engine.
//! The core loop lives in `fun3d_bench::runners::serve`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin serve [--scale f]
//!   [--steps nrates] [--threads n] [--json out.json] [--trace trace.json]
//!   [--metrics] [--metrics-out metrics.jsonl] [--events events.jsonl]`
//! with `FUN3D_SERVE_WORKERS` selecting the worker-pool size (default 2).

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("serve", 0.005);
    let out = runners::serve::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.emit_events(&out.events);
    args.emit_metrics(&out.metrics);
    args.exit_if_anomalous(&out);
}
