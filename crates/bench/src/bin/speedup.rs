//! Thread-scaling sweep binary: see `runners::speedup`.

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("speedup", 0.5);
    let out = runners::speedup::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
