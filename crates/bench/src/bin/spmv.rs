//! Thin CLI wrapper: measured CSR/BCSR SpMV vs the bandwidth model.
//! The core loop lives in `fun3d_bench::runners::spmv`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin spmv [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("spmv", 0.5);
    let out = runners::spmv::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
