//! Thin CLI wrapper: host STREAM bandwidth vs the machine models.
//! The core loop lives in `fun3d_bench::runners::stream`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin stream [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("stream", 1.0);
    let out = runners::stream::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
