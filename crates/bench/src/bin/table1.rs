//! Thin CLI wrapper: Table 1 layout enhancements.
//! The core loop lives in `fun3d_bench::runners::table1`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin table1 [--scale f]
//!   [--json out.json] [--trace trace.json] [--events ev.jsonl]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("table1", 0.25);
    let out = runners::table1::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
    args.emit_events(&out.events);
    args.exit_if_anomalous(&out);
}
