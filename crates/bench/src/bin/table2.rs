//! Thin CLI wrapper: Table 2 single- vs double-precision preconditioner storage.
//! The core loop lives in `fun3d_bench::runners::table2`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin table2 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("table2", 0.08);
    let out = runners::table2::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
