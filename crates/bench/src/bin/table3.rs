//! Thin CLI wrapper: Table 3 efficiency decomposition on the ASCI Red model.
//! The core loop lives in `fun3d_bench::runners::table3`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin table3 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("table3", 0.008);
    let out = runners::table3::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
