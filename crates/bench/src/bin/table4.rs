//! Thin CLI wrapper: Table 4 additive-Schwarz design space.
//! The core loop lives in `fun3d_bench::runners::table4`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin table4 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("table4", 0.06);
    let out = runners::table4::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
