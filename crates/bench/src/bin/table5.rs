//! Thin CLI wrapper: Table 5 hybrid MPI/OpenMP vs pure MPI.
//! The core loop lives in `fun3d_bench::runners::table5`.
//!
//! Usage: `cargo run --release -p fun3d-bench --bin table5 [--scale f]
//!   [--json out.json] [--trace trace.json]`

use fun3d_bench::{runners, BenchArgs};

fn main() {
    let args = BenchArgs::parse_for("table5", 0.02);
    let out = runners::table5::run(&args);
    args.emit_report(&out.report);
    args.emit_trace(&out.telemetry);
}
