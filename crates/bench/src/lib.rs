//! Shared harness utilities for the table/figure regenerator binaries.
//!
//! Every binary accepts `--scale <f>` (fraction of the paper's mesh size to
//! actually run; default keeps runs to seconds) and `--full` (the paper's
//! size — minutes to hours).  Measured numbers regenerate the paper's *rows*;
//! EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! Since the harness PR, every regenerator's core loop lives in [`runners`]
//! as a library function returning a [`RunOutcome`]; the binaries are thin
//! CLI wrappers, and `fun3d-harness` schedules the same runners with warmup
//! and repetitions behind the [`Experiment`] trait.

pub mod runners;

use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::{BumpChannelSpec, MeshFamily};
use fun3d_mesh::tet::TetMesh;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::layout::FieldLayout;
use fun3d_sparse::profile::RegionStats;
use fun3d_telemetry::events::{EventRecord, EventStream};
use fun3d_telemetry::metrics::SeriesSet;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::{Registry, Snapshot};

/// Command-line options shared by the regenerators.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Fraction of the paper's vertex count to use.
    pub scale: f64,
    /// Number of measured pseudo-timesteps (where applicable).
    pub steps: usize,
    /// Number of repetitions for timed sections (`--reps <n>`).
    pub reps: usize,
    /// Suite selector (`--suite <name>`); consumed by the `fun3d-bench`
    /// driver, ignored by the single-experiment binaries.
    pub suite: Option<String>,
    /// Suppress human-readable tables and commentary ([`say!`],
    /// [`BenchArgs::table`]); machine-readable outputs are unaffected.
    pub quiet: bool,
    /// Write a `fun3d-perf/1` JSON report here (`--json <path>`).
    pub json: Option<String>,
    /// Write a chrome-trace JSON here (`--trace <path>`); only bins that
    /// record per-rank trace events honor it.
    pub trace: Option<String>,
    /// Write a `fun3d-events/1` JSONL event stream here (`--events <path>`);
    /// only bins whose runner emits an event stream honor it.
    pub events: Option<String>,
    /// Thread-team size for the `_par` kernels (`--threads <n>`; defaults to
    /// `FUN3D_THREADS` or 1).
    pub threads: usize,
    /// Record per-thread region profiles (`--profile`; defaults to the
    /// `FUN3D_PROFILE` environment variable).  Runners that honor it wrap
    /// their timed work in [`BenchArgs::profile_begin`] /
    /// [`BenchArgs::profile_finish`].
    pub profile: bool,
    /// Simulated rank-count cap for the message-passing experiments
    /// (`--ranks <n>`; 0 keeps each runner's default sweep).
    pub ranks: usize,
    /// Record per-rank span timelines, message ledgers, and cross-rank flow
    /// arrows in the message-passing experiments (`--trace-ranks`; defaults
    /// to the `FUN3D_TRACE_RANKS` environment variable).
    pub trace_ranks: bool,
    /// Turn on live telemetry in runners that serve requests (`--metrics`;
    /// defaults to the `FUN3D_METRICS` environment variable): windowed
    /// time-series sampling, per-request traces, and SLO health.
    pub metrics: bool,
    /// Write the collected `fun3d-metrics/1` time series here, plus a
    /// Prometheus text exposition at `<path>.prom`
    /// (`--metrics-out <path>`; implies `--metrics`).
    pub metrics_out: Option<String>,
    /// Arm the flight recorder for the run and dump `fun3d-blackbox/1`
    /// JSONL here on panic or solver anomaly (`--blackbox <path>`).  Only
    /// experiments whose [`Experiment::supports_blackbox`] is true drive
    /// the solver deeply enough for the rings to be useful, but arming is
    /// harmless everywhere.
    pub blackbox: Option<String>,
    /// Shared flags that appeared more than once on the command line, in
    /// first-repeat order.  A repeated value flag (`--threads 2 --threads 4`)
    /// used to silently last-win; callers reject these via
    /// [`BenchArgs::reject_duplicates`] so the mistake is named instead.
    pub duplicates: Vec<String>,
}

impl BenchArgs {
    /// Baseline values before any flags are applied.  The thread count
    /// honors `FUN3D_THREADS` so whole suites can be threaded without
    /// touching every invocation.
    pub fn defaults(default_scale: f64) -> Self {
        Self {
            scale: default_scale,
            steps: 3,
            reps: 1,
            suite: None,
            quiet: false,
            json: None,
            trace: None,
            events: None,
            threads: std::env::var("FUN3D_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            profile: std::env::var("FUN3D_PROFILE")
                .map(|v| {
                    let v = v.trim().to_string();
                    !v.is_empty() && v != "0"
                })
                .unwrap_or(false),
            ranks: 0,
            trace_ranks: std::env::var("FUN3D_TRACE_RANKS")
                .map(|v| {
                    let v = v.trim().to_string();
                    !v.is_empty() && v != "0"
                })
                .unwrap_or(false),
            metrics: std::env::var("FUN3D_METRICS")
                .map(|v| {
                    let v = v.trim().to_string();
                    !v.is_empty() && v != "0"
                })
                .unwrap_or(false),
            metrics_out: None,
            blackbox: None,
            duplicates: Vec::new(),
        }
    }

    /// Parse from `std::env::args` for the experiment named `suite`: the
    /// shared flags of [`BenchArgs::parse_known`] (`--scale <f>`, `--full`,
    /// `--steps <n>`, `--reps <n>`, `--suite <name>`, `--quiet`,
    /// `--json <path>`, `--trace <path>`, `--events <path>`,
    /// `--threads <n>`, `--profile`, `--ranks <n>`, `--trace-ranks`,
    /// `--metrics`, `--metrics-out <path>`).
    /// Panics on unknown flags, naming the suite.
    pub fn parse_for(suite: &str, default_scale: f64) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let (out, rest) = Self::parse_known(default_scale, &argv);
        Self::reject_leftovers(suite, &rest);
        out.reject_duplicates(suite);
        out.arm_blackbox();
        out
    }

    /// Panic on the first unrecognized argument, naming the suite so the
    /// message says *which* experiment rejected the flag.
    pub fn reject_leftovers(suite: &str, rest: &[String]) {
        if let Some(other) = rest.first() {
            panic!(
                "unknown argument: {other} (suite {suite}; expected --scale/--full/--steps/--reps/--suite/--quiet/--json/--trace/--events/--threads/--profile/--ranks/--trace-ranks/--metrics/--metrics-out/--blackbox)"
            );
        }
    }

    /// The error message for a repeated shared flag, naming the suite —
    /// `None` when every flag appeared at most once.
    pub fn duplicate_error(&self, suite: &str) -> Option<String> {
        self.duplicates.first().map(|flag| {
            format!("duplicate flag: {flag} given more than once (suite {suite}; each shared flag may appear at most once)")
        })
    }

    /// Panic when a shared flag was repeated, naming the suite — repeated
    /// value flags would otherwise silently last-win.
    pub fn reject_duplicates(&self, suite: &str) {
        if let Some(msg) = self.duplicate_error(suite) {
            panic!("{msg}");
        }
    }

    /// Parse the shared flags out of `argv`, returning the parsed options
    /// and the arguments that were not recognized (in order).  This is the
    /// single flag-parsing helper: the per-table binaries reject leftovers,
    /// the `fun3d-bench` driver layers its own flags on top of them.
    pub fn parse_known(default_scale: f64, argv: &[String]) -> (Self, Vec<String>) {
        const KNOWN: [&str; 16] = [
            "--scale",
            "--full",
            "--steps",
            "--reps",
            "--suite",
            "--quiet",
            "--json",
            "--trace",
            "--events",
            "--threads",
            "--profile",
            "--ranks",
            "--trace-ranks",
            "--metrics",
            "--metrics-out",
            "--blackbox",
        ];
        let mut out = Self::defaults(default_scale);
        let mut rest = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        let value = |i: usize, flag: &str| -> &String {
            argv.get(i)
                .unwrap_or_else(|| panic!("{flag} expects a value"))
        };
        let mut i = 0;
        while i < argv.len() {
            if let Some(flag) = KNOWN.iter().find(|f| **f == argv[i]) {
                if seen.contains(flag) && !out.duplicates.iter().any(|d| d == flag) {
                    out.duplicates.push(flag.to_string());
                }
                seen.push(flag);
            }
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = value(i, "--scale")
                        .parse()
                        .expect("--scale expects a number");
                }
                "--full" => out.scale = 1.0,
                "--steps" => {
                    i += 1;
                    out.steps = value(i, "--steps")
                        .parse()
                        .expect("--steps expects an integer");
                }
                "--reps" => {
                    i += 1;
                    out.reps = value(i, "--reps")
                        .parse()
                        .expect("--reps expects an integer");
                }
                "--suite" => {
                    i += 1;
                    out.suite = Some(value(i, "--suite").clone());
                }
                "--quiet" => out.quiet = true,
                "--json" => {
                    i += 1;
                    out.json = Some(value(i, "--json").clone());
                }
                "--trace" => {
                    i += 1;
                    out.trace = Some(value(i, "--trace").clone());
                }
                "--events" => {
                    i += 1;
                    out.events = Some(value(i, "--events").clone());
                }
                "--threads" => {
                    i += 1;
                    out.threads = value(i, "--threads")
                        .parse()
                        .expect("--threads expects an integer");
                }
                "--profile" => out.profile = true,
                "--ranks" => {
                    i += 1;
                    out.ranks = value(i, "--ranks")
                        .parse()
                        .expect("--ranks expects an integer");
                }
                "--trace-ranks" => out.trace_ranks = true,
                "--metrics" => out.metrics = true,
                "--metrics-out" => {
                    i += 1;
                    out.metrics_out = Some(value(i, "--metrics-out").clone());
                    out.metrics = true;
                }
                "--blackbox" => {
                    i += 1;
                    out.blackbox = Some(value(i, "--blackbox").clone());
                }
                other => rest.push(other.to_string()),
            }
            i += 1;
        }
        assert!(out.scale > 0.0 && out.scale <= 4.0, "scale out of range");
        assert!(out.reps >= 1, "--reps must be at least 1");
        assert!(out.threads >= 1, "--threads must be at least 1");
        assert!(out.ranks <= 1024, "--ranks out of range");
        (out, rest)
    }

    /// The thread context the `--threads` flag selects (`threads == 0`,
    /// as in a struct-literal `Default`, means sequential).
    pub fn par(&self) -> fun3d_sparse::par::ParCtx {
        fun3d_sparse::par::ParCtx::new(self.threads.max(1))
    }

    /// Print a table unless `--quiet` was given.
    pub fn table(&self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        if !self.quiet {
            print_table(title, headers, rows);
        }
    }

    /// A mesh spec for the given paper family, scaled by `self.scale`.
    pub fn family_spec(&self, family: MeshFamily) -> BumpChannelSpec {
        let target = (family.paper_vertices() as f64 * self.scale) as usize;
        BumpChannelSpec::with_target_vertices(target.max(500))
    }

    /// Stamp the shared CLI context into `report` (scale, steps, nthreads).
    pub fn annotate(&self, report: &mut PerfReport) {
        report
            .meta
            .push(("scale".into(), format!("{}", self.scale)));
        report.meta.push(("steps".into(), self.steps.to_string()));
        report
            .meta
            .push(("nthreads".into(), self.threads.max(1).to_string()));
    }

    /// Write `report` to the `--json` path when one was given.
    pub fn emit_report(&self, report: &PerfReport) {
        if let Some(path) = &self.json {
            report
                .write_json(path)
                .expect("writing --json report failed");
            println!("\nwrote perf report to {path}");
        }
    }

    /// Write a chrome trace of `snaps` to the `--trace` path when given.
    pub fn emit_trace(&self, snaps: &[Snapshot]) {
        if let Some(path) = &self.trace {
            std::fs::write(path, fun3d_telemetry::chrome_trace(snaps))
                .expect("writing --trace chrome trace failed");
            println!("wrote chrome trace to {path}");
        }
    }

    /// Write `events` as `fun3d-events/1` JSONL to the `--events` path when
    /// one was given.  An empty stream still writes its schema header, so
    /// downstream tools can tell "no events" from "no file".
    pub fn emit_events(&self, events: &EventStream) {
        if let Some(path) = &self.events {
            events
                .write_jsonl(path)
                .expect("writing --events stream failed");
            println!("wrote event stream to {path}");
        }
    }

    /// Write the collected time series to the `--metrics-out` path when one
    /// was given: `fun3d-metrics/1` JSONL at the path itself, Prometheus
    /// text exposition at `<path>.prom`.
    pub fn emit_metrics(&self, metrics: &SeriesSet) {
        if let Some(path) = &self.metrics_out {
            metrics
                .write_jsonl(path)
                .expect("writing --metrics-out dump failed");
            let prom = format!("{path}.prom");
            std::fs::write(&prom, metrics.prometheus("fun3d"))
                .expect("writing --metrics-out Prometheus exposition failed");
            println!("wrote metrics time series to {path} (+ {prom})");
        }
    }

    /// Arm the flight recorder when `--blackbox <path>` was given: the
    /// rings capture the run's most recent spans/events/counters and dump
    /// to the path on panic or solver anomaly.  A no-op otherwise, so
    /// recorder-off runs pay exactly one relaxed atomic load per probe.
    pub fn arm_blackbox(&self) {
        if let Some(path) = &self.blackbox {
            fun3d_telemetry::blackbox::arm(fun3d_telemetry::blackbox::DEFAULT_CAPACITY, Some(path));
        }
    }

    /// Structured exit for anomaly-terminated runs: when the outcome's
    /// event stream carries [`EventRecord::Anomaly`] records, print one
    /// line per anomaly to stderr and exit with status 3 (distinct from
    /// panics and from gate regressions).  Healthy runs return untouched.
    pub fn exit_if_anomalous(&self, outcome: &RunOutcome) {
        let anomalies: Vec<&EventRecord> = outcome
            .events
            .records
            .iter()
            .filter(|e| matches!(e, EventRecord::Anomaly { .. }))
            .collect();
        if anomalies.is_empty() {
            return;
        }
        for ev in &anomalies {
            if let EventRecord::Anomaly {
                kind,
                step,
                residual_norm,
                detail,
            } = ev
            {
                eprintln!(
                    "anomaly: {kind} at step {step} (residual {residual_norm:.3e}): {detail}"
                );
            }
        }
        eprintln!("run terminated on {} solver anomaly(ies)", anomalies.len());
        std::process::exit(3);
    }

    /// When `--profile` is on, arm the global region profiler (enable and
    /// clear it) ahead of the runner's timed work.  A no-op otherwise, so
    /// profiling-off runs execute the exact PR-4 kernel paths.
    pub fn profile_begin(&self) {
        if self.profile {
            fun3d_sparse::profile::set_enabled(true);
            fun3d_sparse::profile::reset();
        }
    }

    /// When `--profile` is on, drain the region profiler into `reg` and
    /// `events`, then disarm it (so later runs in the same process start
    /// clean).  Each region becomes a `par/{label}` span carrying the wall
    /// time plus derived counters (`nthreads`, `busy_max_s`, `busy_mean_s`,
    /// `join_wait_s`, `imbalance`, and per-thread `busy_t{t}_s`), and one
    /// [`EventRecord::ParRegion`] per region is appended to `events`.
    /// Returns the drained stats for runners that want to print them.
    pub fn profile_finish(&self, reg: &Registry, events: &mut EventStream) -> Vec<RegionStats> {
        if !self.profile {
            return Vec::new();
        }
        let stats = fun3d_sparse::profile::drain();
        fun3d_sparse::profile::set_enabled(false);
        ingest_regions(reg, &stats);
        for s in &stats {
            events.records.push(EventRecord::ParRegion {
                label: s.label.to_string(),
                nthreads: s.nthreads as u64,
                invocations: s.invocations,
                wall_s: s.wall_s,
                busy_max_s: s.busy_max_s(),
                busy_mean_s: s.busy_mean_s(),
                join_wait_s: s.join_wait_s(),
                imbalance: s.imbalance(),
            });
        }
        stats
    }
}

/// Fold drained [`RegionStats`] into a telemetry registry as `par/{label}`
/// spans with derived counters, the shape [`PerfReport::region_metrics`]
/// reads back.  When the same label ran at several team sizes in one run
/// (the `speedup` sweep does this), each team size gets its own
/// `par/{label}@n{nthreads}` span so the derived stats never mix.
pub fn ingest_regions(reg: &Registry, stats: &[RegionStats]) {
    use fun3d_telemetry::TimeDomain;
    for s in stats {
        let multi = stats
            .iter()
            .filter(|o| o.label == s.label && o.nthreads != s.nthreads)
            .count()
            > 0;
        let path = if multi {
            format!("par/{}@n{}", s.label, s.nthreads)
        } else {
            format!("par/{}", s.label)
        };
        reg.record_span(&path, TimeDomain::Measured, s.wall_s, s.invocations);
        let c = |name: &str, v: f64| reg.counter_at(&path, TimeDomain::Measured, name, v);
        c("nthreads", s.nthreads as f64);
        c("busy_max_s", s.busy_max_s());
        c("busy_mean_s", s.busy_mean_s());
        c("join_wait_s", s.join_wait_s());
        c("imbalance", s.imbalance());
        for (t, b) in s.busy_s.iter().enumerate() {
            c(&format!("busy_t{t}_s"), *b);
        }
    }
}

/// `println!` gated on the shared `--quiet` flag: the first argument is a
/// `&BenchArgs`, the rest is a normal format string.
#[macro_export]
macro_rules! say {
    ($args:expr) => {
        if !$args.quiet { println!(); }
    };
    ($args:expr, $($fmt:tt)*) => {
        if !$args.quiet { println!($($fmt)*); }
    };
}

/// The result of one experiment run: a `fun3d-perf/1` report plus the
/// per-rank telemetry snapshots (empty when the runner records no timeline).
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// The machine-readable report (`--json` serializes exactly this).
    pub report: PerfReport,
    /// Per-rank snapshots for chrome-trace export (`--trace`).
    pub telemetry: Vec<Snapshot>,
    /// The run's `fun3d-events/1` stream (`--events` serializes exactly
    /// this; empty when the runner emits no events).
    pub events: EventStream,
    /// The run's `fun3d-metrics/1` time series (`--metrics-out` serializes
    /// exactly this; empty when the runner collects no live metrics).
    pub metrics: SeriesSet,
}

impl From<PerfReport> for RunOutcome {
    fn from(report: PerfReport) -> Self {
        Self {
            report,
            telemetry: Vec::new(),
            events: EventStream::default(),
            metrics: SeriesSet::default(),
        }
    }
}

/// A model-predicted value for one measured metric of a report, in the
/// metric's own units — the harness prints these as model-vs-measured
/// columns the way the paper reports predicted vs. observed rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEstimate {
    /// Metric key in the report this estimate corresponds to.
    pub metric: String,
    /// The machine model's prediction for that metric.
    pub predicted: f64,
}

/// A runnable benchmark: one paper table/figure regenerator (or kernel
/// microbenchmark) exposed as a library call, so the harness can schedule
/// warmup and repetitions in-process instead of shelling out to the bins.
pub trait Experiment: Send + Sync {
    /// Stable name (equals the binary name: `table1`, `stream`, ...).
    fn name(&self) -> &'static str;
    /// One-line description for `fun3d-bench list`.
    fn description(&self) -> &'static str;
    /// The scale the standalone binary defaults to.
    fn default_scale(&self) -> f64;
    /// Execute once with the given options.
    fn run(&self, args: &BenchArgs) -> RunOutcome;
    /// Machine-model predictions for metrics of `report` on `machine`
    /// (empty when the experiment has no analytic model).
    fn model(&self, _report: &PerfReport, _machine: &MachineSpec) -> Vec<ModelEstimate> {
        Vec::new()
    }
    /// Whether `--blackbox` is meaningful for this experiment: true for
    /// runners that drive full ΨNKS solves (where the flight recorder and
    /// health monitor have material to capture), false for pure kernel
    /// microbenchmarks.
    fn supports_blackbox(&self) -> bool {
        false
    }
}

/// Print a Markdown-ish table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Format seconds adaptively.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// A smoothly perturbed near-freestream state (so Jacobians and fluxes are
/// generic, not at the trivial constant state).
pub fn perturbed_state(disc: &Discretization, amplitude: f64) -> FieldVec {
    let mesh = disc.mesh();
    let mut q = disc.initial_state();
    for v in 0..mesh.nverts() {
        let x = mesh.coords()[v];
        let mut s = q.get(v);
        for c in 0..disc.ncomp() {
            s[c] +=
                amplitude * ((c + 1) as f64) * (1.3 * x[0] + 0.7 * x[1]).sin() * (0.9 * x[2]).cos();
        }
        q.set(v, &s);
    }
    q
}

/// Assemble a representative shifted Jacobian (first-order, pseudo-time
/// diagonal at the given CFL) — the matrix the solve-phase experiments
/// exercise.
pub fn representative_jacobian(
    mesh: &TetMesh,
    model: FlowModel,
    layout: FieldLayout,
    cfl: f64,
) -> CsrMatrix {
    let disc = Discretization::new(mesh, model, layout, SpatialOrder::First);
    let q = perturbed_state(&disc, 0.01);
    let mut jac = disc.jacobian(&q);
    let d: Vec<f64> = {
        let sums = disc.wavespeed_sums(&q);
        let nv = mesh.nverts();
        let ncomp = disc.ncomp();
        let mut out = vec![0.0; nv * ncomp];
        for v in 0..nv {
            for c in 0..ncomp {
                let idx = match layout {
                    FieldLayout::Interlaced => v * ncomp + c,
                    FieldLayout::Segregated => c * nv + v,
                };
                out[idx] = sums[v];
            }
        }
        out
    };
    jac.shift_diagonal_by(1.0 / cfl, &d);
    jac
}

/// Median of repeated timings of `f` (after one warmup call).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_sparse::ilu::{IluFactors, IluOptions};

    #[test]
    fn family_spec_scales() {
        let args = BenchArgs {
            scale: 0.1,
            steps: 3,
            ..Default::default()
        };
        let spec = args.family_spec(MeshFamily::Small);
        let got = spec.nverts() as f64;
        assert!((got / 2267.7 - 1.0).abs() < 0.5, "{got}");
    }

    #[test]
    fn representative_jacobian_is_factorable() {
        let mesh = BumpChannelSpec::with_dims(6, 5, 5).build();
        let jac = representative_jacobian(
            &mesh,
            FlowModel::incompressible(),
            FieldLayout::Interlaced,
            10.0,
        );
        IluFactors::factor(&jac, &IluOptions::with_fill(0)).expect("factorable");
    }

    #[test]
    fn parse_known_accepts_rank_flags_and_returns_leftovers() {
        let argv: Vec<String> = ["--ranks", "8", "--trace-ranks", "--whoops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, rest) = BenchArgs::parse_known(0.5, &argv);
        assert_eq!(args.ranks, 8);
        assert!(args.trace_ranks);
        assert_eq!(rest, vec!["--whoops".to_string()]);
    }

    #[test]
    fn parse_known_accepts_metrics_flags() {
        let (args, rest) = BenchArgs::parse_known(0.5, &[]);
        assert!(rest.is_empty());
        assert_eq!(args.metrics_out, None);
        let argv: Vec<String> = ["--metrics"].iter().map(|s| s.to_string()).collect();
        let (args, rest) = BenchArgs::parse_known(0.5, &argv);
        assert!(args.metrics);
        assert!(rest.is_empty());
        // --metrics-out implies --metrics.
        let argv: Vec<String> = ["--metrics-out", "m.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, rest) = BenchArgs::parse_known(0.5, &argv);
        assert!(args.metrics);
        assert_eq!(args.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(rest.is_empty());
    }

    #[test]
    fn parse_known_accepts_blackbox_flag() {
        let (args, rest) = BenchArgs::parse_known(0.5, &[]);
        assert!(rest.is_empty());
        assert_eq!(args.blackbox, None);
        let argv: Vec<String> = ["--blackbox", "bb.jsonl"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, rest) = BenchArgs::parse_known(0.5, &argv);
        assert_eq!(args.blackbox.as_deref(), Some("bb.jsonl"));
        assert!(rest.is_empty());
        // Repeats are caught like every other shared flag.
        let argv: Vec<String> = ["--blackbox", "a", "--blackbox", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, _) = BenchArgs::parse_known(0.5, &argv);
        assert_eq!(args.duplicates, vec!["--blackbox".to_string()]);
    }

    #[test]
    fn duplicate_flags_are_detected_and_rejected_by_suite_name() {
        // `--threads 2 --threads 4` used to silently last-win; it must now
        // be detected by the parser and rejected with the suite named.
        let argv: Vec<String> = ["--threads", "2", "--scale", "0.1", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, rest) = BenchArgs::parse_known(0.5, &argv);
        assert!(rest.is_empty());
        assert_eq!(args.duplicates, vec!["--threads".to_string()]);
        let msg = args.duplicate_error("serve").expect("duplicate reported");
        assert!(msg.contains("--threads") && msg.contains("serve"), "{msg}");
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = std::panic::catch_unwind(|| args.reject_duplicates("serve"))
            .expect_err("repeated flag must be rejected");
        std::panic::set_hook(prev);
        let panic_msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            panic_msg.contains("--threads") && panic_msg.contains("serve"),
            "{panic_msg}"
        );
        // Boolean flags repeat-checked too; singles stay clean.
        let argv: Vec<String> = ["--quiet", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, _) = BenchArgs::parse_known(0.5, &argv);
        assert_eq!(args.duplicates, vec!["--quiet".to_string()]);
        let argv: Vec<String> = ["--threads", "2", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (args, _) = BenchArgs::parse_known(0.5, &argv);
        assert!(args.duplicates.is_empty());
        assert!(args.duplicate_error("spmv").is_none());
    }

    #[test]
    fn every_experiment_rejects_typoed_flags_by_suite_name() {
        // Every binary funnels through `parse_for(name, ..)`, which calls
        // `reject_leftovers`; the panic must name the suite and the flag so
        // a typo in a 17-binary sweep is attributable from the message.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for e in crate::runners::all() {
            let name = e.name();
            let err = std::panic::catch_unwind(|| {
                BenchArgs::reject_leftovers(name, &["--typo".to_string()]);
            })
            .expect_err("typo'd flag must be rejected");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
            assert!(
                msg.contains(name) && msg.contains("--typo"),
                "suite {name}: {msg}"
            );
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn time_median_returns_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(t >= 0.0);
    }
}
