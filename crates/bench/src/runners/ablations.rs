//! Ablation studies for the Section 2.4 algorithmic tunings that don't have
//! a dedicated table in the paper but are discussed in the text:
//!
//! 1. GMRES restart dimension ("values in the range of 10-30"),
//! 2. inexact-Newton inner tolerance, constant vs Eisenstat-Walker
//!    ("progressively tighter tolerances ... saved Newton iterations ...
//!    but did not save time"),
//! 3. SER exponent `p` ("damped to 0.75 ... may be as large as 1.5"),
//! 4. vertex ordering quality for the global ILU ("natural ordering in each
//!    subdomain block"; RCM for locality),
//! 5. RASM vs classic ASM ("only one communication phase ... as opposed to
//!    two").

use crate::{representative_jacobian, say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::config::{apply_orderings, CaseConfig, LayoutConfig};
use fun3d_core::driver::run_case;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::SpatialOrder;
use fun3d_mesh::generator::MeshFamily;
use fun3d_mesh::reorder::{EdgeOrdering, VertexOrdering};
use fun3d_partition::partition_kway;
use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::{AdditiveSchwarz, IluPrecond, Preconditioner};
use fun3d_solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
use fun3d_sparse::ilu::IluOptions;
use fun3d_sparse::layout::FieldLayout;

/// `ablations` as a harness experiment.
pub struct Ablations;

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn description(&self) -> &'static str {
        "Section 2.4 algorithmic knobs: restart, forcing, SER, ordering, RASM"
    }
    fn default_scale(&self) -> f64 {
        0.3
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn supports_blackbox(&self) -> bool {
        true
    }
}

fn base_nks() -> PseudoTransientOptions {
    PseudoTransientOptions {
        cfl0: 5.0,
        cfl_exponent: 1.2,
        cfl_max: 1e6,
        max_steps: 80,
        target_reduction: 1e-8,
        krylov: GmresOptions {
            restart: 20,
            rtol: 1e-2,
            max_iters: 120,
            ..Default::default()
        },
        precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
        second_order_switch: None,
        matrix_free: false,
        line_search: true,
        bcsr_block: None,
        forcing: Forcing::Constant,
        pc_refresh: 1,
    }
}

/// Run the ablation suite once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Small);
    say!(
        args,
        "Ablations on {} vertices (scale {:.2})",
        spec.nverts(),
        args.scale
    );
    let mut perf = fun3d_telemetry::report::PerfReport::new("ablations")
        .with_meta("nverts", spec.nverts().to_string());
    args.annotate(&mut perf);

    // --- 1. Restart dimension ---
    let mut rows = Vec::new();
    for restart in [10usize, 20, 30] {
        let mut cfg = CaseConfig {
            mesh: spec,
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: base_nks(),
        };
        cfg.nks.krylov.restart = restart;
        let r = run_case(&cfg);
        perf.push_metric(format!("restart{restart}_steps"), r.history.nsteps() as f64);
        perf.push_metric(
            format!("restart{restart}_linear_its"),
            r.history.total_linear_iters() as f64,
        );
        rows.push(vec![
            restart.to_string(),
            r.history.nsteps().to_string(),
            r.history.total_linear_iters().to_string(),
            format!("{:.2}s", r.history.total_time()),
            r.history.converged.to_string(),
        ]);
    }
    args.table(
        "Ablation 1: GMRES restart dimension",
        &["restart", "steps", "linear its", "time", "converged"],
        &rows,
    );

    // --- 2. Inner tolerance / forcing ---
    let mut rows = Vec::new();
    for (name, rtol, forcing) in [
        ("constant 1e-1", 1e-1, Forcing::Constant),
        ("constant 1e-2", 1e-2, Forcing::Constant),
        ("constant 1e-3", 1e-3, Forcing::Constant),
        (
            "Eisenstat-Walker",
            1e-2,
            // Safeguarded ceiling: without it the plateau phase picks
            // near-unity tolerances and the continuation stalls.
            Forcing::EisenstatWalker {
                gamma: 0.9,
                eta_min: 1e-6,
                eta_max: 0.1,
            },
        ),
    ] {
        let mut cfg = CaseConfig {
            mesh: spec,
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: base_nks(),
        };
        cfg.nks.krylov.rtol = rtol;
        cfg.nks.forcing = forcing;
        let r = run_case(&cfg);
        rows.push(vec![
            name.to_string(),
            r.history.nsteps().to_string(),
            r.history.total_linear_iters().to_string(),
            format!("{:.2}s", r.history.total_time()),
        ]);
    }
    args.table(
        "Ablation 2: inexact-Newton inner tolerance (paper: loose+constant wins on time)",
        &["forcing", "steps", "linear its", "time"],
        &rows,
    );

    // --- 3. SER exponent ---
    let mut rows = Vec::new();
    for p in [0.75f64, 1.0, 1.5] {
        let mut cfg = CaseConfig {
            mesh: spec,
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: base_nks(),
        };
        cfg.nks.max_steps = 200; // small exponents need a longer leash
        cfg.nks.cfl_exponent = p;
        let r = run_case(&cfg);
        rows.push(vec![
            format!("{p}"),
            r.history.nsteps().to_string(),
            r.history.total_linear_iters().to_string(),
            r.history.converged.to_string(),
        ]);
    }
    args.table(
        "Ablation 3: SER exponent p (smooth flow: larger p converges in fewer steps)",
        &["p", "steps", "linear its", "converged"],
        &rows,
    );

    // --- 4. Vertex ordering and global ILU quality ---
    let base_mesh = spec.build();
    let mut rows = Vec::new();
    for (name, vord) in [
        ("natural", VertexOrdering::Natural),
        ("RCM", VertexOrdering::ReverseCuthillMcKee),
        ("random", VertexOrdering::Random(11)),
    ] {
        let mesh = apply_orderings(base_mesh.clone(), vord, EdgeOrdering::VertexSorted);
        let jac = representative_jacobian(
            &mesh,
            FlowModel::incompressible(),
            FieldLayout::Interlaced,
            50.0,
        );
        let n = jac.nrows();
        let rhs = vec![1.0; n];
        let pc = IluPrecond::factor(&jac, &IluOptions::with_fill(0)).unwrap();
        let mut x = vec![0.0; n];
        let res = gmres(
            &CsrOperator::new(&jac),
            &pc,
            &rhs,
            &mut x,
            &GmresOptions {
                restart: 30,
                rtol: 1e-8,
                max_iters: 3000,
                ..Default::default()
            },
        );
        rows.push(vec![
            name.to_string(),
            jac.bandwidth().to_string(),
            res.iterations.to_string(),
            res.converged.to_string(),
        ]);
    }
    args.table(
        "Ablation 4: vertex ordering -> matrix bandwidth and ILU(0)-GMRES iterations",
        &["ordering", "bandwidth", "its", "converged"],
        &rows,
    );

    // --- 5. RASM vs classic ASM ---
    let graph = base_mesh.vertex_graph();
    let jac = representative_jacobian(
        &base_mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let rhs = vec![1.0; n];
    let part = partition_kway(&graph, 8, 3);
    let owned_sets: Vec<Vec<usize>> = {
        let mut sets = vec![Vec::new(); 8];
        for (v, &p) in part.part.iter().enumerate() {
            for c in 0..4 {
                sets[p as usize].push(v * 4 + c);
            }
        }
        sets
    };
    let mut rows = Vec::new();
    for (name, restricted) in [("RASM", true), ("classic ASM", false)] {
        let pc = AdditiveSchwarz::new(&jac, &owned_sets, 1, &IluOptions::with_fill(0), restricted)
            .unwrap();
        let mut x = vec![0.0; n];
        let res = gmres(
            &CsrOperator::new(&jac),
            &pc,
            &rhs,
            &mut x,
            &GmresOptions {
                restart: 30,
                rtol: 1e-8,
                max_iters: 3000,
                ..Default::default()
            },
        );
        let comms = if restricted { 1 } else { 2 };
        rows.push(vec![
            name.to_string(),
            res.iterations.to_string(),
            comms.to_string(),
            res.converged.to_string(),
        ]);
        let mut z = vec![0.0; n];
        pc.apply(&rhs, &mut z); // touch to keep symmetry of work between rows
    }
    args.table(
        "Ablation 5: restricted vs classic ASM (overlap 1, 8 subdomains)",
        &["variant", "its", "comm phases/apply", "converged"],
        &rows,
    );
    say!(
        args,
        "\nRASM converges at least as well with half the communication — the paper's choice."
    );

    // --- 6. Preconditioner refresh frequency (lagged Jacobian PC) ---
    let mut rows = Vec::new();
    for refresh in [1usize, 2, 4, 8] {
        let mut cfg = CaseConfig {
            mesh: spec,
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: base_nks(),
        };
        cfg.nks.pc_refresh = refresh;
        let r = run_case(&cfg);
        let t_pc = r.history.phases().precond;
        perf.push_metric(format!("refresh{refresh}_pc_setup_s"), t_pc);
        perf.push_metric(
            format!("refresh{refresh}_linear_its"),
            r.history.total_linear_iters() as f64,
        );
        rows.push(vec![
            refresh.to_string(),
            r.history.nsteps().to_string(),
            r.history.total_linear_iters().to_string(),
            format!("{:.2}s", t_pc),
            format!("{:.2}s", r.history.total_time()),
            r.history.converged.to_string(),
        ]);
    }
    args.table(
        "Ablation 6: preconditioner refresh frequency (rebuild every k steps)",
        &[
            "refresh",
            "steps",
            "linear its",
            "PC setup time",
            "total time",
            "converged",
        ],
        &rows,
    );
    say!(
        args,
        "\nLagging trades factorization time for Krylov iterations — the 'refresh"
    );
    say!(
        args,
        "frequency for Jacobian preconditioner' knob of the paper's Newton list."
    );
    perf.into()
}
