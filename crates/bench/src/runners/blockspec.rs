//! Micro-benchmark of the BCSR micro-kernel tiers: scalar (`generic`)
//! vs const-unrolled (`fixed`) vs repeated-structure-batched (`batched`)
//! SpMV and block-ILU sweeps, per block size (4: incompressible, 5:
//! compressible).
//!
//! Every tier is verified bitwise-identical in-run before anything is
//! timed, the repeated-structure telemetry (template hit rate, batch
//! lengths) is recorded as counters, and the achieved-bandwidth spans feed
//! the `spmv_bcsr:gbps` / `bilu_sweep:gbps` gate metrics the CI perf
//! pipeline regresses against.

use crate::{
    representative_jacobian, say, time_median, BenchArgs, Experiment, ModelEstimate, RunOutcome,
};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_memmodel::spmv_model::{bcsr_traffic, predicted_time};
use fun3d_mesh::generator::MeshFamily;
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::block_ilu::BlockIluFactors;
use fun3d_sparse::blockspec::BlockKernel;
use fun3d_sparse::layout::FieldLayout;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::Registry;

/// `blockspec` as a harness experiment.
pub struct Blockspec;

const TIERS: [BlockKernel; 3] = [
    BlockKernel::Generic,
    BlockKernel::Fixed,
    BlockKernel::Batched,
];

impl Experiment for Blockspec {
    fn name(&self) -> &'static str {
        "blockspec"
    }
    fn description(&self) -> &'static str {
        "BCSR micro-kernel tiers (generic/fixed/batched) per block size, with structure telemetry"
    }
    fn default_scale(&self) -> f64 {
        0.25
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn model(&self, report: &PerfReport, machine: &MachineSpec) -> Vec<ModelEstimate> {
        // Bandwidth-bound floor per block size: every tier shares the same
        // traffic model, so one prediction prices them all.
        let mut out = Vec::new();
        for bs in [4usize, 5] {
            let (Some(nbrows), Some(nblocks)) = (
                report.metric(&format!("b{bs}_nbrows")),
                report.metric(&format!("b{bs}_nnz_blocks")),
            ) else {
                continue;
            };
            out.push(ModelEstimate {
                metric: format!("spmv_b{bs}:batched_s"),
                predicted: predicted_time(
                    &bcsr_traffic(nbrows as usize, nblocks as usize, bs, 1.0),
                    machine.stream_bytes_per_s,
                ),
            });
        }
        out
    }
}

/// Time the three kernel tiers on representative Jacobians at bs = 4 and 5.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Small);
    let mesh = spec.build();
    say!(
        args,
        "Blockspec benchmark: {} vertices (scale {:.2}), kernels generic/fixed/batched",
        mesh.nverts(),
        args.scale
    );
    let ctx = args.par();
    let tel = Registry::enabled(0);
    let mut events = fun3d_telemetry::events::EventStream::default();
    let mut perf = PerfReport::new("blockspec").with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut verdicts: Vec<String> = Vec::new();
    args.profile_begin();
    for (bs, model) in [
        (4usize, FlowModel::incompressible()),
        (5, FlowModel::compressible()),
    ] {
        let jac = representative_jacobian(&mesh, model, FieldLayout::Interlaced, 50.0);
        let n = jac.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
        let rhs: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
        let base = BcsrMatrix::from_csr(&jac, bs);
        let spmv_bytes = base.spmv_traffic_bytes();

        // Identity check before anything is timed: all tiers must agree
        // bitwise on both the matvec and the sweep.
        let mats: Vec<BcsrMatrix> = TIERS.iter().map(|&k| base.clone().with_kernel(k)).collect();
        let facs: Vec<BlockIluFactors> = mats
            .iter()
            .map(|m| BlockIluFactors::factor(m).expect("representative Jacobian must factor"))
            .collect();
        let sweep_bytes = facs[0].solve_traffic_bytes();
        let mut y_ref = vec![0.0; n];
        let mut x_ref = vec![0.0; n];
        mats[0].spmv_par(&x, &mut y_ref, &ctx);
        facs[0].solve_par(&rhs, &mut x_ref, &ctx);
        for (m, f) in mats.iter().zip(&facs).skip(1) {
            let mut y = vec![0.0; n];
            m.spmv_par(&x, &mut y, &ctx);
            assert_eq!(
                y_ref,
                y,
                "bs={bs} {}: spmv not bitwise identical",
                m.kernel()
            );
            let mut xs = vec![0.0; n];
            f.solve_par(&rhs, &mut xs, &ctx);
            assert_eq!(
                x_ref,
                xs,
                "bs={bs} {}: sweep not bitwise identical",
                m.kernel()
            );
        }

        // Structure telemetry from the batched tier.
        let stats = mats[2]
            .structure_stats()
            .expect("batched tier has structure");
        perf.push_metric(format!("b{bs}:hit_rate"), stats.hit_rate);
        perf.push_metric(format!("b{bs}:mean_batch_len"), stats.mean_batch_len);
        perf.push_metric(format!("b{bs}:ntemplates"), stats.ntemplates as f64);
        perf.push_metric(format!("b{bs}_nbrows"), base.nbrows() as f64);
        perf.push_metric(format!("b{bs}_nnz_blocks"), base.nnz_blocks() as f64);
        {
            let _g = tel.span(&format!("blockspec/structure_b{bs}"));
            tel.counter("templates", stats.ntemplates as f64);
            tel.counter("batches", stats.nbatches as f64);
            tel.counter("hit_rate", stats.hit_rate);
            tel.counter("mean_batch_len", stats.mean_batch_len);
            tel.counter("max_batch_len", stats.max_batch_len as f64);
        }

        // Timed tiers: spans carry the analytic byte floor, so each tier
        // gets an achieved-bandwidth row and a `<span>:gbps` gate metric.
        let mut t_spmv = [0.0f64; 3];
        let mut t_sweep = [0.0f64; 3];
        let mut y = vec![0.0; n];
        let mut xs = vec![0.0; n];
        for (ti, kernel) in TIERS.iter().enumerate() {
            let (m, f) = (&mats[ti], &facs[ti]);
            let spmv_label = format!("blockspec/spmv_b{bs}_{kernel}");
            t_spmv[ti] = time_median(7, || {
                let _g = tel.span(&spmv_label);
                tel.counter("bytes", spmv_bytes);
                m.spmv_par(&x, &mut y, &ctx)
            });
            let sweep_label = format!("blockspec/bilu_b{bs}_{kernel}");
            t_sweep[ti] = time_median(7, || {
                let _g = tel.span(&sweep_label);
                tel.counter("bytes", sweep_bytes);
                f.solve_par(&rhs, &mut xs, &ctx)
            });
            perf.push_metric(format!("spmv_b{bs}:{kernel}_s"), t_spmv[ti]);
            perf.push_metric(format!("bilu_b{bs}:{kernel}_s"), t_sweep[ti]);
            if ti > 0 {
                perf.push_metric(
                    format!("spmv_b{bs}:{kernel}_speedup"),
                    t_spmv[0] / t_spmv[ti],
                );
                perf.push_metric(
                    format!("bilu_b{bs}:{kernel}_speedup"),
                    t_sweep[0] / t_sweep[ti],
                );
            }
            rows.push(vec![
                format!("{bs}x{bs}"),
                kernel.to_string(),
                format!("{:.3} ms", t_spmv[ti] * 1e3),
                format!("{:.2}", spmv_bytes / t_spmv[ti] / 1e9),
                format!("{:.3} ms", t_sweep[ti] * 1e3),
                format!("{:.2}", sweep_bytes / t_sweep[ti] / 1e9),
                if ti == 0 {
                    "1.00x / 1.00x".into()
                } else {
                    format!(
                        "{:.2}x / {:.2}x",
                        t_spmv[0] / t_spmv[ti],
                        t_sweep[0] / t_sweep[ti]
                    )
                },
            ]);
        }
        // Headline gate metrics at the tier the solver stack actually runs
        // (FUN3D_BLOCK_KERNEL, default batched) — so a baseline saved under
        // `generic` gates a default run as `improved`, and a tier regression
        // gates as a bandwidth drop.
        if bs == 5 {
            let hi = TIERS
                .iter()
                .position(|&k| k == BlockKernel::from_env())
                .expect("every kernel tier is timed");
            perf.push_metric("spmv_bcsr:gbps", spmv_bytes / t_spmv[hi] / 1e9);
            perf.push_metric("bilu_sweep:gbps", sweep_bytes / t_sweep[hi] / 1e9);
        }
        verdicts.push(format!(
            "bs={bs}: batched {:.2}x spmv, {:.2}x sweep over generic (hit rate {:.0}%, mean batch {:.1})",
            t_spmv[0] / t_spmv[2],
            t_sweep[0] / t_sweep[2],
            stats.hit_rate * 100.0,
            stats.mean_batch_len,
        ));
        if bs == 5 {
            let pays = t_spmv[0] / t_spmv[2] > 1.0 && t_sweep[0] / t_sweep[2] > 1.0;
            verdicts.push(format!(
                "blockspec verdict: batched {} ({:.2}x spmv over generic at bs=5)",
                if pays { "pays off" } else { "shows no gain" },
                t_spmv[0] / t_spmv[2],
            ));
        }
    }
    let _regions = args.profile_finish(&tel, &mut events);
    args.table(
        "BCSR micro-kernel tiers (median of 7)",
        &[
            "block", "kernel", "spmv", "GB/s", "sweep", "GB/s", "speedup",
        ],
        &rows,
    );
    for v in &verdicts {
        say!(args, "{}", v);
    }
    perf.push_metric("identity_ok", 1.0);
    let snapshot = tel.snapshot();
    let perf = perf.with_snapshot(&snapshot);
    RunOutcome {
        report: perf,
        telemetry: vec![snapshot],
        events,
        metrics: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockspec_reports_tiers_and_structure() {
        let args = BenchArgs {
            scale: 0.02,
            quiet: true,
            ..BenchArgs::defaults(0.02)
        };
        let out = run(&args);
        let r = &out.report;
        for bs in [4, 5] {
            for kernel in ["generic", "fixed", "batched"] {
                assert!(
                    r.metric(&format!("spmv_b{bs}:{kernel}_s")).unwrap() > 0.0,
                    "missing spmv_b{bs}:{kernel}_s"
                );
                assert!(r.metric(&format!("bilu_b{bs}:{kernel}_s")).unwrap() > 0.0);
            }
            let hit = r.metric(&format!("b{bs}:hit_rate")).unwrap();
            assert!((0.0..=1.0).contains(&hit), "hit rate {hit}");
            assert!(r.metric(&format!("b{bs}:ntemplates")).unwrap() >= 1.0);
            assert!(r.metric(&format!("spmv_b{bs}:batched_speedup")).unwrap() > 0.0);
        }
        assert_eq!(r.metric("identity_ok"), Some(1.0));
        assert!(r.metric("spmv_bcsr:gbps").unwrap() > 0.0);
        assert!(r.metric("bilu_sweep:gbps").unwrap() > 0.0);
        // The tier spans carry byte counters, so achieved-bandwidth
        // metrics exist for every (block size, tier) pair.
        let bw = r.bandwidth_metrics();
        for key in [
            "blockspec/spmv_b5_generic:gbps",
            "blockspec/spmv_b5_batched:gbps",
            "blockspec/bilu_b4_fixed:gbps",
        ] {
            assert!(
                bw.iter().any(|(k, v)| k == key && *v > 0.0),
                "missing bandwidth metric {key}"
            );
        }
    }
}
