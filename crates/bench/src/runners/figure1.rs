//! Regenerates **Figure 1**: average vertices per processor and the parallel
//! performance metrics for the fixed-size 2.8M-vertex problem on up to 3072
//! nodes of ASCI Red (dual 333 MHz Pentium Pro nodes).
//!
//! The hardware is simulated through the calibrated fixed-size scaling model
//! (see `fun3d_core::scaling`); the headline numbers to reproduce are the
//! ~91% implementation efficiency per time step from 256 to 2048 nodes and
//! aggregate Gflop/s in the low hundreds at the top of the range.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::efficiency::{implementation_efficiency, ScalingPoint};
use fun3d_core::scaling::{Calibration, FixedSizeModel, ProblemShape};
use fun3d_memmodel::machine::MachineSpec;

/// `figure1` as a harness experiment.
pub struct Figure1;

impl Experiment for Figure1 {
    fn name(&self) -> &'static str {
        "figure1"
    }
    fn description(&self) -> &'static str {
        "fixed-size scaling of the 2.8M-vertex case on the ASCI Red model"
    }
    fn default_scale(&self) -> f64 {
        1.0
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Figure 1 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let model = FixedSizeModel {
        machine: MachineSpec::asci_red(),
        shape: ProblemShape::large_euler(),
        cal: Calibration::paper_defaults(),
    };
    let procs = [128usize, 256, 512, 768, 1024, 1536, 2048, 3072];
    let pts = model.series(&procs);
    let base = &pts[0];

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            let eta_overall = (base.time / p.time) * base.nprocs as f64 / p.nprocs as f64;
            let eta_alg = base.its / p.its;
            vec![
                p.nprocs.to_string(),
                format!("{:.0}", p.verts_per_proc),
                format!("{:.0}s", p.time),
                format!("{:.2}", base.time / p.time),
                format!("{:.2}", eta_overall),
                format!("{:.2}", eta_overall / eta_alg),
                format!("{:.1}", p.gflops),
                format!("{:.1}", 1e3 * p.time / p.its),
            ]
        })
        .collect();
    args.table(
        "Figure 1: fixed-size scaling of the 2.8M-vertex case on the ASCI Red model",
        &[
            "Nodes",
            "Verts/node",
            "Exec time",
            "Speedup",
            "eta_overall",
            "eta_impl/step",
            "Gflop/s",
            "ms/step(x1000)",
        ],
        &rows,
    );

    // The paper's headline: implementation efficiency per time step from
    // 256 to 2048 nodes is 91%.
    let p256 = pts.iter().find(|p| p.nprocs == 256).unwrap();
    let p2048 = pts.iter().find(|p| p.nprocs == 2048).unwrap();
    let eff = implementation_efficiency(
        &ScalingPoint {
            nprocs: 256,
            its: p256.its.round() as usize,
            time: p256.time,
        },
        &ScalingPoint {
            nprocs: 2048,
            its: p2048.its.round() as usize,
            time: p2048.time,
        },
    );
    say!(
        args,
        "\nImplementation efficiency per step, 256 -> 2048 nodes: {:.0}% (paper: 91%)",
        eff * 100.0
    );
    say!(
        args,
        "Gflop/s at 3072 nodes: {:.0} (paper: ~227 with 2 CPUs/node on the flux phase,",
        pts.last().unwrap().gflops
    );
    say!(
        args,
        "~120 single-threaded; this model charges one CPU per node — see table5 for the"
    );
    say!(args, "multithreaded flux phase).");

    let mut perf =
        fun3d_telemetry::report::PerfReport::new("figure1").with_meta("machine", "asci_red");
    args.annotate(&mut perf);
    perf.push_metric("eta_impl_per_step_256_2048", eff);
    for p in &pts {
        perf.push_metric(format!("time_s_p{}", p.nprocs), p.time);
        perf.push_metric(format!("gflops_p{}", p.nprocs), p.gflops);
    }
    perf.into()
}
