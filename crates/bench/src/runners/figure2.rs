//! Regenerates **Figure 2**: aggregate Gflop/s and execution time for the
//! 2.8M-vertex case on the paper's three most capable machines — ASCI Red,
//! ASCI Blue Pacific, and the Cray T3E — with the ideal-scaling reference.
//!
//! The machines are long gone; each is represented by its calibrated
//! [`fun3d_memmodel::machine::MachineSpec`] inside the fixed-size scaling
//! model.  Shape to reproduce: near-linear Gflop/s on Red, T3E the fastest
//! per node on memory-bound phases, execution time flattening as the
//! surface-to-volume ratio and iteration growth bite.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::scaling::{Calibration, FixedSizeModel, ProblemShape};
use fun3d_memmodel::machine::MachineSpec;

/// `figure2` as a harness experiment.
pub struct Figure2;

impl Experiment for Figure2 {
    fn name(&self) -> &'static str {
        "figure2"
    }
    fn description(&self) -> &'static str {
        "Gflop/s and execution time across the paper's three big machines"
    }
    fn default_scale(&self) -> f64 {
        1.0
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Figure 2 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let machines = [
        MachineSpec::asci_red(),
        MachineSpec::asci_blue_pacific(),
        MachineSpec::cray_t3e(),
    ];
    let procs = [128usize, 256, 512, 1024, 2048, 3072];

    let mut gflop_rows: Vec<Vec<String>> = Vec::new();
    let mut time_rows: Vec<Vec<String>> = Vec::new();
    let mut models = Vec::new();
    for m in &machines {
        models.push(FixedSizeModel {
            machine: m.clone(),
            shape: ProblemShape::large_euler(),
            cal: Calibration::paper_defaults(),
        });
    }
    for &p in &procs {
        let mut grow = vec![p.to_string()];
        let mut trow = vec![p.to_string()];
        for (m, model) in machines.iter().zip(&models) {
            if p > m.max_nodes {
                grow.push("-".to_string());
                trow.push("-".to_string());
                continue;
            }
            let pt = model.predict(p);
            grow.push(format!("{:.1}", pt.gflops));
            trow.push(format!("{:.0}s", pt.time));
        }
        // Ideal scaling lines (linear from the 128-node Red point).
        let base = models[0].predict(128);
        grow.push(format!("{:.1}", base.gflops * p as f64 / 128.0));
        trow.push(format!("{:.0}s", base.time * 128.0 / p as f64));
        gflop_rows.push(grow);
        time_rows.push(trow);
    }
    args.table(
        "Figure 2a: aggregate Gflop/s vs nodes",
        &[
            "Nodes",
            "ASCI Red",
            "Blue Pacific",
            "Cray T3E",
            "ideal (Red)",
        ],
        &gflop_rows,
    );
    args.table(
        "Figure 2b: execution time vs nodes",
        &[
            "Nodes",
            "ASCI Red",
            "Blue Pacific",
            "Cray T3E",
            "ideal (Red)",
        ],
        &time_rows,
    );
    say!(
        args,
        "\nShape to check: Gflop/s nearly linear on Red but time above the ideal line"
    );
    say!(
        args,
        "(growing redundant work); T3E fastest per node on the bandwidth-bound solve;"
    );
    say!(
        args,
        "Blue Pacific limited by its interconnect; T3E/Blue curves stop at their"
    );
    say!(args, "machine sizes (1024/1464 nodes) as in the paper.");

    let mut perf = fun3d_telemetry::report::PerfReport::new("figure2");
    args.annotate(&mut perf);
    for (m, model) in machines.iter().zip(&models) {
        for &p in &procs {
            if p > m.max_nodes {
                continue;
            }
            let pt = model.predict(p);
            perf.push_metric(format!("gflops_{}_p{p}", m.name), pt.gflops);
            perf.push_metric(format!("time_s_{}_p{p}", m.name), pt.time);
        }
    }
    perf.into()
}
