//! Regenerates **Figure 3**: TLB misses (log scale) and secondary-cache
//! misses for the 22,677-vertex case under the data-ordering options, via
//! the trace-driven cache/TLB simulator configured as the paper's Origin
//! 2000 R10000 (32 KB L1, 4 MB L2, 64-entry TLB over 16 KB pages).
//!
//! The paper's bars contrast the vector-machine edge coloring ("NOER") with
//! reordered edges, and non-interlaced with interlaced/blocked storage; edge
//! reordering cuts TLB misses by ~two orders of magnitude and the full
//! stack cuts L2 misses ~3.5x.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::config::apply_orderings;
use fun3d_memmodel::hierarchy::MemoryHierarchy;
use fun3d_memmodel::trace::{bcsr_spmv_trace, csr_spmv_trace, flux_edge_trace_order};
use fun3d_mesh::generator::MeshFamily;
use fun3d_mesh::reorder::{EdgeOrdering, VertexOrdering};
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::layout::FieldLayout;

/// `figure3` as a harness experiment.
pub struct Figure3;

impl Experiment for Figure3 {
    fn name(&self) -> &'static str {
        "figure3"
    }
    fn description(&self) -> &'static str {
        "simulated TLB/L2 misses under the data-ordering options"
    }
    fn default_scale(&self) -> f64 {
        1.0
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Figure 3 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Small);
    say!(
        args,
        "Figure 3 regenerator: {} vertices (paper: 22,677), R10000-like hierarchy",
        spec.nverts()
    );
    let ncomp = 4usize;

    struct Config {
        name: &'static str,
        edge: EdgeOrdering,
        vert: VertexOrdering,
        layout: FieldLayout,
        blocked: bool,
    }
    // "NOER" rows model the original FUN3D: vector-colored edges and no
    // cache-aware vertex numbering (seeded shuffle).
    let configs = [
        Config {
            name: "NOER + noninterlaced",
            edge: EdgeOrdering::VectorColored,
            vert: VertexOrdering::Random(0xF3D0),
            layout: FieldLayout::Segregated,
            blocked: false,
        },
        Config {
            name: "NOER + interlaced",
            edge: EdgeOrdering::VectorColored,
            vert: VertexOrdering::Random(0xF3D0),
            layout: FieldLayout::Interlaced,
            blocked: false,
        },
        Config {
            name: "reordered + noninterlaced",
            edge: EdgeOrdering::VertexSorted,
            vert: VertexOrdering::ReverseCuthillMcKee,
            layout: FieldLayout::Segregated,
            blocked: false,
        },
        Config {
            name: "reordered + interlaced",
            edge: EdgeOrdering::VertexSorted,
            vert: VertexOrdering::ReverseCuthillMcKee,
            layout: FieldLayout::Interlaced,
            blocked: false,
        },
        Config {
            name: "reordered + interlaced + blocked",
            edge: EdgeOrdering::VertexSorted,
            vert: VertexOrdering::ReverseCuthillMcKee,
            layout: FieldLayout::Interlaced,
            blocked: true,
        },
    ];

    let base_mesh = spec.build();
    let mut rows = Vec::new();
    let mut baseline_tlb = 0u64;
    let mut baseline_l2 = 0u64;
    // Modeled counters land under per-row span paths so the report carries
    // the full Figure 3 matrix, not just the scalar metrics.
    let tel = fun3d_telemetry::Registry::enabled(0);
    let mut perf = fun3d_telemetry::report::PerfReport::new("figure3")
        .with_meta("machine", "origin2000")
        .with_meta("nverts", spec.nverts().to_string());
    args.annotate(&mut perf);
    for (ci, cfg) in configs.iter().enumerate() {
        let mesh = apply_orderings(base_mesh.clone(), cfg.vert, cfg.edge);
        let mut mem = MemoryHierarchy::origin2000();
        // Flux phase trace (the second-order edge loop, as the paper ran).
        let flux = flux_edge_trace_order(
            mesh.edges(),
            mesh.nverts(),
            ncomp,
            cfg.layout,
            true,
            &mut mem,
        );
        // Solve phase trace (SpMV over the Jacobian in the matching layout).
        let jac = crate::representative_jacobian(
            &mesh,
            fun3d_euler::model::FlowModel::incompressible(),
            cfg.layout,
            10.0,
        );
        let solve = if cfg.blocked {
            let jb = BcsrMatrix::from_csr(&jac, ncomp);
            bcsr_spmv_trace(&jb, &mut mem)
        } else {
            csr_spmv_trace(&jac, &mut mem)
        };
        let row_path = format!("figure3/row{ci}");
        flux.ingest_into(&tel, &format!("{row_path}/flux"));
        solve.ingest_into(&tel, &format!("{row_path}/spmv"));
        let tlb = flux.tlb_misses + solve.tlb_misses;
        let l2 = flux.l2_misses + solve.l2_misses;
        let l1 = flux.l1_misses + solve.l1_misses;
        if rows.is_empty() {
            baseline_tlb = tlb;
            baseline_l2 = l2;
        }
        perf.push_metric(format!("tlb_misses_row{ci}"), tlb as f64);
        perf.push_metric(format!("l2_misses_row{ci}"), l2 as f64);
        perf.push_metric(format!("l1_misses_row{ci}"), l1 as f64);
        rows.push(vec![
            cfg.name.to_string(),
            format!("{tlb}"),
            format!("{:.1}x", baseline_tlb as f64 / tlb as f64),
            format!("{l2}"),
            format!("{:.1}x", baseline_l2 as f64 / l2 as f64),
            format!("{l1}"),
        ]);
    }
    args.table(
        "Figure 3: simulated TLB and secondary-cache misses (flux + SpMV pass)",
        &[
            "configuration",
            "TLB misses",
            "vs base",
            "L2 misses",
            "vs base",
            "L1 misses",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper: edge reordering cuts TLB misses by ~two orders of magnitude;"
    );
    say!(
        args,
        "interlacing+blocking+reordering cuts secondary-cache misses ~3.5x."
    );
    let snapshot = tel.snapshot();
    let perf = perf.with_snapshot(&snapshot);
    RunOutcome {
        report: perf,
        telemetry: vec![snapshot],
        events: Default::default(),
        metrics: Default::default(),
    }
}
