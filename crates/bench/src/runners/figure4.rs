//! Regenerates **Figure 4**: parallel speedup under the two partitioning
//! strategies — k-MeTiS-like (contiguity-seeking, slightly imbalanced) vs
//! p-MeTiS-like (exactly balanced but fragmenting) — on a T3E machine model.
//!
//! Paper baseline: 2.8M-vertex case on a 600 MHz Cray T3E, speedup relative
//! to 128 processors.  The k-partitioner wins at scale *despite* worse load
//! balance, because p-partitions contain disconnected subdomain pieces that
//! effectively increase the block count of the Schwarz preconditioner and
//! degrade its convergence.
//!
//! Here both partition quality (fragments, cut, imbalance) and the
//! block-preconditioned iteration counts are *measured* on a scaled mesh;
//! execution times combine measured iterations with the T3E machine model.

use crate::{representative_jacobian, say, BenchArgs, Experiment, RunOutcome};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::{partition_fragmented, partition_kway, Partition};
use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::AdditiveSchwarz;
use fun3d_sparse::ilu::IluOptions;
use fun3d_sparse::layout::FieldLayout;

/// `figure4` as a harness experiment.
pub struct Figure4;

impl Experiment for Figure4 {
    fn name(&self) -> &'static str {
        "figure4"
    }
    fn description(&self) -> &'static str {
        "k-way vs fragmented partitioning: measured its + T3E model times"
    }
    fn default_scale(&self) -> f64 {
        0.01
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Figure 4 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Large);
    let mesh = spec.build();
    let ncomp = 4usize;
    say!(
        args,
        "Figure 4 regenerator: {} vertices (paper: 2.8M; scale {:.3}), T3E model",
        mesh.nverts(),
        args.scale
    );

    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::cray_t3e();
    // Scale processor counts with the mesh so subdomain sizes stay sane.
    let procs: Vec<usize> = [128usize, 256, 512, 1024]
        .iter()
        .map(|&p| ((p as f64 * (args.scale * 4.0).min(1.0)) as usize).max(4))
        .collect();
    say!(args, "Processor counts (scaled from 128..1024): {procs:?}");

    let opts = GmresOptions {
        restart: 20,
        rtol: 1e-6,
        max_iters: 6000,
        ..Default::default()
    };

    let run = |part: &Partition| -> (usize, f64, usize, f64) {
        let p = part.nparts;
        let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (v, &pp) in part.part.iter().enumerate() {
            for c in 0..ncomp {
                owned_sets[pp as usize].push(v * ncomp + c);
            }
        }
        let pc =
            AdditiveSchwarz::block_jacobi(&jac, &owned_sets, &IluOptions::with_fill(0)).unwrap();
        let mut x = vec![0.0; n];
        let t0 = std::time::Instant::now();
        let res = gmres(&CsrOperator::new(&jac), &pc, &rhs, &mut x, &opts);
        let work_time = t0.elapsed().as_secs_f64();
        assert!(res.converged);
        let q = part.quality(&graph);
        // Simulated time: sequential work / p, inflated by the measured
        // imbalance (idle processors wait at every synchronization), plus
        // per-iteration communication.
        let comm_per_it = 6.0 * machine.message_time(q.interface_vertices as f64 / p as f64 * 32.0)
            + machine.allreduce_time(p) * 12.0;
        let t = work_time / p as f64 * q.imbalance + res.iterations as f64 * comm_per_it;
        (res.iterations, t, q.total_fragments, q.imbalance)
    };

    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    let mut perf = fun3d_telemetry::report::PerfReport::new("figure4")
        .with_meta("machine", "cray_t3e")
        .with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    for &p in &procs {
        let (its_k, t_k, frag_k, imb_k) = run(&partition_kway(&graph, p, 3));
        let (its_p, t_p, frag_p, imb_p) = run(&partition_fragmented(&graph, p, 2, 3));
        // Common reference (the k-way base time), as in the paper's figure
        // where both curves are normalized at 128 processors.
        let (b_k, _b_p) = *base.get_or_insert((t_k, t_p));
        perf.push_metric(format!("its_kway_p{p}"), its_k as f64);
        perf.push_metric(format!("its_pway_p{p}"), its_p as f64);
        perf.push_metric(format!("time_kway_p{p}"), t_k);
        perf.push_metric(format!("time_pway_p{p}"), t_p);
        perf.push_metric(format!("fragments_pway_p{p}"), frag_p as f64);
        perf.push_metric(format!("imbalance_kway_p{p}"), imb_k);
        rows.push(vec![
            p.to_string(),
            format!("{:.2}", b_k / t_k),
            format!("{:.2}", b_k / t_p),
            its_k.to_string(),
            its_p.to_string(),
            format!("{frag_k}/{p}"),
            format!("{frag_p}/{p}"),
            format!("{imb_k:.3}"),
            format!("{imb_p:.3}"),
        ]);
    }
    args.table(
        "Figure 4: k-way (contiguous) vs p-way (exact balance) partitioning — speedup rel. first row",
        &[
            "Procs",
            "Speedup k",
            "Speedup p",
            "Its k",
            "Its p",
            "Frags k",
            "Frags p",
            "Imbal k",
            "Imbal p",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper shape to check: the k-partitioner scales better at large subdomain"
    );
    say!(
        args,
        "counts even though the p-partitioner balances perfectly — fragmentation"
    );
    say!(args, "means more effective blocks and slower convergence.");
    perf.into()
}
