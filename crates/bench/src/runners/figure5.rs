//! Regenerates **Figure 5**: residual norm versus pseudo-timestep for a
//! range of initial CFL numbers, showing the effect of the SER continuation
//! parameter on convergence.
//!
//! Paper baseline: the 2.8M-vertex case; small initial CFL adds nonlinear
//! stability far from the solution but drags out the "induction" period;
//! aggressive CFL converges fastest on smooth flows.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::config::{CaseConfig, LayoutConfig};
use fun3d_core::problem::EulerProblem;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_mesh::generator::MeshFamily;
use fun3d_solver::gmres::GmresOptions;
use fun3d_solver::pseudo::{
    solve_pseudo_transient_with_events, Forcing, PrecondSpec, PseudoTransientOptions,
};
use fun3d_sparse::ilu::IluOptions;
use fun3d_telemetry::events::{EventRecord, EventSink, EventStream};
use fun3d_telemetry::Registry;

/// `figure5` as a harness experiment.
pub struct Figure5;

impl Experiment for Figure5 {
    fn name(&self) -> &'static str {
        "figure5"
    }
    fn description(&self) -> &'static str {
        "residual vs pseudo-timestep across initial CFL choices (SER)"
    }
    fn default_scale(&self) -> f64 {
        0.005
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn supports_blackbox(&self) -> bool {
        true
    }
}

/// Regenerate Figure 5 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    // Figure 5 uses the 2.8M mesh; the convergence *behaviour* is visible at
    // a small fraction of that.
    let spec = args.family_spec(MeshFamily::Large);
    let mesh_spec = spec;
    say!(
        args,
        "Figure 5 regenerator: {} vertices (paper: 2.8M; scale {:.3})",
        mesh_spec.nverts(),
        args.scale
    );

    let cfl0s = [0.5f64, 1.0, 5.0, 10.0, 50.0];
    let max_steps = 60usize;
    // One sink for all five curves: each gets its own RunMeta, so the stream
    // renders as five convergence-table series (the literal Figure 5).
    let sink = EventSink::enabled();
    let mut histories = Vec::new();
    for &cfl0 in &cfl0s {
        let cfg = CaseConfig {
            mesh: mesh_spec,
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: PseudoTransientOptions::default(),
        };
        let mesh = cfg.build_mesh();
        let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
        let mut problem = EulerProblem::new(disc);
        let mut q = problem.initial_state();
        let opts = PseudoTransientOptions {
            cfl0,
            cfl_exponent: 1.0,
            cfl_max: 1e6,
            max_steps,
            target_reduction: 1e-10,
            krylov: GmresOptions {
                restart: 20,
                rtol: 1e-2,
                max_iters: 120,
                par: args.par(),
                ..Default::default()
            },
            precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
            second_order_switch: None,
            // Matrix-free J-v products: the exact first-order Newton operator
            // (the assembled matrix freezes the Rusanov dissipation
            // coefficient, which stalls mid-continuation on some meshes).
            matrix_free: true,
            line_search: true,
            bcsr_block: None,
            forcing: Forcing::Constant,
            pc_refresh: 1,
        };
        sink.emit(EventRecord::RunMeta {
            name: format!("CFL0={cfl0}"),
            meta: vec![
                ("nverts".into(), mesh.nverts().to_string()),
                ("nthreads".into(), args.par().nthreads().to_string()),
            ],
        });
        let h = solve_pseudo_transient_with_events(
            &mut problem,
            &mut q,
            &opts,
            &Registry::disabled(),
            &sink,
        );
        say!(
            args,
            "  CFL0 = {cfl0:6.1}: {} steps to reduction {:.1e} (converged: {})",
            h.nsteps(),
            h.reduction(),
            h.converged
        );
        histories.push(h);
    }

    // Residual-vs-iteration series, sampled every few steps.
    let mut rows = Vec::new();
    let max_len = histories.iter().map(|h| h.nsteps()).max().unwrap_or(0);
    for step in (0..max_len).step_by(4) {
        let mut row = vec![step.to_string()];
        for h in &histories {
            row.push(match h.steps.get(step) {
                Some(s) => format!("{:.2e}", s.residual_norm / h.initial_residual),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("step".to_string())
        .chain(cfl0s.iter().map(|c| format!("CFL0={c}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    args.table(
        "Figure 5: relative residual norm vs pseudo-timestep",
        &headers_ref,
        &rows,
    );
    say!(
        args,
        "\nPaper shape to check: every curve eventually turns superlinear; small initial"
    );
    say!(
        args,
        "CFL suffers a long induction phase; the most aggressive CFL converges first."
    );

    let mut perf = fun3d_telemetry::report::PerfReport::new("figure5")
        .with_meta("nverts", mesh_spec.nverts().to_string());
    args.annotate(&mut perf);
    for (cfl0, h) in cfl0s.iter().zip(&histories) {
        perf.push_metric(format!("steps_cfl{cfl0}"), h.nsteps() as f64);
        perf.push_metric(format!("reduction_cfl{cfl0}"), h.reduction());
    }
    RunOutcome {
        report: perf,
        telemetry: Vec::new(),
        events: EventStream::new(sink.drain()),
        metrics: Default::default(),
    }
}
