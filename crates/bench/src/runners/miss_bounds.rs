//! Validates the paper's analytic conflict-miss bounds — Equations (1) and
//! (2) — against the trace-driven cache simulator.
//!
//! The bounds say: SpMV on an `N`-row matrix whose gathered source-vector
//! working set is `beta` double words suffers at most
//! `N * ceil((beta - C) / W)` conflict misses beyond the compulsory ones
//! (`C` = cache capacity, `W` = line size, in double words), with `beta ~ N`
//! for the non-interlaced layout and `beta ~ bandwidth` for the interlaced
//! one.  The regenerator sweeps the bandwidth and compares measured excess
//! misses on the gathered vector with the bound.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_memmodel::bounds::{conflict_miss_bound_banded, tlb_miss_bound_banded};
use fun3d_memmodel::cache::{CacheConfig, SetAssocCache};
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::triplet::TripletMatrix;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// `miss_bounds` as a harness experiment.
pub struct MissBounds;

impl Experiment for MissBounds {
    fn name(&self) -> &'static str {
        "miss_bounds"
    }
    fn description(&self) -> &'static str {
        "analytic conflict-miss bounds vs the trace-driven cache simulator"
    }
    fn default_scale(&self) -> f64 {
        1.0
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Banded random matrix: `nnz_per_row` entries spread across a band of
/// half-width `beta/2`.
fn banded_matrix(n: usize, beta: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 4.0);
        for _ in 0..nnz_per_row - 1 {
            let lo = i.saturating_sub(beta / 2);
            let hi = (i + beta / 2).min(n - 1);
            let j = rng.gen_range(lo..=hi);
            t.push(i, j, -0.1);
        }
    }
    t.to_csr()
}

/// Run the miss-bound validation once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let n = (30_000.0 * args.scale) as usize;
    // The paper's bound reasons about an idealized LRU cache (conflicts are
    // *capacity*-driven by the working set), so the validation cache is
    // fully associative; a TLB is fully associative anyway.
    let l1 = CacheConfig::fully_associative(32 * 1024, 32);
    let tlb_entries = 16;
    let page = 4096;
    say!(
        args,
        "Miss-bound validation: N = {n}, L1 = 32 KB (C = {} dwords, W = {} dwords), TLB = {} x 4 KB",
        l1.capacity_dwords(),
        l1.line_dwords(),
        tlb_entries
    );

    let mut rows = Vec::new();
    let mut perf = fun3d_telemetry::report::PerfReport::new("miss_bounds");
    args.annotate(&mut perf);
    // beta values chosen away from the exact capacity boundary (C = 4096
    // dwords), where the bound's step function is trivially fuzzy.
    for beta in [1_000usize, 2_500, 8_000, 16_000, 30_000] {
        let a = banded_matrix(n, beta.min(n), 8, 42);
        // The bounds concern the *gathered source vector* alone (the other
        // arrays are streamed and cost exactly their compulsory misses), so
        // replay only the x-gather address stream: x[col] for every stored
        // entry, in row order.
        let mut cache = SetAssocCache::new(l1);
        let mut tlb = SetAssocCache::new(CacheConfig::tlb(tlb_entries, page));
        for i in 0..n {
            for &c in a.row_cols(i) {
                let addr = 8 * c as u64;
                cache.access(addr);
                tlb.access(addr);
            }
        }
        // Compulsory: the band slides over the whole vector, so every x
        // line / page is touched at least once.
        let compulsory_l1 = (n * 8) as u64 / l1.line_bytes as u64 + 1;
        let excess = cache.misses().saturating_sub(compulsory_l1);
        let bound = conflict_miss_bound_banded(n, beta, l1.capacity_dwords(), l1.line_dwords());
        let tlb_compulsory = (n * 8) as u64 / page as u64 + 1;
        let tlb_excess = tlb.misses().saturating_sub(tlb_compulsory);
        let tlb_bound = tlb_miss_bound_banded(n, beta, tlb_entries, page / 8);
        perf.push_metric(format!("l1_excess_beta{beta}"), excess as f64);
        perf.push_metric(format!("l1_bound_beta{beta}"), bound as f64);
        perf.push_metric(format!("tlb_excess_beta{beta}"), tlb_excess as f64);
        perf.push_metric(format!("tlb_bound_beta{beta}"), tlb_bound as f64);
        rows.push(vec![
            beta.to_string(),
            excess.to_string(),
            bound.to_string(),
            if bound == 0 {
                if excess < n as u64 / 10 {
                    "ok (≈0)"
                } else {
                    "VIOLATED"
                }
            } else if excess <= bound {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
            tlb_excess.to_string(),
            tlb_bound.to_string(),
            if tlb_bound == 0 {
                if tlb_excess < n as u64 / 10 {
                    "ok (≈0)"
                } else {
                    "VIOLATED"
                }
            } else if tlb_excess <= tlb_bound {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    args.table(
        "Eqs. (1)-(2): measured excess misses vs analytic bound (SpMV, sweep over bandwidth beta)",
        &[
            "beta",
            "L1 excess",
            "Eq.2 bound",
            "check",
            "TLB excess",
            "TLB bound",
            "check",
        ],
        &rows,
    );
    say!(
        args,
        "\nThe bound is loose by design (it counts every out-of-cache row reference as a"
    );
    say!(
        args,
        "miss); what matters is that measured conflict misses stay below it and hit ~0"
    );
    say!(
        args,
        "once beta fits in the cache / TLB reach — the regime interlacing + RCM buys."
    );
    perf.into()
}
