//! Library entry points for every regenerator.
//!
//! Each submodule holds the core loop that used to live in the matching
//! `src/bin/*.rs` binary, as `pub fn run(&BenchArgs) -> RunOutcome`, plus a
//! unit struct implementing [`Experiment`].  [`all`] is the registry the
//! harness builds its suites from.

pub mod ablations;
pub mod blockspec;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod miss_bounds;
pub mod parallel_nks;
pub mod ranks;
pub mod serve;
pub mod speedup;
pub mod spmv;
pub mod stream;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::Experiment;

/// Every registered experiment, in stable (alphabetical) order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(ablations::Ablations),
        Box::new(blockspec::Blockspec),
        Box::new(figure1::Figure1),
        Box::new(figure2::Figure2),
        Box::new(figure3::Figure3),
        Box::new(figure4::Figure4),
        Box::new(figure5::Figure5),
        Box::new(miss_bounds::MissBounds),
        Box::new(parallel_nks::ParallelNks),
        Box::new(ranks::Ranks),
        Box::new(serve::Serve),
        Box::new(speedup::Speedup),
        Box::new(spmv::Spmv),
        Box::new(stream::Stream),
        Box::new(table1::Table1),
        Box::new(table2::Table2),
        Box::new(table3::Table3),
        Box::new(table4::Table4),
        Box::new(table5::Table5),
    ]
}

/// Look up an experiment by its stable name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.name() == name)
}

/// The rows `fun3d-bench list` prints: one `[name, default scale, blackbox
/// support, description]` entry per registered experiment, in registry
/// order.  The driver renders exactly this, so the listing can never drift
/// from [`all`].
pub fn list_rows() -> Vec<Vec<String>> {
    all()
        .iter()
        .map(|e| {
            vec![
                e.name().to_string(),
                format!("{}", e.default_scale()),
                if e.supports_blackbox() { "yes" } else { "" }.to_string(),
                e.description().to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_sorted() {
        let names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "registry must be sorted and duplicate-free");
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn list_stays_in_sync_with_registry() {
        // One listing row per registered experiment, same order, name in
        // column 0, a nonempty description — the `fun3d-bench list` contract.
        let rows = list_rows();
        let names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        assert_eq!(rows.len(), names.len());
        for (row, name) in rows.iter().zip(&names) {
            assert_eq!(row[0], *name);
            assert!(
                row[1].parse::<f64>().is_ok_and(|s| s > 0.0),
                "{name}: bad scale {}",
                row[1]
            );
            assert!(
                row[2] == "yes" || row[2].is_empty(),
                "{name}: bad blackbox marker {:?}",
                row[2]
            );
            assert!(!row[3].trim().is_empty(), "{name}: empty description");
        }
    }

    #[test]
    fn blackbox_support_marks_the_solver_driving_experiments() {
        // The runners that execute full ΨNKS solves accept `--blackbox`;
        // kernel microbenchmarks have nothing for the rings to capture.
        let yes: Vec<&str> = all()
            .iter()
            .filter(|e| e.supports_blackbox())
            .map(|e| e.name())
            .collect();
        assert_eq!(yes, vec!["ablations", "figure5", "serve", "table1"]);
    }

    #[test]
    fn find_resolves_registered_names() {
        assert!(find("table1").is_some());
        assert!(find("spmv").is_some());
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn default_scales_are_in_range() {
        for e in all() {
            let s = e.default_scale();
            assert!(s > 0.0 && s <= 4.0, "{}: scale {s}", e.name());
        }
    }
}
