//! Measured parallel ΨNKS scaling: the real distributed solver (threads +
//! messages) at laptop-feasible rank counts, reporting the same efficiency
//! decomposition and phase breakdown as Table 3 — fully *measured*, as a
//! complement to the `table3` regenerator's model extrapolation.
//!
//! Every number in the two tables below is derived from the per-rank
//! telemetry registries (`fun3d-telemetry`): linear iterations come from the
//! `nks` span's `linear_iters` counter, phase percentages from the simulated
//! `sim/*` spans of the busiest rank, and the efficiency decomposition from
//! per-rank-count `fun3d-perf/1` reports.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_comm::{critical_path, MessageLedger};
use fun3d_core::efficiency::efficiency_from_reports;
use fun3d_core::parallel_nks::{solve_parallel_nks, ParallelNksOptions};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::{merge, Snapshot};

/// `parallel_nks` as a harness experiment.
pub struct ParallelNks;

impl Experiment for ParallelNks {
    fn name(&self) -> &'static str {
        "parallel_nks"
    }
    fn description(&self) -> &'static str {
        "measured distributed NKS scaling with efficiency decomposition"
    }
    fn default_scale(&self) -> f64 {
        0.03
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Reduction / implicit-sync / scatter overhead percentages of the busiest
/// rank, read back from its simulated-time span tree.
pub(crate) fn phase_percentages(snaps: &[Snapshot]) -> (f64, f64, f64) {
    let busiest = snaps
        .iter()
        .max_by(|a, b| {
            let t = |s: &Snapshot| {
                s.spans
                    .iter()
                    .filter(|r| r.path.starts_with("sim/"))
                    .map(|r| r.total_s)
                    .sum::<f64>()
            };
            t(a).partial_cmp(&t(b)).unwrap()
        })
        .expect("at least one rank snapshot");
    let total: f64 = busiest
        .spans
        .iter()
        .filter(|r| r.path.starts_with("sim/"))
        .map(|r| r.total_s)
        .sum();
    let pct = |path: &str| {
        100.0 * busiest.span(path).map_or(0.0, |r| r.total_s) / total.max(f64::MIN_POSITIVE)
    };
    (
        pct("sim/reduction"),
        pct("sim/implicit_sync"),
        pct("sim/scatter"),
    )
}

/// Push the critical-path and wait-fraction gate metrics derived from
/// traced message ledgers onto `report` (a no-op when the run was untraced
/// and every ledger is empty).
pub(crate) fn push_ledger_metrics(report: &mut PerfReport, ledgers: &[MessageLedger]) {
    if ledgers.iter().all(|l| l.ops().is_empty()) {
        return;
    }
    let cp = critical_path(ledgers);
    report.push_metric("cp:total_s", cp.total_s);
    report.push_metric("cp:compute_s", cp.compute_s);
    report.push_metric("cp:exchange_s", cp.exchange_s);
    report.push_metric("cp:wait_s", cp.wait_s);
    report.push_metric("cp:hops", cp.hops as f64);
    let wait_recv: f64 = ledgers.iter().map(|l| l.wait_at_recv_s()).sum();
    let transfer: f64 = ledgers.iter().map(|l| l.transfer_s()).sum();
    let wait_coll: f64 = ledgers.iter().map(|l| l.wait_at_collective_s()).sum();
    let reduce: f64 = ledgers.iter().map(|l| l.reduce_s()).sum();
    report.push_metric(
        "rank:scatter:wait_frac",
        wait_recv / (wait_recv + transfer).max(f64::MIN_POSITIVE),
    );
    report.push_metric(
        "rank:reduction:wait_frac",
        wait_coll / (wait_coll + reduce).max(f64::MIN_POSITIVE),
    );
}

/// Run the measured parallel-NKS scaling study once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Medium);
    let mesh = spec.build();
    say!(
        args,
        "Parallel NKS (real message-passing ranks): {} vertices, ASCI Red simulated clock",
        mesh.nverts()
    );
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::asci_red();
    // Fixed work: exactly 20 pseudo-timesteps per rank count (the paper's
    // per-time-step framing). Chasing a fixed *reduction* instead couples
    // the comparison to case-specific continuation plateaus (see figure5).
    let opts = ParallelNksOptions {
        max_steps: 20,
        target_reduction: 0.0,
        trace_ranks: args.trace_ranks,
        ..Default::default()
    };
    // Powers of two up to `--ranks` (default: the historical 8-rank sweep).
    let max_ranks = if args.ranks > 0 { args.ranks } else { 8 };
    let mut rank_counts = vec![1usize];
    while rank_counts.last().unwrap() * 2 <= max_ranks {
        rank_counts.push(rank_counts.last().unwrap() * 2);
    }

    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut last_telemetry: Vec<Snapshot> = Vec::new();
    let mut last_events = fun3d_telemetry::events::EventStream::default();
    let mut last_ledgers = Vec::new();
    let mut last_bytes = 0.0f64;
    let mut last_lin = 1.0f64;
    let mut last_busy = 0.0f64;
    let mut last_sim = 1.0f64;
    let mut last_p = 1usize;
    for &p in &rank_counts {
        let part = partition_kway(&graph, p, 3);
        let report = solve_parallel_nks(
            &mesh,
            FlowModel::incompressible(),
            &part.part,
            p,
            &machine,
            &opts,
        );
        say!(
            args,
            "  p={p}: residual reduction {:.1e} after 20 steps",
            report.final_residual / report.residual_history[0]
        );
        let steps = report.residual_history.len() - 1;
        let merged = merge(&report.telemetry);
        // GMRES iterations are global: every rank counts the same ones, so
        // the merged per-rank sum overstates the count by a factor of p.
        let lin = merged.counter_total("linear_iters") / p as f64;
        let (red, sync, scat) = phase_percentages(&report.telemetry);
        rows.push(vec![
            p.to_string(),
            steps.to_string(),
            format!("{lin:.0}"),
            format!("{:.3}s", report.sim_time),
            format!("{red:.1}"),
            format!("{sync:.1}"),
            format!("{scat:.1}"),
        ]);
        let mut perf = PerfReport::new("parallel_nks")
            .with_meta("nranks", p.to_string())
            .with_meta("partition", opts.partition_family)
            .with_snapshot(&merged);
        args.annotate(&mut perf);
        perf.push_metric("nprocs", p as f64);
        perf.push_metric("linear_its", lin.max(1.0));
        perf.push_metric("time_s", report.sim_time);
        reports.push(perf);
        last_bytes = merged.counter_total("scatter_bytes");
        last_lin = lin.max(1.0);
        last_busy = report.breakdowns.iter().map(|b| b.compute).sum();
        last_sim = report.sim_time;
        last_p = p;
        last_telemetry = report.telemetry;
        last_events = report.events;
        last_ledgers = report.ledgers;
    }
    args.table(
        "Measured parallel NKS (simulated ASCI Red time; percentages from the busiest rank's telemetry)",
        &[
            "Ranks",
            "Steps",
            "Linear its",
            "Sim time",
            "Reductions %",
            "Impl. sync %",
            "Scatters %",
        ],
        &rows,
    );

    let eff = efficiency_from_reports(&reports);
    let rows: Vec<Vec<String>> = eff
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.eta_overall),
                format!("{:.2}", r.eta_alg),
                format!("{:.2}", r.eta_impl),
            ]
        })
        .collect();
    args.table(
        "Efficiency decomposition (eta_overall = eta_alg x eta_impl, from telemetry reports)",
        &["Ranks", "Speedup", "eta_overall", "eta_alg", "eta_impl"],
        &rows,
    );
    say!(
        args,
        "\nSame conclusion as Table 3, here fully measured: the algorithmic term (more"
    );
    say!(
        args,
        "Jacobi blocks -> more iterations) dominates the degradation; the implementation"
    );
    say!(args, "term stays close to 1 at these scales.");

    // Summary: the largest-rank-count run's report, annotated with the full
    // efficiency decomposition; the telemetry is its per-rank snapshots.
    let mut summary = reports.pop().expect("non-empty rank series");
    for r in &eff {
        summary.push_metric(format!("eta_overall_p{}", r.nprocs), r.eta_overall);
        summary.push_metric(format!("eta_alg_p{}", r.nprocs), r.eta_alg);
        summary.push_metric(format!("eta_impl_p{}", r.nprocs), r.eta_impl);
    }
    // Headline gates use the trace convention (see the `ranks` runner):
    // η_impl = compute fraction of total rank-seconds in the largest run,
    // structurally in (0, 1]; η_alg absorbs the remainder.  The
    // iteration-count convention stays in the `eta_*_p{n}` series.
    let eta_impl = (last_busy / (last_p as f64 * last_sim)).min(1.0);
    if let Some(last) = eff.last() {
        summary.push_metric("eta_overall", last.eta_overall);
        summary.push_metric(
            "eta_alg",
            last.eta_overall / eta_impl.max(f64::MIN_POSITIVE),
        );
        summary.push_metric("eta_impl", eta_impl);
    }
    summary.push_metric("comm:bytes_per_iter", last_bytes / last_lin);
    push_ledger_metrics(&mut summary, &last_ledgers);
    RunOutcome {
        report: summary,
        telemetry: last_telemetry,
        events: last_events,
        metrics: Default::default(),
    }
}
