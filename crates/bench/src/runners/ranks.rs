//! `ranks`: simulated rank-count sweep with per-rank distributed tracing.
//!
//! Runs the distributed ΨNKS solver at powers of two up to `--ranks`
//! (default 16) and prints the Table 3-style phase breakdown per rank
//! count, the η = η_alg · η_impl efficiency decomposition, and — with
//! `--trace-ranks` — a per-iteration η table built from the per-rank
//! simulated-clock step marks plus the critical-path attribution of the
//! largest run's end-to-end time to compute / exchange / wait.
//!
//! The summary report is the largest-rank-count run's, carrying the gate
//! metrics `eta_impl`, `comm:bytes_per_iter`, `cp:*`, and
//! `rank:<phase>:wait_frac`; its telemetry renders one chrome-trace lane
//! per rank with message-flow arrows between lanes.

use crate::runners::parallel_nks::{phase_percentages, push_ledger_metrics};
use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::efficiency::efficiency_from_reports;
use fun3d_core::parallel_nks::{solve_parallel_nks, ParallelNksOptions, ParallelNksReport};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_telemetry::merge;
use fun3d_telemetry::report::PerfReport;

/// `ranks` as a harness experiment.
pub struct Ranks;

impl Experiment for Ranks {
    fn name(&self) -> &'static str {
        "ranks"
    }
    fn description(&self) -> &'static str {
        "rank-count sweep with per-rank tracing, message ledgers, and critical-path eta decomposition"
    }
    fn default_scale(&self) -> f64 {
        0.02
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Per-step simulated durations on the synchronizing clock (every rank's
/// marks agree at step boundaries — each step ends in an allreduce — so
/// rank 0's marks stand for the run).
fn step_durations(report: &ParallelNksReport) -> Vec<f64> {
    report.step_marks[0]
        .windows(2)
        .map(|w| w[1] - w[0])
        .collect()
}

/// Run the rank sweep once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let wall0 = std::time::Instant::now();
    let spec = args.family_spec(MeshFamily::Medium);
    let mesh = spec.build();
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::asci_red();
    let max_ranks = if args.ranks > 0 { args.ranks } else { 16 };
    let mut rank_counts = vec![1usize];
    while rank_counts.last().unwrap() * 2 <= max_ranks {
        rank_counts.push(rank_counts.last().unwrap() * 2);
    }
    say!(
        args,
        "Rank sweep: {} vertices, up to {} simulated ranks on the ASCI Red clock{}",
        mesh.nverts(),
        rank_counts.last().unwrap(),
        if args.trace_ranks { " (traced)" } else { "" }
    );
    // Fixed work per rank count (the paper's per-time-step framing), so the
    // sweep isolates scaling from continuation plateaus.
    let opts = ParallelNksOptions {
        max_steps: 12,
        target_reduction: 0.0,
        trace_ranks: args.trace_ranks,
        ..Default::default()
    };

    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut base_run: Option<ParallelNksReport> = None;
    let mut last_run: Option<ParallelNksReport> = None;
    let mut last_bytes = 0.0f64;
    let mut last_lin = 1.0f64;
    for &p in &rank_counts {
        let part = partition_kway(&graph, p, 3);
        let report = solve_parallel_nks(
            &mesh,
            FlowModel::incompressible(),
            &part.part,
            p,
            &machine,
            &opts,
        );
        let steps = report.residual_history.len() - 1;
        let merged = merge(&report.telemetry);
        // Linear iterations are global; every rank counts the same ones.
        let lin = merged.counter_total("linear_iters") / p as f64;
        let (red, sync, scat) = phase_percentages(&report.telemetry);
        rows.push(vec![
            p.to_string(),
            steps.to_string(),
            format!("{lin:.0}"),
            format!("{:.3}s", report.sim_time),
            format!("{red:.1}"),
            format!("{sync:.1}"),
            format!("{scat:.1}"),
        ]);
        let mut perf = PerfReport::new("ranks")
            .with_meta("nranks", p.to_string())
            .with_meta("partition", opts.partition_family)
            .with_snapshot(&merged);
        args.annotate(&mut perf);
        perf.push_metric("nprocs", p as f64);
        perf.push_metric("linear_its", lin.max(1.0));
        perf.push_metric("time_s", report.sim_time);
        reports.push(perf);
        last_bytes = merged.counter_total("scatter_bytes");
        last_lin = lin.max(1.0);
        if p == 1 {
            base_run = Some(report.clone());
        }
        last_run = Some(report);
    }
    args.table(
        "Rank sweep (simulated ASCI Red time; percentages from the busiest rank's telemetry)",
        &[
            "Ranks",
            "Steps",
            "Linear its",
            "Sim time",
            "Reductions %",
            "Impl. sync %",
            "Scatters %",
        ],
        &rows,
    );

    let eff = efficiency_from_reports(&reports);
    let eff_rows: Vec<Vec<String>> = eff
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.eta_overall),
                format!("{:.2}", r.eta_alg),
                format!("{:.2}", r.eta_impl),
            ]
        })
        .collect();
    args.table(
        "Efficiency decomposition (eta_overall = eta_alg x eta_impl)",
        &["Ranks", "Speedup", "eta_overall", "eta_alg", "eta_impl"],
        &eff_rows,
    );

    let base = base_run.expect("rank sweep starts at p=1");
    let last = last_run.expect("non-empty rank sweep");
    let p_max = *rank_counts.last().unwrap();

    // Per-iteration η at the largest rank count against the sequential run:
    // step durations come from the per-rank clock marks, iteration counts
    // from the (rank-invariant) linear histories.
    if p_max > 1 {
        let dt_base = step_durations(&base);
        let dt_p = step_durations(&last);
        let iter_rows: Vec<Vec<String>> = dt_base
            .iter()
            .zip(&dt_p)
            .zip(base.linear_iters.iter().zip(&last.linear_iters))
            .enumerate()
            .map(|(i, ((tb, tp), (ib, ip)))| {
                let eta_alg = *ib as f64 / (*ip).max(1) as f64;
                let eta_overall = tb / (tp * p_max as f64).max(f64::MIN_POSITIVE);
                vec![
                    i.to_string(),
                    ib.to_string(),
                    ip.to_string(),
                    format!("{:.2}", eta_alg),
                    format!("{:.2}", eta_overall),
                    format!("{:.2}", eta_overall / eta_alg.max(f64::MIN_POSITIVE)),
                ]
            })
            .collect();
        args.table(
            &format!("Per-iteration eta at p={p_max} vs p=1 (from per-rank step marks)"),
            &[
                "Step",
                "its(1)",
                &format!("its({p_max})"),
                "eta_alg",
                "eta_overall",
                "eta_impl",
            ],
            &iter_rows,
        );
    }

    // Critical-path attribution of the largest run (traced only).
    if args.trace_ranks {
        let cp = fun3d_comm::critical_path(&last.ledgers);
        say!(
            args,
            "\nCritical path at p={p_max}: {:.3}s total = {:.3}s compute + {:.3}s exchange + {:.3}s wait ({} hops, ends on rank {})",
            cp.total_s,
            cp.compute_s,
            cp.exchange_s,
            cp.wait_s,
            cp.hops,
            cp.end_rank
        );
    }

    let mut summary = reports.pop().expect("non-empty rank series");
    for r in &eff {
        summary.push_metric(format!("eta_overall_p{}", r.nprocs), r.eta_overall);
        summary.push_metric(format!("eta_alg_p{}", r.nprocs), r.eta_alg);
        summary.push_metric(format!("eta_impl_p{}", r.nprocs), r.eta_impl);
    }
    // Headline gates use the trace convention: η_impl is the compute
    // fraction of total rank-seconds in the largest run (structurally in
    // (0, 1]; the loss is communication + synchronization wait), and η_alg
    // absorbs the remainder so η_overall = η_alg · η_impl holds exactly.
    // The iteration-count convention (Table 3; can exceed 1 when smaller
    // ILU blocks cheapen each iteration) stays in the `eta_*_p{n}` series.
    let busy: f64 = last.breakdowns.iter().map(|b| b.compute).sum();
    let eta_impl = (busy / (p_max as f64 * last.sim_time)).min(1.0);
    if let Some(last_eff) = eff.last() {
        summary.push_metric("eta_overall", last_eff.eta_overall);
        summary.push_metric(
            "eta_alg",
            last_eff.eta_overall / eta_impl.max(f64::MIN_POSITIVE),
        );
        summary.push_metric("eta_impl", eta_impl);
    }
    summary.push_metric("comm:bytes_per_iter", last_bytes / last_lin);
    push_ledger_metrics(&mut summary, &last.ledgers);
    summary.push_metric("wall_s", wall0.elapsed().as_secs_f64());
    RunOutcome {
        report: summary,
        telemetry: last.telemetry,
        events: last.events,
        metrics: Default::default(),
    }
}
