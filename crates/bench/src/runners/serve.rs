//! `serve`: open-loop load sweep through the `fun3d-serve` engine.
//!
//! The paper benchmarks one solve at a time; this experiment measures the
//! serving layer built over the same stack: a worker pool pulling
//! same-family batches from a bounded, admission-controlled queue, with
//! mesh / ordering / partition / symbolic-ILU state shared from an
//! `Arc`-cache.  It calibrates the warm per-solve service time, then drives
//! the engine open-loop (arrivals on a fixed clock, independent of
//! completions) at a geometric sweep of offered rates from well below to
//! well above the calibrated capacity, and reports per rate: achieved
//! throughput, p50/p95/p99 latency from the telemetry histograms, and
//! rejected arrivals.  The saturation knee — the first offered rate the
//! engine stops tracking — is detected and summarized.
//!
//! Gate metrics: `rate{i}:solves_per_s`, `rate{i}:p50_s/p95_s/p99_s`,
//! `serve:hit_rate`, `serve:peak_solves_per_s`, `serve:knee_solves_per_s`,
//! `serve:rejected_total`, `serve:identity_match_ratio` (cached-path
//! results fingerprint-checked against the direct path),
//! `serve:setup_per_solve_s` (amortized family-state acquisition cost), and
//! `serve:queue_wait_frac` (queue wait as a fraction of end-to-end latency).
//!
//! With `--metrics` the engine runs with live telemetry: a background
//! collector samples queue depth, in-flight count, windowed throughput and
//! latency quantiles, cache hit rate, and SLO burn into a `fun3d-metrics/1`
//! time series (`--metrics-out` dumps it); per-request traces land in the
//! `--events` stream; each worker gets its own chrome-trace lane; and per
//! rate the report carries `rate{i}:burn` and `rate{i}:health_state`
//! (0 ok / 1 degraded / 2 saturated).  Solver results are bitwise identical
//! with metrics on or off.
//!
//! Knobs: `--steps n` sets the number of swept rates (clamped to 2..=6),
//! `--threads` the solver thread team per worker, and `FUN3D_SERVE_WORKERS`
//! the worker count (default 2).

use crate::{fmt_secs, say, time_median, BenchArgs, Experiment, RunOutcome};
use fun3d_mesh::generator::{BumpChannelSpec, MeshFamily};
use fun3d_serve::presets::{tiny_nks, tiny_scenario};
use fun3d_serve::{
    direct_solve, solution_fingerprint, AdmissionPolicy, Engine, EngineConfig, FamilyState,
    SloConfig,
};
use fun3d_telemetry::events::{EventSink, EventStream};
use fun3d_telemetry::hist::LogHistogram;
use fun3d_telemetry::metrics::Collector;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::{Registry, TimeDomain};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `serve` as a harness experiment.
pub struct Serve;

impl Experiment for Serve {
    fn name(&self) -> &'static str {
        "serve"
    }
    fn description(&self) -> &'static str {
        "open-loop serving sweep: throughput, tail latency, cache hit rate, admission control"
    }
    fn default_scale(&self) -> f64 {
        0.005
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn supports_blackbox(&self) -> bool {
        true
    }
}

/// Worker-pool size: `FUN3D_SERVE_WORKERS`, default 2.
fn workers_from_env() -> usize {
    std::env::var("FUN3D_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Throughput below this fraction of the offered rate marks the knee.
const KNEE_TRACKING_FRAC: f64 = 0.85;

/// Run the open-loop serving sweep once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let wall0 = Instant::now();
    let workers = workers_from_env();
    // The scenario family scales like the other experiments but floors low:
    // a serving sweep runs dozens of solves, so each must stay fast.
    let target = (MeshFamily::Small.paper_vertices() as f64 * args.scale) as usize;
    let mut sc = tiny_scenario();
    sc.mesh = BumpChannelSpec::with_target_vertices(target.max(120));
    let nks = tiny_nks();

    // Reference result (uncached path) and warm service-time calibration.
    let (_, q_direct) = direct_solve(&sc, &nks);
    let fp_direct = solution_fingerprint(&q_direct);
    let family = FamilyState::build(&sc, workers);
    let t_svc = time_median(args.reps.max(2), || {
        family.solve(&nks, &Registry::disabled(), &EventSink::disabled());
    });
    let capacity = workers as f64 / t_svc.max(1e-9);
    say!(
        args,
        "Serving sweep: {} vertices, {} workers x {} solver thread(s); warm solve {} -> calibrated capacity {:.1} solves/s",
        family.nverts(),
        workers,
        args.threads.max(1),
        fmt_secs(t_svc),
        capacity
    );

    // One long-running engine across the whole sweep (the serving posture);
    // one warmup request populates the cache so the timed windows measure
    // steady-state serving, not the first cold family build.  The latency
    // objective scales with the calibrated service time: 4x warm-solve
    // covers queue wait and batching at healthy loads, with a 10% error
    // budget, so only genuine saturation burns budget.
    let queue_depth = (2 * workers).max(4);
    let slo = SloConfig {
        latency_target_s: (4.0 * t_svc).max(1e-4),
        budget_frac: 0.1,
    };
    let eng = Arc::new(Engine::start(&EngineConfig {
        workers,
        queue_depth,
        policy: AdmissionPolicy::Reject,
        max_batch: 4,
        cache_capacity: 2,
        solver_threads: args.threads.max(1),
        live: args.metrics.then_some(slo),
    }));
    let warm = eng
        .submit(&sc, &nks)
        .expect("warmup submit on an idle engine")
        .wait()
        .done()
        .expect("warmup solve completes");
    assert_eq!(
        warm.solution_fingerprint, fp_direct,
        "cached-path result diverged from the direct path"
    );

    // Background collector: samples engine state on a cadence tied to the
    // service time (fast enough to see per-rate structure, capped so tiny
    // solves don't spin).  Windowed quantiles come from diffing successive
    // cumulative-histogram snapshots (`LogHistogram::since`), windowed
    // throughput from completion-counter deltas.
    let collector = args.metrics.then(|| {
        let eng = Arc::clone(&eng);
        let mut prev_hist = LogHistogram::new();
        let mut prev_completed = 0u64;
        let mut last = Instant::now();
        Collector::start(
            Duration::from_secs_f64((0.5 * t_svc).clamp(0.002, 0.25)),
            4096,
            Box::new(move || {
                let now = Instant::now();
                let dt = now.duration_since(last).as_secs_f64().max(1e-9);
                last = now;
                let stats = eng.stats();
                let hist = eng.latency_hist();
                let window = hist.since(&prev_hist);
                prev_hist = hist;
                let solves = stats.completed - prev_completed;
                prev_completed = stats.completed;
                let mut out = vec![
                    ("queue_depth".to_string(), stats.queue_depth as f64),
                    ("in_flight".to_string(), stats.in_flight as f64),
                    ("throughput_solves_per_s".to_string(), solves as f64 / dt),
                    ("cache_hit_rate".to_string(), stats.cache.hit_rate()),
                    ("rejected_total".to_string(), stats.queue.rejected as f64),
                    ("shed_total".to_string(), stats.queue.shed as f64),
                ];
                if let Some(p50) = window.quantile(0.5) {
                    out.push(("p50_s".to_string(), p50));
                }
                if let Some(p99) = window.quantile(0.99) {
                    out.push(("p99_s".to_string(), p99));
                }
                if let Some(h) = eng.health() {
                    out.push(("slo_burn".to_string(), h.burn_rate));
                    out.push(("health_state".to_string(), h.state.code() as f64));
                }
                out
            }),
        )
    });

    // Offered rates: geometric from 0.4x to 3.2x the calibrated capacity.
    let nrates = args.steps.clamp(2, 6);
    let mults: Vec<f64> = (0..nrates)
        .map(|i| 0.4 * 8f64.powf(i as f64 / (nrates - 1) as f64))
        .collect();
    let nreq = (6 * workers).max(12);

    let reg = Registry::enabled(0);
    let mut report = PerfReport::new("serve")
        .with_meta("workers", workers.to_string())
        .with_meta("queue_depth", queue_depth.to_string())
        .with_meta("max_batch", "4")
        .with_meta("nverts", family.nverts().to_string())
        .with_meta("warm_solve_s", format!("{t_svc:.6}"))
        .with_meta("requests_per_rate", nreq.to_string());
    if args.metrics {
        report = report
            .with_meta("metrics", "on")
            .with_meta("slo_target_s", format!("{:.6}", slo.latency_target_s))
            .with_meta("slo_budget_frac", format!("{}", slo.budget_frac));
    }
    args.annotate(&mut report);

    let mut rows = Vec::new();
    let mut offered_rates = Vec::new();
    let mut achieved_rates = Vec::new();
    let mut rejected_per_rate = Vec::new();
    let mut matched = 0u64;
    let mut completed_total = 0u64;
    let mut setup_total_s = 0.0f64;
    let mut queue_wait_total_s = 0.0f64;
    let mut latency_total_s = 0.0f64;
    let mut stats_before = eng.stats();
    for (i, mult) in mults.iter().enumerate() {
        let offered = mult * capacity;
        let gap = Duration::from_secs_f64(1.0 / offered.max(1e-9));
        let t0 = Instant::now();
        let mut handles = Vec::new();
        let mut rejected = 0u64;
        for r in 0..nreq {
            // Open loop: arrival r is due at r * gap whether or not earlier
            // requests have finished; a full queue rejects, never blocks.
            if let Some(d) = (t0 + gap * r as u32).checked_duration_since(Instant::now()) {
                std::thread::sleep(d);
            }
            match eng.submit(&sc, &nks) {
                Ok(h) => handles.push(h),
                Err(_) => rejected += 1,
            }
        }
        let mut latencies = Vec::new();
        for h in handles {
            let resp = h.wait().done().expect("reject policy never sheds");
            reg.record_span(
                &format!("serve/rate{i}"),
                TimeDomain::Measured,
                resp.latency_s,
                1,
            );
            latencies.push(resp.latency_s);
            setup_total_s += resp.t_setup_s;
            queue_wait_total_s += resp.t_queue_s;
            latency_total_s += resp.latency_s;
            if resp.solution_fingerprint == fp_direct {
                matched += 1;
            }
        }
        let window = t0.elapsed().as_secs_f64();
        let completed = latencies.len() as u64;
        completed_total += completed;
        let achieved = completed as f64 / window.max(1e-9);
        let stats_now = eng.stats();
        debug_assert_eq!(
            stats_now.queue.rejected - stats_before.queue.rejected,
            rejected
        );
        stats_before = stats_now;
        offered_rates.push(offered);
        achieved_rates.push(achieved);
        rejected_per_rate.push(rejected);
        report.push_metric(format!("rate{i}:solves_per_s"), achieved);
        report.push_metric(format!("rate{i}:rejected"), rejected as f64);
        if args.metrics {
            // Per-rate SLO accounting from this rate's own completions:
            // budget burn (over-target fraction / budget) and the derived
            // health state.  Saturation = admission control refused work.
            let over = latencies
                .iter()
                .filter(|&&l| l > slo.latency_target_s)
                .count();
            let burn = (over as f64 / (completed as f64).max(1.0)) / slo.budget_frac;
            let health = if rejected > 0 {
                2.0
            } else if burn > 1.0 {
                1.0
            } else {
                0.0
            };
            report.push_metric(format!("rate{i}:burn"), burn);
            report.push_metric(format!("rate{i}:health_state"), health);
        }
        report
            .meta
            .push((format!("rate{i}:offered_per_s"), format!("{offered:.2}")));
    }

    // Latency percentiles come from the telemetry span histograms — the
    // same source `fun3d-report show` renders.  A rate whose span carries
    // no histogram (every arrival rejected) still gets its table row, with
    // the missing quantiles shown as n/a.
    let snap = reg.snapshot();
    for i in 0..nrates {
        let span = snap
            .spans
            .iter()
            .find(|s| s.path == format!("serve/rate{i}"));
        let quantiles = [
            ("p50", span.and_then(|s| s.p50())),
            ("p95", span.and_then(|s| s.p95())),
            ("p99", span.and_then(|s| s.p99())),
        ];
        for (q, v) in quantiles {
            if let Some(v) = v {
                report.push_metric(format!("rate{i}:{q}_s"), v);
            }
        }
        let cell = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), fmt_secs);
        rows.push(vec![
            format!("{:.2}", offered_rates[i]),
            format!("{:.2}", achieved_rates[i]),
            cell(quantiles[0].1),
            cell(quantiles[1].1),
            cell(quantiles[2].1),
            rejected_per_rate[i].to_string(),
        ]);
    }
    args.table(
        "Open-loop serving sweep (offered vs achieved solves/s; latency from telemetry histograms)",
        &["Offered/s", "Achieved/s", "p50", "p95", "p99", "Rejected"],
        &rows,
    );

    // Saturation knee: the first offered rate the achieved throughput stops
    // tracking.  The knee metric is the sustained throughput there (the
    // serving ceiling); without a knee, the sweep's peak.
    let knee_idx = (0..nrates).find(|&i| achieved_rates[i] < KNEE_TRACKING_FRAC * offered_rates[i]);
    let peak = achieved_rates.iter().cloned().fold(0.0f64, f64::max);
    let knee_rate = knee_idx.map_or(peak, |i| achieved_rates[i]);
    match knee_idx {
        Some(i) => say!(
            args,
            "\nSaturation knee at offered {:.1}/s: achieved {:.1}/s ({}% of offered), {} arrivals rejected by admission control",
            offered_rates[i],
            achieved_rates[i],
            (100.0 * achieved_rates[i] / offered_rates[i]) as i64,
            rejected_per_rate[i]
        ),
        None => say!(
            args,
            "\nNo saturation knee up to {:.1}/s offered (peak achieved {:.1}/s); raise --steps to sweep further",
            offered_rates.last().copied().unwrap_or(0.0),
            peak
        ),
    }

    // Wind down the live side before the engine: stop the sampler (one
    // final sample), then pull traces and per-worker lanes.
    let metrics_set = collector.map(|c| c.stop()).unwrap_or_default();
    let trace_records = eng.drain_trace_events();
    let worker_snaps = eng.telemetry_snapshots();
    let eng = match Arc::try_unwrap(eng) {
        Ok(e) => e,
        Err(_) => unreachable!("collector joined; engine is uniquely owned"),
    };
    let stats = eng.shutdown();
    let hit_rate = stats.cache.hit_rate();
    let mean_batch = stats.completed as f64 / (stats.batches as f64).max(1.0);
    say!(
        args,
        "Cache: {} hits / {} misses ({:.1}% hit rate); mean batch {:.2}; {} total rejects; results {}identical to the direct path",
        stats.cache.hits,
        stats.cache.misses,
        100.0 * hit_rate,
        mean_batch,
        stats.queue.rejected,
        if matched == completed_total { "bitwise " } else { "NOT " }
    );

    report.push_metric("serve:capacity_solves_per_s", capacity);
    report.push_metric("serve:peak_solves_per_s", peak);
    report.push_metric("serve:knee_solves_per_s", knee_rate);
    report.push_metric("serve:hit_rate", hit_rate);
    report.push_metric("serve:rejected_total", stats.queue.rejected as f64);
    report.push_metric(
        "serve:identity_match_ratio",
        matched as f64 / (completed_total as f64).max(1.0),
    );
    report.push_metric(
        "serve:setup_per_solve_s",
        setup_total_s / (completed_total as f64).max(1.0),
    );
    report.push_metric(
        "serve:queue_wait_frac",
        queue_wait_total_s / latency_total_s.max(1e-12),
    );
    report.push_metric("serve:cold_build_s", family.build_time_s());
    report.push_metric("wall_s", wall0.elapsed().as_secs_f64());
    if args.metrics {
        say!(
            args,
            "Live metrics: {} series collected; {} request traces (SLO target {}, budget {:.0}%)",
            metrics_set.series().len(),
            trace_records.len(),
            fmt_secs(slo.latency_target_s),
            100.0 * slo.budget_frac
        );
    }
    let report = report.with_snapshot(&snap);
    let mut telemetry = vec![snap];
    telemetry.extend(worker_snaps);
    RunOutcome {
        report,
        telemetry,
        events: EventStream::new(trace_records),
        metrics: metrics_set,
    }
}
