//! Thread-scaling sweep over the hot kernels — the shared-memory half of
//! the paper's Section 2.5 story.
//!
//! Times CSR/BCSR SpMV and the flux residual sequentially and under the
//! thread team at increasing team sizes, reporting speedup and parallel
//! efficiency per kernel.  The verdict line compares the observed scaling
//! against the STREAM-calibrated bandwidth bound from `fun3d-memmodel`:
//! these kernels move more bytes than they compute flops, so once one
//! thread saturates the memory system the roofline — not the core count —
//! caps the speedup, exactly the effect Table 5 documents for the
//! Origin 2000's second processor.

use crate::{
    representative_jacobian, say, time_median, BenchArgs, Experiment, ModelEstimate, RunOutcome,
};
use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_memmodel::spmv_model::{csr_traffic, predicted_time};
use fun3d_memmodel::stream::run_stream;
use fun3d_mesh::generator::MeshFamily;
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::layout::FieldLayout;
use fun3d_sparse::par::ParCtx;
use fun3d_telemetry::report::PerfReport;

/// `speedup` as a harness experiment.
pub struct Speedup;

impl Experiment for Speedup {
    fn name(&self) -> &'static str {
        "speedup"
    }
    fn description(&self) -> &'static str {
        "thread-scaling of SpMV + flux residual vs the STREAM bandwidth bound"
    }
    fn default_scale(&self) -> f64 {
        0.5
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn model(&self, report: &PerfReport, machine: &MachineSpec) -> Vec<ModelEstimate> {
        let (Some(nrows), Some(nnz)) = (report.metric("nrows"), report.metric("nnz")) else {
            return Vec::new();
        };
        vec![ModelEstimate {
            metric: "time_csr_t1_s".to_string(),
            predicted: predicted_time(
                &csr_traffic(nrows as usize, nnz as usize, 1.0),
                machine.stream_bytes_per_s,
            ),
        }]
    }
}

/// The team sizes the sweep visits: 1, 2, 4, plus `--threads` when it names
/// something else.
fn sweep_sizes(requested: usize) -> Vec<usize> {
    let mut sizes = vec![1usize, 2, 4];
    if !sizes.contains(&requested) {
        sizes.push(requested);
        sizes.sort_unstable();
    }
    sizes
}

/// Run the thread-scaling sweep once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Small);
    let mesh = spec.build();
    let model = FlowModel::incompressible();
    let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
    let q = crate::perturbed_state(&disc, 0.01);
    let jac = representative_jacobian(&mesh, model, FieldLayout::Interlaced, 50.0);
    let jb = BcsrMatrix::from_csr(&jac, disc.ncomp());
    let n = jac.nrows();
    let x: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let mut y = vec![0.0; n];
    let mut res = FieldVec::zeros(mesh.nverts(), disc.ncomp(), FieldLayout::Interlaced);
    let mut ws = disc.workspace();
    say!(
        args,
        "Thread-scaling sweep: {} vertices, {} unknowns, {} edges (scale {:.2})",
        mesh.nverts(),
        n,
        mesh.nedges(),
        args.scale
    );

    // Host STREAM, measured fresh so the roofline prices this machine as it
    // behaves right now, not as a calibration file remembers it.
    let stream = run_stream(2 * 1024 * 1024, 3);
    let bw = stream.triad;
    let roofline_csr = predicted_time(&csr_traffic(n, jac.nnz(), 1.0), bw);

    let sizes = sweep_sizes(args.threads.max(1));
    let reps = args.reps.max(3);
    // Per-size times, in sweep order: (nthreads, t_csr, t_bcsr, t_residual).
    let mut times = Vec::new();
    for &nthreads in &sizes {
        let ctx = ParCtx::new(nthreads);
        let t_csr = time_median(reps, || jac.spmv_par(&x, &mut y, &ctx));
        let t_bcsr = time_median(reps, || jb.spmv_par(&x, &mut y, &ctx));
        let t_res = time_median(reps, || disc.residual_par(&q, &mut res, &mut ws, &ctx));
        times.push((nthreads, t_csr, t_bcsr, t_res));
    }

    let (_, t1_csr, t1_bcsr, t1_res) = times[0];
    let rows: Vec<Vec<String>> = times
        .iter()
        .map(|&(nt, tc, tb, tr)| {
            let combined = (t1_csr + t1_res) / (tc + tr);
            vec![
                nt.to_string(),
                format!("{:.3} ms", tc * 1e3),
                format!("{:.2}x", t1_csr / tc),
                format!("{:.3} ms", tb * 1e3),
                format!("{:.2}x", t1_bcsr / tb),
                format!("{:.3} ms", tr * 1e3),
                format!("{:.2}x", t1_res / tr),
                format!("{:.0}%", 100.0 * combined / nt as f64),
            ]
        })
        .collect();
    args.table(
        "Thread scaling (median times; efficiency = combined speedup / threads)",
        &[
            "threads",
            "csr",
            "speedup",
            "bcsr",
            "speedup",
            "residual",
            "speedup",
            "efficiency",
        ],
        &rows,
    );

    // The acceptance verdict: either the combined SpMV+residual speedup at 4
    // threads clears 1.5x, or the sequential kernel already sits on the
    // STREAM roofline and extra threads have no bandwidth left to use.
    let at4 = times
        .iter()
        .find(|&&(nt, ..)| nt == 4)
        .copied()
        .unwrap_or(*times.last().unwrap());
    let combined_speedup = (t1_csr + t1_res) / (at4.1 + at4.3);
    let bandwidth_bound = t1_csr <= 1.3 * roofline_csr;
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    say!(
        args,
        "\nSTREAM triad: {:.0} MB/s; roofline CSR SpMV time: {:.3} ms (measured 1-thread: {:.3} ms)",
        bw / 1e6,
        roofline_csr * 1e3,
        t1_csr * 1e3
    );
    say!(
        args,
        "Combined SpMV+residual speedup at {} threads: {:.2}x -> {}",
        at4.0,
        combined_speedup,
        verdict(combined_speedup, t1_csr, roofline_csr, hw_threads, at4.0)
    );

    let mut perf = PerfReport::new("speedup").with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    perf.push_metric("nrows", n as f64);
    perf.push_metric("nnz", jac.nnz() as f64);
    perf.push_metric("stream_triad_bytes_per_s", bw);
    perf.push_metric("roofline_csr_s", roofline_csr);
    for &(nt, tc, tb, tr) in &times {
        perf.push_metric(format!("time_csr_t{nt}_s"), tc);
        perf.push_metric(format!("time_bcsr_t{nt}_s"), tb);
        perf.push_metric(format!("time_residual_t{nt}_s"), tr);
    }
    perf.push_metric("combined_speedup", combined_speedup);
    perf.push_metric("parallel_efficiency", combined_speedup / at4.0 as f64);
    perf.push_metric("bandwidth_bound", if bandwidth_bound { 1.0 } else { 0.0 });
    perf.push_metric("hw_threads", hw_threads as f64);
    RunOutcome::from(perf)
}

/// The acceptance verdict as a pure function of the measured facts, so the
/// three-way logic is unit-testable without timing anything: threading
/// either pays off (combined speedup clears 1.5x), or the sequential kernel
/// already sits on the STREAM roofline (threads share one memory system),
/// or the host simply lacks the cores — in that priority order.
pub fn verdict(
    combined_speedup: f64,
    t1_csr_s: f64,
    roofline_csr_s: f64,
    hw_threads: usize,
    team: usize,
) -> String {
    let bandwidth_bound = t1_csr_s <= 1.3 * roofline_csr_s;
    if combined_speedup >= 1.5 {
        "threading pays off".to_string()
    } else if bandwidth_bound {
        "bandwidth-bound per the memmodel roofline (threads share one memory system)".to_string()
    } else if hw_threads < team {
        format!(
            "core-limited: only {hw_threads} hardware thread(s) available, \
             so teams larger than that just timeslice one core"
        )
    } else {
        "below target and not bandwidth-bound; check thread spawn overhead vs problem size"
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_includes_requested_size_once() {
        assert_eq!(sweep_sizes(1), vec![1, 2, 4]);
        assert_eq!(sweep_sizes(4), vec![1, 2, 4]);
        assert_eq!(sweep_sizes(3), vec![1, 2, 3, 4]);
        assert_eq!(sweep_sizes(8), vec![1, 2, 4, 8]);
    }

    // Synthetic-timing checks pinning the three-way acceptance verdict and
    // its thresholds (1.5x combined speedup; 1.3x of the roofline time).

    #[test]
    fn verdict_pays_off_when_speedup_clears_target() {
        // Even a bandwidth-bound, core-limited host reports success first.
        assert_eq!(verdict(1.5, 1.0e-3, 1.0e-3, 1, 4), "threading pays off");
        assert_eq!(verdict(2.1, 5.0e-3, 1.0e-3, 8, 4), "threading pays off");
    }

    #[test]
    fn verdict_blames_bandwidth_when_on_the_roofline() {
        // t1 within 1.3x of the roofline time: threads share one memory
        // system, so a 1.0x speedup is expected, not a failure.
        let v = verdict(1.0, 1.25e-3, 1.0e-3, 8, 4);
        assert!(v.contains("bandwidth-bound"), "{v}");
        // Just past the threshold the explanation must change.
        let v = verdict(1.0, 1.31e-3, 1.0e-3, 8, 4);
        assert!(!v.starts_with("bandwidth-bound"), "{v}");
        assert!(v.contains("not bandwidth-bound"), "{v}");
    }

    #[test]
    fn verdict_blames_cores_when_host_is_small() {
        // Far off the roofline, below target, fewer cores than the team.
        let v = verdict(1.1, 5.0e-3, 1.0e-3, 2, 4);
        assert!(v.contains("core-limited"), "{v}");
        assert!(v.contains("only 2 hardware thread"), "{v}");
    }

    #[test]
    fn verdict_flags_overhead_otherwise() {
        // Enough cores, not bandwidth-bound, still slow: spawn overhead.
        let v = verdict(1.1, 5.0e-3, 1.0e-3, 8, 4);
        assert!(v.contains("spawn overhead"), "{v}");
    }

    #[test]
    fn speedup_reports_scaling_metrics() {
        let args = BenchArgs {
            scale: 0.02,
            reps: 1,
            quiet: true,
            threads: 2,
            ..BenchArgs::defaults(0.02)
        };
        let out = run(&args);
        let r = &out.report;
        assert!(r.metric("time_csr_t1_s").unwrap() > 0.0);
        assert!(r.metric("time_residual_t2_s").unwrap() > 0.0);
        assert!(r.metric("combined_speedup").unwrap() > 0.0);
        assert!(r.metric("stream_triad_bytes_per_s").unwrap() > 0.0);
        let bb = r.metric("bandwidth_bound").unwrap();
        assert!(bb == 0.0 || bb == 1.0);
        assert!(r.meta.iter().any(|(k, v)| k == "nthreads" && v == "2"));
    }
}
