//! Host SpMV timing for the representative Euler Jacobian in point CSR and
//! 4x4-block BCSR, against the bandwidth model of
//! [`fun3d_memmodel::spmv_model`] — the companion-paper bound the whole
//! tuning story rests on.
//!
//! With a calibrated machine model (STREAM measured on this host), the
//! predicted times should land within a few tens of percent of the measured
//! ones; the harness reports the delta per metric.

use crate::{
    representative_jacobian, say, time_median, BenchArgs, Experiment, ModelEstimate, RunOutcome,
};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::hierarchy::MemoryHierarchy;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_memmodel::spmv_model::{bcsr_traffic, csr_traffic, predicted_time, spmv_flops};
use fun3d_memmodel::trace::{bcsr_spmv_trace, csr_spmv_trace};
use fun3d_mesh::generator::MeshFamily;
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::layout::FieldLayout;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::Registry;

/// `spmv` as a harness experiment.
pub struct Spmv;

impl Experiment for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }
    fn description(&self) -> &'static str {
        "measured CSR/BCSR SpMV vs the bandwidth model's predicted times"
    }
    fn default_scale(&self) -> f64 {
        0.5
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn model(&self, report: &PerfReport, machine: &MachineSpec) -> Vec<ModelEstimate> {
        // Re-derive the traffic from the matrix shape recorded in the
        // report, then price it at the machine's sustained bandwidth.
        let (Some(nrows), Some(nnz)) = (report.metric("nrows"), report.metric("nnz")) else {
            return Vec::new();
        };
        let (nrows, nnz) = (nrows as usize, nnz as usize);
        let mut out = vec![ModelEstimate {
            metric: "time_csr_s".to_string(),
            predicted: predicted_time(&csr_traffic(nrows, nnz, 1.0), machine.stream_bytes_per_s),
        }];
        if let (Some(nbrows), Some(nblocks)) =
            (report.metric("nbrows"), report.metric("nnz_blocks"))
        {
            out.push(ModelEstimate {
                metric: "time_bcsr_s".to_string(),
                predicted: predicted_time(
                    &bcsr_traffic(nbrows as usize, nblocks as usize, 4, 1.0),
                    machine.stream_bytes_per_s,
                ),
            });
        }
        out
    }
}

/// Time CSR and BCSR SpMV on the representative Jacobian once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let ncomp = 4usize;
    let spec = args.family_spec(MeshFamily::Small);
    let mesh = spec.build();
    say!(
        args,
        "SpMV benchmark: {} vertices (scale {:.2}), 4x4 blocks",
        mesh.nverts(),
        args.scale
    );
    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let x: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let mut y = vec![0.0; n];
    // Spans around every timed call give the report per-call latency
    // histograms (p50/p95/p99) on top of the median the table prints; the
    // analytic `bytes` counter per call turns each span into an achieved-
    // bandwidth row (PerfReport::bandwidth_metrics).  The kernels run via
    // `spmv_par` with the `--threads` context, so with `--profile` on every
    // fork/join records per-thread busy time under its region label.
    let ctx = args.par();
    let tel = Registry::enabled(0);
    let mut events = fun3d_telemetry::events::EventStream::default();
    args.profile_begin();
    let t_csr = time_median(7, || {
        let _g = tel.span("spmv/csr");
        tel.counter("bytes", jac.spmv_traffic_bytes());
        jac.spmv_par(&x, &mut y, &ctx)
    });
    let jb = BcsrMatrix::from_csr(&jac, ncomp);
    let t_bcsr = time_median(7, || {
        let _g = tel.span("spmv/bcsr");
        tel.counter("bytes", jb.spmv_traffic_bytes());
        jb.spmv_par(&x, &mut y, &ctx)
    });
    let regions = args.profile_finish(&tel, &mut events);
    // Modeled R10000 cache/TLB misses for the same kernels, recorded under
    // the same span paths so measured time and modeled misses share a row.
    let mut mem = MemoryHierarchy::origin2000();
    csr_spmv_trace(&jac, &mut mem).ingest_into(&tel, "spmv/csr");
    mem.flush();
    bcsr_spmv_trace(&jb, &mut mem).ingest_into(&tel, "spmv/bcsr");

    let flops = spmv_flops(jac.nnz());
    let rows = vec![
        vec![
            "CSR".to_string(),
            format!("{:.3} ms", t_csr * 1e3),
            format!("{:.0}", flops / t_csr / 1e6),
        ],
        vec![
            "BCSR 4x4".to_string(),
            format!("{:.3} ms", t_bcsr * 1e3),
            format!("{:.0}", flops / t_bcsr / 1e6),
        ],
    ];
    args.table(
        "Measured SpMV on the Euler Jacobian (median of 7)",
        &["format", "time", "Mflop/s"],
        &rows,
    );
    say!(
        args,
        "\nBlocking speedup: {:.2}x measured (bandwidth model predicts ~1.2-1.4x from",
        t_csr / t_bcsr
    );
    say!(
        args,
        "index-traffic savings alone; more when the block structure helps the prefetcher)."
    );

    let mut perf = PerfReport::new("spmv")
        .with_meta("nverts", mesh.nverts().to_string())
        .with_meta("block_kernel", jb.kernel().name());
    args.annotate(&mut perf);
    if let Some(stats) = jb.structure_stats() {
        // Repeated-block-structure telemetry from the batched tier: how
        // much of the matrix the template dedup covers and how long the
        // streamed batches run.
        perf.push_metric("structure_hit_rate", stats.hit_rate);
        perf.push_metric("structure_mean_batch_len", stats.mean_batch_len);
        perf.push_metric("structure_ntemplates", stats.ntemplates as f64);
    }
    perf.push_metric("nrows", n as f64);
    perf.push_metric("nnz", jac.nnz() as f64);
    perf.push_metric("nbrows", jb.nbrows() as f64);
    perf.push_metric("nnz_blocks", jb.nnz_blocks() as f64);
    perf.push_metric("time_csr_s", t_csr);
    perf.push_metric("time_bcsr_s", t_bcsr);
    perf.push_metric("blocking_speedup", t_csr / t_bcsr);
    if args.profile {
        // A STREAM triad on this host anchors the %-of-STREAM column of
        // `fun3d-report profile` (the paper's Table 2 denominator).  The
        // arrays must bust the cache or the roofline reads far too high.
        let triad = fun3d_memmodel::stream::run_stream(2 * 1024 * 1024, 2).triad;
        perf.push_metric("stream_triad_bytes_per_s", triad);
        if !regions.is_empty() {
            let rows: Vec<Vec<String>> = regions
                .iter()
                .map(|s| {
                    vec![
                        s.label.to_string(),
                        s.nthreads.to_string(),
                        format!("{:.3} ms", s.busy_max_s() * 1e3),
                        format!("{:.3} ms", s.busy_mean_s() * 1e3),
                        format!("{:.2}", s.imbalance()),
                        format!("{:.3} ms", s.join_wait_s() * 1e3),
                    ]
                })
                .collect();
            args.table(
                "Parallel regions (per-thread busy time)",
                &[
                    "region",
                    "nthr",
                    "busy max",
                    "busy mean",
                    "imbal",
                    "join wait",
                ],
                &rows,
            );
        }
    }
    let snapshot = tel.snapshot();
    let perf = perf.with_snapshot(&snapshot);
    RunOutcome {
        report: perf,
        telemetry: vec![snapshot],
        events,
        metrics: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_telemetry::events::EventRecord;

    /// End-to-end profiling: `--profile --threads 2` must produce
    /// `par/{label}` spans with imbalance counters, achieved-bandwidth
    /// metrics on the timed spans, `ParRegion` events, and the STREAM
    /// anchor metric — while a profiling-off run produces none of them.
    /// (Kept as the single profiler test in this binary: the profiler is
    /// process-global.)
    #[test]
    fn profiled_run_reports_regions_and_bandwidth() {
        let mut args = BenchArgs {
            scale: 0.02,
            quiet: true,
            threads: 2,
            ..BenchArgs::defaults(0.02)
        };
        args.profile = true;
        let out = run(&args);
        let r = &out.report;
        let csr = r.span("par/spmv_csr").expect("CSR region span");
        assert_eq!(csr.counter("nthreads"), Some(2.0));
        assert!(csr.counter("imbalance").unwrap() >= 1.0);
        assert!(csr.counter("busy_t0_s").is_some());
        assert!(csr.counter("busy_t1_s").is_some());
        assert!(r.span("par/spmv_bcsr").is_some());
        assert!(r
            .region_metrics()
            .iter()
            .any(|(k, v)| k == "spmv_csr:imbalance" && *v >= 1.0));
        let bw = r.bandwidth_metrics();
        for key in ["spmv/csr:gbps", "spmv/bcsr:gbps"] {
            let (_, v) = bw.iter().find(|(k, _)| k == key).expect(key);
            assert!(*v > 0.0 && v.is_finite());
        }
        assert!(r.metric("stream_triad_bytes_per_s").unwrap() > 0.0);
        let regions: Vec<_> = out
            .events
            .records
            .iter()
            .filter(|e| matches!(e, EventRecord::ParRegion { .. }))
            .collect();
        assert!(!regions.is_empty(), "ParRegion events expected");

        // Profiling off: no region spans, no events, no STREAM metric.
        args.profile = false;
        let out = run(&args);
        assert!(out.report.spans.iter().all(|s| !s.path.starts_with("par/")));
        assert!(out.report.region_metrics().is_empty());
        assert!(out.events.is_empty());
        assert!(out.report.metric("stream_triad_bytes_per_s").is_none());
    }
}
