//! Measures the host's STREAM bandwidth (McCalpin) — the yardstick the
//! paper uses for the memory-bound sparse solve phase (Section 2.2) — and
//! compares it with the bandwidth-model predictions for the paper's
//! machines.

use crate::{say, BenchArgs, Experiment, ModelEstimate, RunOutcome};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_memmodel::stream::run_stream;
use fun3d_telemetry::report::PerfReport;

/// `stream` as a harness experiment.
pub struct Stream;

impl Experiment for Stream {
    fn name(&self) -> &'static str {
        "stream"
    }
    fn description(&self) -> &'static str {
        "host STREAM bandwidth vs the paper machines' balance"
    }
    fn default_scale(&self) -> f64 {
        1.0
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn model(&self, _report: &PerfReport, machine: &MachineSpec) -> Vec<ModelEstimate> {
        // The machine model carries a single sustained-bandwidth figure; it
        // is the prediction for every STREAM kernel.
        ["copy", "scale", "add", "triad"]
            .iter()
            .map(|k| ModelEstimate {
                metric: format!("{k}_bytes_per_s"),
                predicted: machine.stream_bytes_per_s,
            })
            .collect()
    }
}

/// Run STREAM once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let n = ((8 * 1024 * 1024) as f64 * args.scale) as usize;
    let r = run_stream(n.max(64 * 1024), 3);
    let rows = vec![
        vec!["copy".to_string(), format!("{:.0}", r.copy / 1e6)],
        vec!["scale".to_string(), format!("{:.0}", r.scale / 1e6)],
        vec!["add".to_string(), format!("{:.0}", r.add / 1e6)],
        vec!["triad".to_string(), format!("{:.0}", r.triad / 1e6)],
    ];
    args.table(
        &format!("STREAM on this host ({} doubles per array)", r.n),
        &["kernel", "MB/s"],
        &rows,
    );

    let rows: Vec<Vec<String>> = [
        MachineSpec::asci_red(),
        MachineSpec::asci_blue_pacific(),
        MachineSpec::cray_t3e(),
        MachineSpec::origin2000(),
    ]
    .iter()
    .map(|m| {
        vec![
            m.name.to_string(),
            format!("{:.0}", m.stream_bytes_per_s / 1e6),
            format!("{:.0}", m.peak_flops_per_cpu() / 1e6),
            format!("{:.2}", m.stream_bytes_per_s / 8.0 / m.peak_flops_per_cpu()),
        ]
    })
    .collect();
    args.table(
        "Machine models: STREAM vs peak (the balance the paper's analysis turns on)",
        &["machine", "STREAM MB/s", "peak Mflop/s", "doubles/flop"],
        &rows,
    );
    say!(
        args,
        "\nThe paper's point: sparse kernels need ~1 double of memory traffic per flop,"
    );
    say!(
        args,
        "but every machine above sustains only ~0.1-0.25 — so SpMV and triangular solves"
    );
    say!(
        args,
        "run at a small fraction of peak no matter how well scheduled."
    );

    let mut perf = PerfReport::new("stream").with_meta("array_doubles", r.n.to_string());
    args.annotate(&mut perf);
    perf.push_metric("copy_bytes_per_s", r.copy);
    perf.push_metric("scale_bytes_per_s", r.scale);
    perf.push_metric("add_bytes_per_s", r.add);
    perf.push_metric("triad_bytes_per_s", r.triad);
    perf.into()
}
