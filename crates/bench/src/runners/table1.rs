//! **Table 1**: execution times per pseudo-timestep for Euler flow under the
//! three data-layout enhancements — field interlacing, structural blocking,
//! and edge (+vertex) reordering — for both flow models.

use crate::{say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::config::{CaseConfig, LayoutConfig};
use fun3d_core::driver::run_case_instrumented;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::SpatialOrder;
use fun3d_mesh::generator::MeshFamily;
use fun3d_solver::gmres::GmresOptions;
use fun3d_solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
use fun3d_sparse::ilu::IluOptions;
use fun3d_telemetry::events::{EventSink, EventStream};
use fun3d_telemetry::Registry;

/// `table1` as a harness experiment.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "layout enhancements (interlacing/blocking/reordering) time per step"
    }
    fn default_scale(&self) -> f64 {
        0.25
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
    fn supports_blackbox(&self) -> bool {
        true
    }
}

/// Regenerate Table 1 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Small);
    say!(
        args,
        "Table 1 regenerator: {} vertices (paper: 22,677; scale {:.2}), {} measured steps per cell",
        spec.nverts(),
        args.scale,
        args.steps
    );

    // One registry + sink across all sub-cases: the span tree aggregates the
    // whole table, and the event stream's RunMeta records split it back into
    // per-row convergence series.
    let tel = Registry::enabled(0);
    let sink = EventSink::enabled();
    let mut rows = Vec::new();
    let mut results: Vec<Vec<f64>> = Vec::new();
    for (mi, model) in [FlowModel::incompressible(), FlowModel::compressible()]
        .into_iter()
        .enumerate()
    {
        let model_tag = ["inc", "comp"][mi];
        let mut times = Vec::new();
        for (ri, (layout, _flags)) in LayoutConfig::table1_rows().into_iter().enumerate() {
            let cfg = CaseConfig {
                mesh: spec,
                model,
                layout,
                order: SpatialOrder::First,
                nks: PseudoTransientOptions {
                    cfl0: 5.0,
                    cfl_exponent: 1.0,
                    cfl_max: 1e5,
                    max_steps: args.steps,
                    target_reduction: 0.0, // run exactly `steps` steps
                    // Fixed linear work per step (rtol 0 never triggers) so
                    // every layout performs identical arithmetic and the
                    // table isolates memory behaviour.
                    krylov: GmresOptions {
                        restart: 20,
                        rtol: 0.0,
                        max_iters: 20,
                        par: args.par(),
                        ..Default::default()
                    },
                    precond: PrecondSpec::Ilu(IluOptions::with_fill(0)),
                    second_order_switch: None,
                    matrix_free: false,
                    line_search: false,
                    bcsr_block: None,
                    forcing: Forcing::Constant,
                    pc_refresh: 1,
                },
            };
            let report = run_case_instrumented(&cfg, &format!("{model_tag} row{ri}"), &tel, &sink);
            // Per-step cost excluding the first step: symbolic setup (BCSR
            // structure, first ILU pattern) amortizes over a production
            // run's hundreds of steps, exactly as in the paper's timings.
            let steady: Vec<_> = report.history.steps.iter().skip(1).collect();
            let t = steady
                .iter()
                .map(|st| st.t_residual + st.t_jacobian + st.t_precond + st.t_krylov)
                .sum::<f64>()
                / steady.len() as f64;
            times.push(t);
        }
        results.push(times);
    }

    for (i, (_, flags)) in LayoutConfig::table1_rows().iter().enumerate() {
        let mark = |b: bool| if b { "x" } else { " " }.to_string();
        let t_inc = results[0][i];
        let t_cmp = results[1][i];
        rows.push(vec![
            mark(flags[0]),
            mark(flags[1]),
            mark(flags[2]),
            format!("{:.3}s", t_inc),
            format!("{:.2}", results[0][0] / t_inc),
            format!("{:.3}s", t_cmp),
            format!("{:.2}", results[1][0] / t_cmp),
        ]);
    }
    args.table(
        "Table 1: layout enhancements (time per pseudo-timestep)",
        &[
            "Interlacing",
            "Blocking",
            "Edge Reorder",
            "Incomp. Time/Step",
            "Ratio",
            "Comp. Time/Step",
            "Ratio",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper ratios for the same rows: incompressible 1.00 / 2.31 / 2.88 / 2.86 / 3.57 / 4.96;"
    );
    say!(
        args,
        "compressible 1.00 / 2.44 / 3.25 / 2.37 / 3.92 / 5.71."
    );
    say!(
        args,
        "(Absolute times differ — modern cache hierarchies are far more forgiving than a"
    );
    say!(
        args,
        "1997 R10000 — but every enhancement must still help, and the combined row wins.)"
    );

    let mut perf = fun3d_telemetry::report::PerfReport::new("table1")
        .with_meta("nverts", spec.nverts().to_string());
    args.annotate(&mut perf);
    for (mi, model) in ["inc", "comp"].iter().enumerate() {
        for (i, t) in results[mi].iter().enumerate() {
            perf.push_metric(format!("time_per_step_{model}_row{i}"), *t);
            perf.push_metric(format!("ratio_{model}_row{i}"), results[mi][0] / t);
        }
    }
    let events = EventStream::new(sink.drain());
    // The gate watches anomaly terminations as a lower-is-better count: a
    // healthy regeneration reports 0, a NaN/divergence injection reports
    // how many sub-cases aborted.
    let anomalies = events
        .records
        .iter()
        .filter(|e| matches!(e, fun3d_telemetry::events::EventRecord::Anomaly { .. }))
        .count();
    perf.push_metric("anomaly:count", anomalies as f64);
    let snapshot = tel.snapshot();
    let perf = perf.with_snapshot(&snapshot);
    RunOutcome {
        report: perf,
        telemetry: vec![snapshot],
        events,
        metrics: Default::default(),
    }
}
