//! **Table 2**: the effect of storing the ILU preconditioner in *single
//! precision* (arithmetic stays double) on the linear-solve and overall
//! execution times at 16–120 processors.
//!
//! Method: block-Jacobi GMRES on the real Euler Jacobian with the ownership
//! split at each processor count.  Iteration counts and the convergence
//! identity (f32 vs f64) are *measured*; the per-processor solve time
//! combines the measured iterations with the machine model's bandwidth
//! arithmetic (factor bytes / STREAM), and the host-measured f64/f32
//! triangular-solve ratio is reported alongside.

use crate::{representative_jacobian, say, time_median, BenchArgs, Experiment, RunOutcome};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::AdditiveSchwarz;
use fun3d_sparse::ilu::{IluFactors, IluOptions, PrecStorage};
use fun3d_sparse::layout::FieldLayout;

/// `table2` as a harness experiment.
pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }
    fn description(&self) -> &'static str {
        "single- vs double-precision preconditioner storage at 16-120 procs"
    }
    fn default_scale(&self) -> f64 {
        0.08
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Table 2 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Medium);
    let mesh = spec.build();
    let ncomp = 4usize;
    say!(
        args,
        "Table 2 regenerator: {} vertices (paper: 357,900; scale {:.2})",
        mesh.nverts(),
        args.scale
    );

    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let b_rhs: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::origin2000();

    // Host-measured f64 vs f32 triangular-solve rate (the paper's ~2x).
    let ratio = {
        let f64f = IluFactors::factor(&jac, &IluOptions::with_fill(0)).unwrap();
        let f32f = IluFactors::factor(
            &jac,
            &IluOptions {
                fill_level: 0,
                storage: PrecStorage::Single,
            },
        )
        .unwrap();
        let mut x = vec![0.0; n];
        let t64 = time_median(5, || f64f.solve(&b_rhs, &mut x));
        let t32 = time_median(5, || f32f.solve(&b_rhs, &mut x));
        t64 / t32
    };
    say!(
        args,
        "Host-measured triangular solve speedup f64 -> f32 storage: {ratio:.2}x"
    );

    struct Point {
        p: usize,
        t_double: f64,
        t_single: f64,
        its: [usize; 2],
    }
    let mut points: Vec<Point> = Vec::new();
    for &p in &[16usize, 32, 64, 120] {
        // Partition vertices, lift to unknown row sets (interlaced layout).
        let part = partition_kway(&graph, p, 7);
        let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (v, &pp) in part.part.iter().enumerate() {
            for c in 0..ncomp {
                owned_sets[pp as usize].push(v * ncomp + c);
            }
        }
        let opts = GmresOptions {
            restart: 20,
            rtol: 1e-6,
            max_iters: 4000,
            ..Default::default()
        };
        let mut iters = [0usize; 2];
        let mut factor_bytes = [0usize; 2];
        for (si, storage) in [PrecStorage::Double, PrecStorage::Single]
            .iter()
            .enumerate()
        {
            let ilu = IluOptions {
                fill_level: 0,
                storage: *storage,
            };
            let pc = AdditiveSchwarz::block_jacobi(&jac, &owned_sets, &ilu).unwrap();
            let mut x = vec![0.0; n];
            let res = gmres(&CsrOperator::new(&jac), &pc, &b_rhs, &mut x, &opts);
            assert!(res.converged, "p={p} {storage:?}: {res:?}");
            iters[si] = res.iterations;
            // Factor value bytes per triangular-solve pass. The paper's code
            // stores the factors in BAIJ blocks (one u32 index per 4x4
            // block, i.e. 0.25 B per value), which is what we charge here.
            factor_bytes[si] = match storage {
                PrecStorage::Double => pc.total_factor_nnz() * 8,
                PrecStorage::Single => pc.total_factor_nnz() * 4,
            } + pc.total_factor_nnz() / 4;
        }
        // Simulated per-processor solve time on the Origin: per iteration
        // the triangular solves stream the factors plus the Krylov vector
        // traffic. (The matvec is matrix-free — charged to the flux phase.)
        let vec_bytes = 6.0 * 16.0 * n as f64;
        let scale_up = 1.0 / args.scale; // scale volumes to the paper's mesh
        let solve_time = |its: usize, fb: usize| -> f64 {
            its as f64 * (fb as f64 + vec_bytes) * scale_up
                / (machine.stream_bytes_per_s * p as f64)
        };
        points.push(Point {
            p,
            t_double: solve_time(iters[0], factor_bytes[0]),
            t_single: solve_time(iters[1], factor_bytes[1]),
            its: iters,
        });
    }
    // The flux/assembly phase is precision-independent and perfectly
    // parallel: other(p) = K / p, with K calibrated so the solve phase is
    // ~30% of overall at p=16 in double precision (the paper's 223s/746s).
    let k_other = 16.0 * points[0].t_double * (746.0 - 223.0) / 223.0;
    let mut rows = Vec::new();
    for pt in &points {
        let other = k_other / pt.p as f64;
        rows.push(vec![
            pt.p.to_string(),
            format!("{:.1}s", pt.t_double),
            format!("{:.1}s", pt.t_single),
            format!("{:.1}s", pt.t_double + other),
            format!("{:.1}s", pt.t_single + other),
            pt.its[0].to_string(),
            pt.its[1].to_string(),
        ]);
    }
    args.table(
        "Table 2: single vs double precision preconditioner storage (simulated Origin 2000 times, measured iterations)",
        &[
            "Procs",
            "Solve (dbl)",
            "Solve (sgl)",
            "Overall (dbl)",
            "Overall (sgl)",
            "Its (dbl)",
            "Its (sgl)",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper: Linear solve 223/136s (16p) ... 31/16s (120p); overall 746/657s ... 122/106s."
    );
    say!(
        args,
        "Key claims to check: solve-phase ratio ~2x from storage precision alone; iteration"
    );
    say!(
        args,
        "counts identical between precisions (the preconditioner is approximate by design)."
    );

    let mut perf = fun3d_telemetry::report::PerfReport::new("table2")
        .with_meta("machine", "origin2000")
        .with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    perf.push_metric("trisolve_f32_speedup", ratio);
    for pt in &points {
        perf.push_metric(format!("solve_dbl_p{}", pt.p), pt.t_double);
        perf.push_metric(format!("solve_sgl_p{}", pt.p), pt.t_single);
        perf.push_metric(format!("its_dbl_p{}", pt.p), pt.its[0] as f64);
        perf.push_metric(format!("its_sgl_p{}", pt.p), pt.its[1] as f64);
    }
    perf.into()
}
