//! **Table 3**: scalability bottlenecks on ASCI Red, 128 to 1024 nodes, for
//! the 2.8M-vertex mesh with block Jacobi / ILU(1): time, speedup, the
//! eta_overall = eta_alg * eta_impl decomposition, the percent time in
//! global reductions / implicit synchronizations / ghost scatters, the data
//! sent per time step, and the application-level effective bandwidth.
//!
//! Calibration is *measured* where the laptop allows: the iteration-growth
//! law its(p) comes from real block-Jacobi NKS linear solves at affordable
//! block counts (power-law fit), and the interface law from real partitions
//! of the mesh family.  Machine arithmetic comes from the ASCI Red model.

use crate::{representative_jacobian, say, BenchArgs, Experiment, RunOutcome};
use fun3d_core::efficiency::efficiency_from_reports;
use fun3d_core::scaling::{Calibration, FixedSizeModel, PowerLaw, ProblemShape};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::AdditiveSchwarz;
use fun3d_sparse::ilu::IluOptions;
use fun3d_sparse::layout::FieldLayout;
use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::{Registry, TimeDomain};

/// `table3` as a harness experiment.
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }
    fn description(&self) -> &'static str {
        "efficiency decomposition + overhead percentages on the ASCI Red model"
    }
    fn default_scale(&self) -> f64 {
        0.008
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Table 3 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Large);
    let mesh = spec.build();
    let ncomp = 4usize;
    say!(
        args,
        "Table 3 regenerator: calibrating on {} vertices, extrapolating to the 2.8M-vertex",
        mesh.nverts()
    );
    say!(args, "paper case on the ASCI Red model.\n");

    // --- Measure iteration growth with subdomain count (block Jacobi ILU(1)) ---
    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
    let graph = mesh.vertex_graph();
    let opts = GmresOptions {
        restart: 20,
        rtol: 1e-6,
        max_iters: 6000,
        ..Default::default()
    };
    let mut its_samples = Vec::new();
    for &p in &[4usize, 8, 16, 32] {
        let part = partition_kway(&graph, p, 3);
        let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (v, &pp) in part.part.iter().enumerate() {
            for c in 0..ncomp {
                owned_sets[pp as usize].push(v * ncomp + c);
            }
        }
        let pc =
            AdditiveSchwarz::block_jacobi(&jac, &owned_sets, &IluOptions::with_fill(1)).unwrap();
        let mut x = vec![0.0; n];
        let res = gmres(&CsrOperator::new(&jac), &pc, &rhs, &mut x, &opts);
        assert!(res.converged);
        its_samples.push((p as f64, res.iterations as f64));
        say!(
            args,
            "  measured: {p:3} blocks -> {} linear its",
            res.iterations
        );
    }
    let its_fit = PowerLaw::fit(&its_samples);
    say!(
        args,
        "  fitted iteration growth exponent: {:.3} (paper's Its column implies ~0.133)",
        its_fit.gamma
    );

    // --- Measure the interface (surface/volume) law from real partitions ---
    let mut iface_samples = Vec::new();
    for &p in &[8usize, 16, 32, 64] {
        let q = partition_kway(&graph, p, 5).quality(&graph);
        // interface = c * p^eta * N^(2/3): sample the left side.
        iface_samples.push((p as f64, q.interface_vertices as f64));
    }
    let iface_fit = PowerLaw::fit(&iface_samples);
    let nv = mesh.nverts() as f64;
    let c_interface = iface_fit.y0 / (iface_fit.p0.powf(iface_fit.gamma) * nv.powf(2.0 / 3.0));
    say!(
        args,
        "  fitted interface law: exponent {:.3}, coefficient {:.2}",
        iface_fit.gamma,
        c_interface
    );

    // --- Assemble the full-scale model ---
    let mut cal = Calibration::paper_defaults();
    cal.its = PowerLaw {
        y0: 22.0, // time steps at 128 (the paper's base point)
        p0: 128.0,
        gamma: its_fit.gamma.clamp(0.05, 0.3),
    };
    cal.interface_exponent = iface_fit.gamma.clamp(0.3, 0.6);
    let model = FixedSizeModel {
        machine: MachineSpec::asci_red(),
        shape: ProblemShape::large_euler(),
        cal,
    };

    let procs = [128usize, 256, 512, 768, 1024];
    let pts = model.series(&procs);
    // Route every model point through the telemetry schema: each becomes a
    // fun3d-perf/1 report whose simulated span tree carries the phase
    // breakdown, and the efficiency columns are derived by reading those
    // reports back (the same path a measured run takes).
    let reports: Vec<PerfReport> = pts
        .iter()
        .map(|p| {
            let reg = Registry::enabled(0);
            let frac = |pct: f64| pct / 100.0 * p.time;
            reg.record_span(
                "sim/compute",
                TimeDomain::Simulated,
                frac(100.0 - p.pct_reductions - p.pct_implicit_sync - p.pct_scatters),
                p.its.round() as u64,
            );
            reg.record_span(
                "sim/reduction",
                TimeDomain::Simulated,
                frac(p.pct_reductions),
                1,
            );
            reg.record_span(
                "sim/implicit_sync",
                TimeDomain::Simulated,
                frac(p.pct_implicit_sync),
                1,
            );
            reg.record_span(
                "sim/scatter",
                TimeDomain::Simulated,
                frac(p.pct_scatters),
                1,
            );
            reg.counter_at(
                "sim",
                TimeDomain::Simulated,
                "bytes_sent",
                p.scatter_bytes_per_it,
            );
            let mut r = PerfReport::new("table3")
                .with_meta("machine", "asci_red")
                .with_meta("nranks", p.nprocs.to_string())
                .with_snapshot(&reg.snapshot());
            args.annotate(&mut r);
            r.push_metric("nprocs", p.nprocs as f64);
            r.push_metric("linear_its", p.its.round());
            r.push_metric("time_s", p.time);
            r.push_metric("effective_bandwidth", p.effective_bandwidth);
            r
        })
        .collect();
    let eff = efficiency_from_reports(&reports);

    let rows: Vec<Vec<String>> = eff
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                r.its.to_string(),
                format!("{:.0}s", r.time),
                format!("{:.2}", r.speedup),
                format!("{:.2}", r.eta_overall),
                format!("{:.2}", r.eta_alg),
                format!("{:.2}", r.eta_impl),
            ]
        })
        .collect();
    args.table(
        "Table 3a: efficiency decomposition (ASCI Red model, 2.8M vertices)",
        &[
            "Procs",
            "Its",
            "Time",
            "Speedup",
            "eta_overall",
            "eta_alg",
            "eta_impl",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper: its 22/24/26/27/29; time 2039/1144/638/441/362s; speedup 1.00/1.78/3.20/"
    );
    say!(
        args,
        "4.62/5.63; eta 1.00/0.89/0.80/0.77/0.70 = alg 1.00/0.92/0.85/0.81/0.76 x impl ~0.93-0.97."
    );

    // Table 3b is read back from the reports' simulated span trees, not the
    // model points: what you see is exactly what `--json` serializes.
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let time = r.metric("time_s").unwrap();
            let pct = |path: &str| 100.0 * r.span(path).map_or(0.0, |s| s.total_s) / time;
            vec![
                r.metric("nprocs").unwrap().to_string(),
                format!("{:.0}", pct("sim/reduction")),
                format!("{:.0}", pct("sim/implicit_sync")),
                format!("{:.0}", pct("sim/scatter")),
                format!(
                    "{:.1}",
                    r.span("sim")
                        .and_then(|s| s.counter("bytes_sent"))
                        .unwrap_or(0.0)
                        / 1e9
                ),
                format!(
                    "{:.1}",
                    r.metric("effective_bandwidth").unwrap_or(0.0) / 1e6
                ),
            ]
        })
        .collect();
    args.table(
        "Table 3b: percent times and scatter scalability",
        &[
            "Procs",
            "Reductions %",
            "Impl. sync %",
            "Scatters %",
            "GB/step",
            "Eff. BW (MB/s/node)",
        ],
        &rows,
    );
    say!(
        args,
        "\nPaper: reductions 5/3/3/3/3%; implicit sync 4/6/7/8/10%; scatters 3/4/5/5/6%;"
    );
    say!(
        args,
        "data 2.0/2.8/4.0/4.6/5.3 GB; effective bandwidth 3.9/4.2/3.4/4.2/4.2 MB/s."
    );

    // Summary report: the largest-proc-count report, annotated with the
    // efficiency decomposition of the whole series.
    let mut summary = reports.last().expect("non-empty series").clone();
    for r in &eff {
        summary.push_metric(format!("eta_overall_p{}", r.nprocs), r.eta_overall);
        summary.push_metric(format!("eta_alg_p{}", r.nprocs), r.eta_alg);
        summary.push_metric(format!("eta_impl_p{}", r.nprocs), r.eta_impl);
    }
    summary.into()
}
