//! **Table 4**: the additive-Schwarz design space — subdomain overlap
//! {0, 1, 2} x ILU fill level {0, 1, 2} x processor count {16, 32, 64} —
//! measuring execution time and total linear iterations.
//!
//! The preconditioner mathematics (and hence iteration counts) run for real
//! on a scaled mesh; times are real sequential work divided across the
//! notional processors plus the machine model's communication terms.

use crate::{representative_jacobian, say, BenchArgs, Experiment, RunOutcome};
use fun3d_euler::model::FlowModel;
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::AdditiveSchwarz;
use fun3d_sparse::ilu::IluOptions;
use fun3d_sparse::layout::FieldLayout;

/// `table4` as a harness experiment.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }
    fn description(&self) -> &'static str {
        "additive-Schwarz overlap x ILU fill x processor-count design space"
    }
    fn default_scale(&self) -> f64 {
        0.06
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Table 4 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Medium);
    let mesh = spec.build();
    let ncomp = 4usize;
    say!(
        args,
        "Table 4 regenerator: {} vertices (paper: 357,900; scale {:.2}), GMRES(20), RASM",
        mesh.nverts(),
        args.scale
    );

    let jac = representative_jacobian(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        50.0,
    );
    let n = jac.nrows();
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::asci_red();

    let opts = GmresOptions {
        restart: 20,
        rtol: 1e-6,
        max_iters: 6000,
        ..Default::default()
    };

    let mut perf = fun3d_telemetry::report::PerfReport::new("table4")
        .with_meta("machine", "asci_red")
        .with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    for fill in [0usize, 1, 2] {
        let mut rows = Vec::new();
        for &p in &[16usize, 32, 64] {
            let part = partition_kway(&graph, p, 7);
            let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); p];
            for (v, &pp) in part.part.iter().enumerate() {
                for c in 0..ncomp {
                    owned_sets[pp as usize].push(v * ncomp + c);
                }
            }
            let mut cells = Vec::new();
            for overlap in [0usize, 1, 2] {
                let ilu = IluOptions::with_fill(fill);
                let t0 = std::time::Instant::now();
                let pc = AdditiveSchwarz::new(&jac, &owned_sets, overlap, &ilu, true).unwrap();
                let setup_time = t0.elapsed().as_secs_f64();
                let mut x = vec![0.0; n];
                let t0 = std::time::Instant::now();
                let res = gmres(&CsrOperator::new(&jac), &pc, &rhs, &mut x, &opts);
                let solve_time = t0.elapsed().as_secs_f64();
                assert!(res.converged, "p={p} fill={fill} ov={overlap}: {res:?}");
                // Model time: the sequential work done here is (nearly)
                // perfectly divisible across p processors; add the per-
                // iteration communication of the overlap variant (RASM has
                // one ghost exchange per application; overlap multiplies the
                // exchanged volume and the setup traffic).
                let comm_per_it = 6.0 * machine.net_latency_s * (1.0 + overlap as f64);
                let t = (setup_time + solve_time) / p as f64 + res.iterations as f64 * comm_per_it;
                perf.push_metric(format!("time_f{fill}_p{p}_ov{overlap}"), t);
                perf.push_metric(
                    format!("its_f{fill}_p{p}_ov{overlap}"),
                    res.iterations as f64,
                );
                cells.push((t, res.iterations));
            }
            let best = cells.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
            let fmt_cell = |(t, its): (f64, usize)| {
                let star = if t == best { "*" } else { "" };
                (format!("{t:.2}s{star}"), its.to_string())
            };
            let c: Vec<(String, String)> = cells.into_iter().map(fmt_cell).collect();
            rows.push(vec![
                p.to_string(),
                c[0].0.clone(),
                c[0].1.clone(),
                c[1].0.clone(),
                c[1].1.clone(),
                c[2].0.clone(),
                c[2].1.clone(),
            ]);
        }
        args.table(
            &format!("Table 4: ILU({fill}) in each subdomain (RASM; * = best time in row)"),
            &[
                "Procs",
                "Time ov=0",
                "Its ov=0",
                "Time ov=1",
                "Its ov=1",
                "Time ov=2",
                "Its ov=2",
            ],
            &rows,
        );
    }
    say!(
        args,
        "\nPaper shape to check: iterations fall with overlap and with fill; time per"
    );
    say!(
        args,
        "iteration rises with both; zero overlap wins at the larger processor counts,"
    );
    say!(
        args,
        "and ILU(1) gives the best overall times (the paper's new default)."
    );
    perf.into()
}
