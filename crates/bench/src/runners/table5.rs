//! **Table 5**: using a node's second processor on the flux evaluation
//! phase — shared-memory threads (OpenMP analogue) vs a second MPI process
//! per node.
//!
//! Two things are *measured* on the host: the real speedup of the edge-loop
//! flux kernel with a 2-thread team using the paper's private-array + gather
//! reduction, and the same work split as two subdomain "processes" (cut
//! edges duplicated — the redundant work that grows with subdomain count).
//! The machine-model extrapolation then reproduces the paper's node counts.

use crate::{perturbed_state, say, time_median, BenchArgs, Experiment, RunOutcome};
use fun3d_comm::smp::ThreadTeam;
use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::generator::MeshFamily;
use fun3d_partition::partition_kway;
use fun3d_sparse::layout::FieldLayout;

/// `table5` as a harness experiment.
pub struct Table5;

impl Experiment for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }
    fn description(&self) -> &'static str {
        "hybrid MPI/OpenMP vs pure MPI on the flux phase"
    }
    fn default_scale(&self) -> f64 {
        0.02
    }
    fn run(&self, args: &BenchArgs) -> RunOutcome {
        run(args)
    }
}

/// Regenerate Table 5 once.
pub fn run(args: &BenchArgs) -> RunOutcome {
    let spec = args.family_spec(MeshFamily::Large);
    let mesh = spec.build();
    say!(
        args,
        "Table 5 regenerator: {} vertices (paper: 2.8M; scale {:.3}), flux phase only",
        mesh.nverts(),
        args.scale
    );
    let disc = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let q = perturbed_state(&disc, 0.01);
    let nedges = mesh.nedges();
    let n = disc.nunknowns();

    // --- Real measurement: 1 thread ---
    let mut res = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
    let t1 = time_median(5, || {
        res.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
        disc.edge_flux_residual(&q, &mut res, 0..nedges);
    });

    // --- Real measurement: 2 threads, private arrays + gather (OpenMP) ---
    let team = ThreadTeam::new(2);
    let mut result = vec![0.0; n];
    let t2_omp = time_median(5, || {
        result.iter_mut().for_each(|x| *x = 0.0);
        team.parallel_for_private_reduce(nedges, &mut result, |_, range, private| {
            let mut local = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
            disc.edge_flux_residual(&q, &mut local, range);
            private.copy_from_slice(local.as_slice());
        });
    });

    // --- Real measurement: 2 "MPI processes" (edge split by subdomain,
    // cut edges computed by both sides — the duplicated interface work) ---
    let graph = mesh.vertex_graph();
    let part2 = partition_kway(&graph, 2, 1);
    // Edge lists per process: all edges with at least one owned endpoint.
    let mut proc_edges: Vec<Vec<usize>> = vec![Vec::new(); 2];
    let mut duplicated = 0usize;
    for (e, &[a, b]) in mesh.edges().iter().enumerate() {
        let (pa, pb) = (part2.part[a as usize], part2.part[b as usize]);
        proc_edges[pa as usize].push(e);
        if pb != pa {
            proc_edges[pb as usize].push(e);
            duplicated += 1;
        }
    }
    let nverts = mesh.nverts();
    let t2_mpi = time_median(5, || {
        std::thread::scope(|scope| {
            for edges in &proc_edges {
                let disc = &disc;
                let q = &q;
                scope.spawn(move || {
                    let mut local = FieldVec::zeros(nverts, 4, FieldLayout::Interlaced);
                    // Runs of consecutive edge indices are batched so the
                    // kernel call overhead stays negligible.
                    let mut i = 0usize;
                    while i < edges.len() {
                        let start = edges[i];
                        let mut j = i + 1;
                        while j < edges.len() && edges[j] == edges[j - 1] + 1 {
                            j += 1;
                        }
                        disc.edge_flux_residual(q, &mut local, start..edges[j - 1] + 1);
                        i = j;
                    }
                    std::hint::black_box(&local);
                });
            }
        });
    });
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    say!(
        args,
        "\nHost measurements of one flux evaluation ({host_cpus} host CPU(s) available —"
    );
    say!(
        args,
        "with a single CPU the threaded variants cannot show real speedup; the"
    );
    say!(
        args,
        "measurement then only exposes the private-array/duplication overheads):"
    );
    say!(args, "  1 thread:            {:.1} ms", t1 * 1e3);
    say!(
        args,
        "  2 threads (hybrid):  {:.1} ms  (speedup {:.2}x; includes the private-array gather)",
        t2_omp * 1e3,
        t1 / t2_omp
    );
    say!(
        args,
        "  2 processes (MPI):   {:.1} ms  (speedup {:.2}x; {:.1}% of edges duplicated at the cut)",
        t2_mpi * 1e3,
        t1 / t2_mpi,
        100.0 * duplicated as f64 / nedges as f64
    );

    // --- Extrapolation to the paper's node counts on the Red model ---
    // Flux work per node: edges/nodes; MPI-2 doubles the subdomain count,
    // which multiplies the duplicated interface work (surface/volume law);
    // the hybrid pays the gather (one extra residual-array sweep per eval).
    let machine = MachineSpec::asci_red();
    let shape_edges = 7.0 * 2.8e6f64;
    let flux_flops_per_edge = 400.0;
    let eff = 0.13;
    // Interface fraction at s subdomains of N vertices (edges cut / total).
    let cut_fraction =
        |s: f64| (2.7 * s.powf(0.47) * 2.8e6f64.powf(2.0 / 3.0) / shape_edges).min(0.5);
    let mut rows = Vec::new();
    for &nodes in &[256usize, 2560, 3072] {
        let per_cpu_flops = |subdomains: f64, cpus: f64| {
            shape_edges * (1.0 + cut_fraction(subdomains)) * flux_flops_per_edge / cpus
        };
        let peak = machine.peak_flops_per_cpu() * eff;
        let t_1 = per_cpu_flops(nodes as f64, nodes as f64) / peak;
        // Hybrid: 2 threads split the node's edges; gather adds a residual
        // sweep (bandwidth bound) per evaluation.
        let gather = 2.8e6 * 4.0 * 8.0 * 2.0 / nodes as f64 / machine.stream_bytes_per_s;
        let t_omp = per_cpu_flops(nodes as f64, 2.0 * nodes as f64) / peak + gather;
        // MPI x2: twice the subdomains, so (a) more duplicated interface
        // work per evaluation and (b) more evaluations overall, because the
        // convergence of the NKS iteration degrades with subdomain count
        // (the its(p) growth law of Table 3).
        let its_growth = 2.0f64.powf(0.133);
        let t_mpi = per_cpu_flops(2.0 * nodes as f64, 2.0 * nodes as f64) / peak * its_growth;
        // The paper's numbers cover all function evaluations of the run;
        // calibrate the evaluation count to the 456 s MPI-1p figure at 256.
        let evals = 456.0 / (per_cpu_flops(256.0, 256.0) / peak);
        rows.push(vec![
            nodes.to_string(),
            format!("{:.0}s", evals * t_1),
            format!("{:.0}s", evals * t_omp),
            format!("{:.0}s", evals * t_1),
            format!("{:.0}s", evals * t_mpi),
        ]);
    }
    args.table(
        "Table 5: flux-evaluation time, hybrid MPI/OpenMP vs pure MPI (ASCI Red model)",
        &["Nodes", "Hybrid 1t", "Hybrid 2t", "MPI 1p", "MPI 2p"],
        &rows,
    );
    say!(
        args,
        "\nPaper: 256 nodes: 483/261 vs 456/258 (MPI slightly ahead); 2560: 76/39 vs 72/45"
    );
    say!(
        args,
        "and 3072: 66/33 vs 62/40 (hybrid ahead — doubling subdomains costs more at scale)."
    );

    let mut perf = fun3d_telemetry::report::PerfReport::new("table5")
        .with_meta("machine", "asci_red")
        .with_meta("nverts", mesh.nverts().to_string());
    args.annotate(&mut perf);
    perf.push_metric("flux_1thread_s", t1);
    perf.push_metric("flux_2thread_omp_s", t2_omp);
    perf.push_metric("flux_2proc_mpi_s", t2_mpi);
    perf.push_metric("omp_speedup", t1 / t2_omp);
    perf.push_metric("mpi_speedup", t1 / t2_mpi);
    perf.push_metric("cut_edge_fraction", duplicated as f64 / nedges as f64);
    perf.into()
}
