//! Per-rank simulated time with the paper's phase taxonomy.
//!
//! Table 3 decomposes parallel overhead into three categories: *global
//! reductions*, *implicit synchronizations* (waits caused by load imbalance,
//! surfacing at whatever communication event comes next), and *ghost point
//! scatters* (the nearest-neighbor transfer itself).  [`SimClock`] advances a
//! per-rank virtual clock through exactly these categories so the
//! decomposition can be reported for any run.

use fun3d_memmodel::machine::MachineSpec;
use fun3d_telemetry::{Registry, TimeDomain};

/// Accumulated simulated time by category (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Local computation (roofline time).
    pub compute: f64,
    /// Ghost-point scatter transfer time (latency + volume / bandwidth).
    pub scatter: f64,
    /// Global reduction tree time.
    pub reduction: f64,
    /// Wait time at synchronization points due to imbalance — the paper's
    /// "implicit synchronizations".
    pub implicit_sync: f64,
}

/// Overhead categories as percentages of total simulated time, in Table 3's
/// taxonomy.  Named replacement for the old bare `(f64, f64, f64)` tuple,
/// whose field order was easy to get wrong at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadShares {
    /// Global reductions, % of total time.
    pub reductions_pct: f64,
    /// Implicit synchronizations (imbalance waits), % of total time.
    pub implicit_sync_pct: f64,
    /// Ghost-point scatters, % of total time.
    pub scatters_pct: f64,
}

impl OverheadShares {
    /// Sum of all overhead categories (100 − compute share).
    pub fn total_pct(&self) -> f64 {
        self.reductions_pct + self.implicit_sync_pct + self.scatters_pct
    }
}

impl PhaseBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.compute + self.scatter + self.reduction + self.implicit_sync
    }

    /// Percentage of total time spent in each non-compute category, with
    /// Table 3's names attached.
    pub fn overhead_shares(&self) -> OverheadShares {
        let t = self.total();
        if t == 0.0 {
            return OverheadShares::default();
        }
        OverheadShares {
            reductions_pct: 100.0 * self.reduction / t,
            implicit_sync_pct: 100.0 * self.implicit_sync / t,
            scatters_pct: 100.0 * self.scatter / t,
        }
    }

    /// Record this breakdown into a telemetry registry as simulated-time
    /// spans under `sim/`, so modeled runs share the measured-run schema.
    pub fn ingest_into(&self, reg: &Registry) {
        reg.record_span("sim/compute", TimeDomain::Simulated, self.compute, 1);
        reg.record_span("sim/scatter", TimeDomain::Simulated, self.scatter, 1);
        reg.record_span("sim/reduction", TimeDomain::Simulated, self.reduction, 1);
        reg.record_span(
            "sim/implicit_sync",
            TimeDomain::Simulated,
            self.implicit_sync,
            1,
        );
    }
}

/// A simulated clock tied to a machine model.
#[derive(Debug, Clone)]
pub struct SimClock {
    machine: MachineSpec,
    now: f64,
    breakdown: PhaseBreakdown,
    /// Total bytes this rank sent (Table 3's "total data sent" column).
    pub bytes_sent: f64,
    /// Total flops this rank executed (for Gflop/s reporting).
    pub flops: f64,
}

impl SimClock {
    /// A clock at time zero on the given machine.
    pub fn new(machine: MachineSpec) -> Self {
        Self {
            machine,
            now: 0.0,
            breakdown: PhaseBreakdown::default(),
            bytes_sent: 0.0,
            flops: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Accumulated phase breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }

    /// Advance through a compute phase: `flops` floating-point operations
    /// touching `bytes` of memory, at the given scheduling efficiency.
    pub fn compute(&mut self, flops: f64, bytes: f64, efficiency: f64) {
        let dt = self.machine.compute_time(flops, bytes, efficiency);
        self.now += dt;
        self.breakdown.compute += dt;
        self.flops += flops;
    }

    /// Record the receipt of a message of `bytes` sent at simulated time
    /// `sent_at`.  Wait (sender later than us) is booked as implicit
    /// synchronization; the transfer itself as scatter time.
    pub fn receive_message(&mut self, bytes: f64, sent_at: f64) {
        if sent_at > self.now {
            self.breakdown.implicit_sync += sent_at - self.now;
            self.now = sent_at;
        }
        let transfer = self.machine.message_time(bytes);
        self.now += transfer;
        self.breakdown.scatter += transfer;
    }

    /// Record the send side of a message (sender does not block; only the
    /// injection overhead, modeled as the latency term, is charged).
    pub fn send_message(&mut self, bytes: f64) {
        self.bytes_sent += bytes;
        let dt = self.machine.net_latency_s;
        self.now += dt;
        self.breakdown.scatter += dt;
    }

    /// Synchronize with a global reduction over `p` ranks whose maximum
    /// clock is `t_max`: imbalance wait plus the log-tree reduction term.
    pub fn allreduce_sync(&mut self, p: usize, t_max: f64) {
        if t_max > self.now {
            self.breakdown.implicit_sync += t_max - self.now;
            self.now = t_max;
        }
        let dt = self.machine.allreduce_time(p);
        self.now += dt;
        self.breakdown.reduction += dt;
    }

    /// Record this clock's accumulated state (phase breakdown plus data
    /// volume / flop counters) into a telemetry registry as simulated time.
    pub fn ingest_into(&self, reg: &Registry) {
        self.breakdown.ingest_into(reg);
        reg.counter_at("sim", TimeDomain::Simulated, "bytes_sent", self.bytes_sent);
        reg.counter_at("sim", TimeDomain::Simulated, "flops", self.flops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new(MachineSpec::asci_red())
    }

    #[test]
    fn compute_advances_clock() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        assert!((c.now() - 1.0).abs() < 1e-12);
        assert!((c.breakdown().compute - 1.0).abs() < 1e-12);
        assert_eq!(c.flops, 333e6);
    }

    #[test]
    fn late_sender_books_implicit_sync() {
        let mut c = clock();
        c.receive_message(1000.0, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.5).abs() < 1e-12);
        assert!(b.scatter > 0.0);
        assert!(c.now() > 0.5);
    }

    #[test]
    fn early_sender_books_no_wait() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0); // now = 1.0
        c.receive_message(1000.0, 0.2);
        assert_eq!(c.breakdown().implicit_sync, 0.0);
    }

    #[test]
    fn allreduce_waits_to_max() {
        let mut c = clock();
        c.compute(33.3e6, 0.0, 1.0); // now = 0.1
        c.allreduce_sync(1024, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.4).abs() < 1e-12);
        assert!(b.reduction > 0.0);
    }

    #[test]
    fn shares_sum_to_overheads() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.allreduce_sync(128, 2.0);
        let s = c.breakdown().overhead_shares();
        assert!(s.reductions_pct > 0.0 && s.implicit_sync_pct > 0.0);
        assert_eq!(s.scatters_pct, 0.0);
        assert!(s.total_pct() < 100.0);
    }

    #[test]
    fn overhead_shares_sum_to_total_pct() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.allreduce_sync(128, 2.0);
        let s = c.breakdown().overhead_shares();
        assert!(
            (s.reductions_pct + s.implicit_sync_pct + s.scatters_pct - s.total_pct()).abs() < 1e-12
        );
    }

    #[test]
    fn ingest_into_registry_as_simulated_time() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.send_message(4096.0);
        c.allreduce_sync(16, 2.0);
        let reg = fun3d_telemetry::Registry::enabled(0);
        c.ingest_into(&reg);
        let snap = reg.snapshot();
        let compute = snap.span("sim/compute").unwrap();
        assert_eq!(compute.domain, fun3d_telemetry::TimeDomain::Simulated);
        assert!((compute.total_s - c.breakdown().compute).abs() < 1e-15);
        assert!(
            (snap.span("sim/implicit_sync").unwrap().total_s - c.breakdown().implicit_sync).abs()
                < 1e-15
        );
        assert_eq!(
            snap.span("sim").unwrap().counter("bytes_sent"),
            Some(4096.0)
        );
        assert_eq!(snap.span("sim").unwrap().counter("flops"), Some(333e6));
    }

    #[test]
    fn send_accumulates_bytes() {
        let mut c = clock();
        c.send_message(1024.0);
        c.send_message(1024.0);
        assert_eq!(c.bytes_sent, 2048.0);
    }
}
