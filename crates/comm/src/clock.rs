//! Per-rank simulated time with the paper's phase taxonomy.
//!
//! Table 3 decomposes parallel overhead into three categories: *global
//! reductions*, *implicit synchronizations* (waits caused by load imbalance,
//! surfacing at whatever communication event comes next), and *ghost point
//! scatters* (the nearest-neighbor transfer itself).  [`SimClock`] advances a
//! per-rank virtual clock through exactly these categories so the
//! decomposition can be reported for any run.

use fun3d_memmodel::machine::MachineSpec;

/// Accumulated simulated time by category (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Local computation (roofline time).
    pub compute: f64,
    /// Ghost-point scatter transfer time (latency + volume / bandwidth).
    pub scatter: f64,
    /// Global reduction tree time.
    pub reduction: f64,
    /// Wait time at synchronization points due to imbalance — the paper's
    /// "implicit synchronizations".
    pub implicit_sync: f64,
}

impl PhaseBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.compute + self.scatter + self.reduction + self.implicit_sync
    }

    /// Percentage of total spent in each non-compute category, in the order
    /// Table 3 reports them: (reductions, implicit syncs, scatters).
    pub fn overhead_percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.reduction / t,
            100.0 * self.implicit_sync / t,
            100.0 * self.scatter / t,
        )
    }
}

/// A simulated clock tied to a machine model.
#[derive(Debug, Clone)]
pub struct SimClock {
    machine: MachineSpec,
    now: f64,
    breakdown: PhaseBreakdown,
    /// Total bytes this rank sent (Table 3's "total data sent" column).
    pub bytes_sent: f64,
    /// Total flops this rank executed (for Gflop/s reporting).
    pub flops: f64,
}

impl SimClock {
    /// A clock at time zero on the given machine.
    pub fn new(machine: MachineSpec) -> Self {
        Self {
            machine,
            now: 0.0,
            breakdown: PhaseBreakdown::default(),
            bytes_sent: 0.0,
            flops: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Accumulated phase breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }

    /// Advance through a compute phase: `flops` floating-point operations
    /// touching `bytes` of memory, at the given scheduling efficiency.
    pub fn compute(&mut self, flops: f64, bytes: f64, efficiency: f64) {
        let dt = self.machine.compute_time(flops, bytes, efficiency);
        self.now += dt;
        self.breakdown.compute += dt;
        self.flops += flops;
    }

    /// Record the receipt of a message of `bytes` sent at simulated time
    /// `sent_at`.  Wait (sender later than us) is booked as implicit
    /// synchronization; the transfer itself as scatter time.
    pub fn receive_message(&mut self, bytes: f64, sent_at: f64) {
        if sent_at > self.now {
            self.breakdown.implicit_sync += sent_at - self.now;
            self.now = sent_at;
        }
        let transfer = self.machine.message_time(bytes);
        self.now += transfer;
        self.breakdown.scatter += transfer;
    }

    /// Record the send side of a message (sender does not block; only the
    /// injection overhead, modeled as the latency term, is charged).
    pub fn send_message(&mut self, bytes: f64) {
        self.bytes_sent += bytes;
        let dt = self.machine.net_latency_s;
        self.now += dt;
        self.breakdown.scatter += dt;
    }

    /// Synchronize with a global reduction over `p` ranks whose maximum
    /// clock is `t_max`: imbalance wait plus the log-tree reduction term.
    pub fn allreduce_sync(&mut self, p: usize, t_max: f64) {
        if t_max > self.now {
            self.breakdown.implicit_sync += t_max - self.now;
            self.now = t_max;
        }
        let dt = self.machine.allreduce_time(p);
        self.now += dt;
        self.breakdown.reduction += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new(MachineSpec::asci_red())
    }

    #[test]
    fn compute_advances_clock() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        assert!((c.now() - 1.0).abs() < 1e-12);
        assert!((c.breakdown().compute - 1.0).abs() < 1e-12);
        assert_eq!(c.flops, 333e6);
    }

    #[test]
    fn late_sender_books_implicit_sync() {
        let mut c = clock();
        c.receive_message(1000.0, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.5).abs() < 1e-12);
        assert!(b.scatter > 0.0);
        assert!(c.now() > 0.5);
    }

    #[test]
    fn early_sender_books_no_wait() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0); // now = 1.0
        c.receive_message(1000.0, 0.2);
        assert_eq!(c.breakdown().implicit_sync, 0.0);
    }

    #[test]
    fn allreduce_waits_to_max() {
        let mut c = clock();
        c.compute(33.3e6, 0.0, 1.0); // now = 0.1
        c.allreduce_sync(1024, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.4).abs() < 1e-12);
        assert!(b.reduction > 0.0);
    }

    #[test]
    fn percentages_sum_to_overheads() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.allreduce_sync(128, 2.0);
        let (r, s, g) = c.breakdown().overhead_percentages();
        assert!(r > 0.0 && s > 0.0);
        assert_eq!(g, 0.0);
        assert!(r + s < 100.0);
    }

    #[test]
    fn send_accumulates_bytes() {
        let mut c = clock();
        c.send_message(1024.0);
        c.send_message(1024.0);
        assert_eq!(c.bytes_sent, 2048.0);
    }
}
