//! Per-rank simulated time with the paper's phase taxonomy.
//!
//! Table 3 decomposes parallel overhead into three categories: *global
//! reductions*, *implicit synchronizations* (waits caused by load imbalance,
//! surfacing at whatever communication event comes next), and *ghost point
//! scatters* (the nearest-neighbor transfer itself).  [`SimClock`] advances a
//! per-rank virtual clock through exactly these categories so the
//! decomposition can be reported for any run.

use crate::ranktrace::{RankTracer, TracePhase};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_telemetry::{Registry, TimeDomain};

/// Accumulated simulated time by category (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Local computation (roofline time).
    pub compute: f64,
    /// Ghost-point scatter transfer time (latency + volume / bandwidth).
    pub scatter: f64,
    /// Global reduction tree time.
    pub reduction: f64,
    /// Wait time at synchronization points due to imbalance — the paper's
    /// "implicit synchronizations".
    pub implicit_sync: f64,
}

/// Overhead categories as percentages of total simulated time, in Table 3's
/// taxonomy.  Named replacement for the old bare `(f64, f64, f64)` tuple,
/// whose field order was easy to get wrong at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadShares {
    /// Global reductions, % of total time.
    pub reductions_pct: f64,
    /// Implicit synchronizations (imbalance waits), % of total time.
    pub implicit_sync_pct: f64,
    /// Ghost-point scatters, % of total time.
    pub scatters_pct: f64,
}

impl OverheadShares {
    /// Sum of all overhead categories (100 − compute share).
    pub fn total_pct(&self) -> f64 {
        self.reductions_pct + self.implicit_sync_pct + self.scatters_pct
    }
}

impl PhaseBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.compute + self.scatter + self.reduction + self.implicit_sync
    }

    /// Percentage of total time spent in each non-compute category, with
    /// Table 3's names attached.
    pub fn overhead_shares(&self) -> OverheadShares {
        let t = self.total();
        if t == 0.0 {
            return OverheadShares::default();
        }
        OverheadShares {
            reductions_pct: 100.0 * self.reduction / t,
            implicit_sync_pct: 100.0 * self.implicit_sync / t,
            scatters_pct: 100.0 * self.scatter / t,
        }
    }

    /// Record this breakdown into a telemetry registry as simulated-time
    /// spans under `sim/`, so modeled runs share the measured-run schema.
    pub fn ingest_into(&self, reg: &Registry) {
        reg.record_span("sim/compute", TimeDomain::Simulated, self.compute, 1);
        reg.record_span("sim/scatter", TimeDomain::Simulated, self.scatter, 1);
        reg.record_span("sim/reduction", TimeDomain::Simulated, self.reduction, 1);
        reg.record_span(
            "sim/implicit_sync",
            TimeDomain::Simulated,
            self.implicit_sync,
            1,
        );
    }
}

/// Wait-vs-transfer split of one communication event's simulated cost, as
/// booked by the clock (both in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommCost {
    /// Implicit-synchronization wait (imbalance).
    pub wait_s: f64,
    /// Transfer / reduction time from the machine model.
    pub active_s: f64,
}

/// A simulated clock tied to a machine model.
#[derive(Debug, Clone)]
pub struct SimClock {
    machine: MachineSpec,
    now: f64,
    breakdown: PhaseBreakdown,
    /// Total bytes this rank sent (Table 3's "total data sent" column).
    pub bytes_sent: f64,
    /// Total flops this rank executed (for Gflop/s reporting).
    pub flops: f64,
    /// When tracing, every clock advance also lands on the rank's
    /// simulated-time span timeline.  `None` is the zero-cost default.
    tracer: Option<RankTracer>,
}

impl SimClock {
    /// A clock at time zero on the given machine.
    pub fn new(machine: MachineSpec) -> Self {
        Self {
            machine,
            now: 0.0,
            breakdown: PhaseBreakdown::default(),
            bytes_sent: 0.0,
            flops: 0.0,
            tracer: None,
        }
    }

    /// Attach a per-rank tracer: subsequent advances are mirrored onto the
    /// rank's telemetry timeline as simulated spans.
    pub fn set_tracer(&mut self, tracer: RankTracer) {
        self.tracer = Some(tracer);
    }

    /// Whether a tracer is attached.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Flush any coalesced pending trace interval; call before taking a
    /// telemetry snapshot.
    pub fn flush_trace(&mut self) {
        if let Some(tr) = &mut self.tracer {
            tr.flush();
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Accumulated phase breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }

    /// Advance through a compute phase: `flops` floating-point operations
    /// touching `bytes` of memory, at the given scheduling efficiency.
    pub fn compute(&mut self, flops: f64, bytes: f64, efficiency: f64) {
        let dt = self.machine.compute_time(flops, bytes, efficiency);
        if let Some(tr) = &mut self.tracer {
            tr.compute(self.now, dt);
        }
        self.now += dt;
        self.breakdown.compute += dt;
        self.flops += flops;
    }

    /// Record the receipt of a message of `bytes` sent at simulated time
    /// `sent_at`.  Wait (sender later than us) is booked as implicit
    /// synchronization; the transfer itself as scatter time.  Returns the
    /// wait-vs-transfer split for ledger accounting.
    pub fn receive_message(&mut self, bytes: f64, sent_at: f64) -> CommCost {
        let wait = (sent_at - self.now).max(0.0);
        if wait > 0.0 {
            if let Some(tr) = &mut self.tracer {
                tr.comm(TracePhase::Wait, self.now, wait);
            }
            self.breakdown.implicit_sync += wait;
            self.now = sent_at;
        }
        let transfer = self.machine.message_time(bytes);
        if let Some(tr) = &mut self.tracer {
            tr.comm(TracePhase::Scatter, self.now, transfer);
        }
        self.now += transfer;
        self.breakdown.scatter += transfer;
        CommCost {
            wait_s: wait,
            active_s: transfer,
        }
    }

    /// Record the send side of a message (sender does not block; only the
    /// injection overhead, modeled as the latency term, is charged).
    /// Returns the injection cost for ledger accounting.
    pub fn send_message(&mut self, bytes: f64) -> CommCost {
        self.bytes_sent += bytes;
        let dt = self.machine.net_latency_s;
        if let Some(tr) = &mut self.tracer {
            tr.comm(TracePhase::Scatter, self.now, dt);
        }
        self.now += dt;
        self.breakdown.scatter += dt;
        CommCost {
            wait_s: 0.0,
            active_s: dt,
        }
    }

    /// Synchronize with a global reduction over `p` ranks whose maximum
    /// clock is `t_max`: imbalance wait plus the log-tree reduction term.
    /// Returns the wait-vs-reduction split for ledger accounting.
    pub fn allreduce_sync(&mut self, p: usize, t_max: f64) -> CommCost {
        let wait = (t_max - self.now).max(0.0);
        if wait > 0.0 {
            if let Some(tr) = &mut self.tracer {
                tr.comm(TracePhase::Wait, self.now, wait);
            }
            self.breakdown.implicit_sync += wait;
            self.now = t_max;
        }
        let dt = self.machine.allreduce_time(p);
        if let Some(tr) = &mut self.tracer {
            tr.comm(TracePhase::Reduction, self.now, dt);
        }
        self.now += dt;
        self.breakdown.reduction += dt;
        CommCost {
            wait_s: wait,
            active_s: dt,
        }
    }

    /// Record this clock's accumulated state (phase breakdown plus data
    /// volume / flop counters) into a telemetry registry as simulated time.
    pub fn ingest_into(&self, reg: &Registry) {
        self.breakdown.ingest_into(reg);
        reg.counter_at("sim", TimeDomain::Simulated, "bytes_sent", self.bytes_sent);
        reg.counter_at("sim", TimeDomain::Simulated, "flops", self.flops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new(MachineSpec::asci_red())
    }

    #[test]
    fn compute_advances_clock() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        assert!((c.now() - 1.0).abs() < 1e-12);
        assert!((c.breakdown().compute - 1.0).abs() < 1e-12);
        assert_eq!(c.flops, 333e6);
    }

    #[test]
    fn late_sender_books_implicit_sync() {
        let mut c = clock();
        c.receive_message(1000.0, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.5).abs() < 1e-12);
        assert!(b.scatter > 0.0);
        assert!(c.now() > 0.5);
    }

    #[test]
    fn early_sender_books_no_wait() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0); // now = 1.0
        c.receive_message(1000.0, 0.2);
        assert_eq!(c.breakdown().implicit_sync, 0.0);
    }

    #[test]
    fn allreduce_waits_to_max() {
        let mut c = clock();
        c.compute(33.3e6, 0.0, 1.0); // now = 0.1
        c.allreduce_sync(1024, 0.5);
        let b = c.breakdown();
        assert!((b.implicit_sync - 0.4).abs() < 1e-12);
        assert!(b.reduction > 0.0);
    }

    #[test]
    fn shares_sum_to_overheads() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.allreduce_sync(128, 2.0);
        let s = c.breakdown().overhead_shares();
        assert!(s.reductions_pct > 0.0 && s.implicit_sync_pct > 0.0);
        assert_eq!(s.scatters_pct, 0.0);
        assert!(s.total_pct() < 100.0);
    }

    #[test]
    fn overhead_shares_sum_to_total_pct() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.allreduce_sync(128, 2.0);
        let s = c.breakdown().overhead_shares();
        assert!(
            (s.reductions_pct + s.implicit_sync_pct + s.scatters_pct - s.total_pct()).abs() < 1e-12
        );
    }

    #[test]
    fn ingest_into_registry_as_simulated_time() {
        let mut c = clock();
        c.compute(333e6, 0.0, 1.0);
        c.send_message(4096.0);
        c.allreduce_sync(16, 2.0);
        let reg = fun3d_telemetry::Registry::enabled(0);
        c.ingest_into(&reg);
        let snap = reg.snapshot();
        let compute = snap.span("sim/compute").unwrap();
        assert_eq!(compute.domain, fun3d_telemetry::TimeDomain::Simulated);
        assert!((compute.total_s - c.breakdown().compute).abs() < 1e-15);
        assert!(
            (snap.span("sim/implicit_sync").unwrap().total_s - c.breakdown().implicit_sync).abs()
                < 1e-15
        );
        assert_eq!(
            snap.span("sim").unwrap().counter("bytes_sent"),
            Some(4096.0)
        );
        assert_eq!(snap.span("sim").unwrap().counter("flops"), Some(333e6));
    }

    #[test]
    fn comm_costs_match_breakdown_deltas() {
        let mut c = clock();
        c.compute(33.3e6, 0.0, 1.0); // now = 0.1
        let recv = c.receive_message(8000.0, 0.5);
        assert!((recv.wait_s - 0.4).abs() < 1e-12);
        assert!((recv.active_s - c.breakdown().scatter).abs() < 1e-15);
        let red = c.allreduce_sync(64, c.now() + 0.25);
        assert!((red.wait_s - 0.25).abs() < 1e-12);
        assert!((red.active_s - c.breakdown().reduction).abs() < 1e-15);
        let send = c.send_message(1024.0);
        assert_eq!(send.wait_s, 0.0);
        assert!(send.active_s > 0.0);
        assert!((c.breakdown().total() - c.now()).abs() < 1e-12);
    }

    #[test]
    fn traced_clock_mirrors_phases_onto_timeline() {
        use crate::ranktrace::RankTracer;
        let reg = fun3d_telemetry::Registry::enabled(1);
        let mut c = clock();
        c.set_tracer(RankTracer::new(reg.clone(), 1));
        assert!(c.trace_enabled());
        c.compute(333e6, 0.0, 1.0);
        c.receive_message(8000.0, 2.0); // waits 1.0, then transfer
        c.allreduce_sync(16, c.now());
        c.flush_trace();
        let snap = reg.snapshot();
        let b = c.breakdown();
        for (path, want) in [
            ("rank1/compute", b.compute),
            ("rank1/scatter", b.scatter),
            ("rank1/reduction", b.reduction),
            ("rank1/wait", b.implicit_sync),
        ] {
            let row = snap.span(path).unwrap_or_else(|| panic!("missing {path}"));
            assert!(
                (row.total_s - want).abs() < 1e-12,
                "{path}: {} != {want}",
                row.total_s
            );
        }
        // Untraced clock with the same program books identically.
        let mut c2 = clock();
        c2.compute(333e6, 0.0, 1.0);
        c2.receive_message(8000.0, 2.0);
        c2.allreduce_sync(16, c2.now());
        assert_eq!(c2.now(), c.now());
        assert_eq!(c2.breakdown(), c.breakdown());
    }

    #[test]
    fn send_accumulates_bytes() {
        let mut c = clock();
        c.send_message(1024.0);
        c.send_message(1024.0);
        assert_eq!(c.bytes_sent, 2048.0);
    }
}
