//! Message-passing substrate for the parallel experiments.
//!
//! The paper's runs used MPI on up to 3072 nodes of ASCI Red.  This crate
//! provides the equivalent programming model at laptop scale:
//!
//! * [`world`] — an MPI-like communicator: ranks run as threads, exchange
//!   typed messages over channels, and synchronize through deterministic
//!   tree collectives (`allreduce`, `barrier`).
//! * [`clock`] — each rank carries a *simulated clock* advanced by a
//!   [`fun3d_memmodel::machine::MachineSpec`]: compute phases advance it by
//!   roofline time, messages by latency + volume / bandwidth, reductions by
//!   a log-tree term, and every synchronization records the *wait* caused by
//!   load imbalance.  These are exactly the categories of Table 3
//!   (global reductions / implicit synchronizations / ghost point scatters).
//! * [`scatter`] — PETSc `VecScatter` analogue: the ghost-point exchange
//!   pattern built from a mesh partition, executed with real data movement
//!   and simulated-time accounting.
//! * [`smp`] — a shared-memory thread team (the OpenMP analogue of Section
//!   2.5 / Table 5) with the private-array + gather reduction the paper
//!   describes.
//! * [`ranktrace`] — per-rank distributed tracing: message ledgers, span
//!   timelines in simulated time (one chrome-trace lane per rank), and a
//!   critical-path walk attributing end-to-end time to compute / exchange /
//!   wait across the rank×op DAG.

pub mod clock;
pub mod ranktrace;
pub mod scatter;
pub mod smp;
pub mod world;

pub use clock::{CommCost, OverheadShares, PhaseBreakdown, SimClock};
pub use ranktrace::{critical_path, CriticalPath, LedgerOp, MessageLedger, RankTracer};
pub use scatter::ScatterPlan;
pub use smp::ThreadTeam;
pub use world::{run_world, run_world_instrumented, run_world_with, Rank, WorldOptions};
