//! `fun3d-ranktrace`: per-rank distributed tracing and communication
//! accounting for simulated multi-rank runs.
//!
//! The paper's parallel analysis (Tables 3–5) is a per-rank story: ghost
//! exchange volume, synchronization waits, and the η_alg · η_impl efficiency
//! split.  This module gives each simulated rank
//!
//! * a [`RankTracer`]: a span timeline on the rank's telemetry registry in
//!   simulated time, one lane per rank in the chrome trace.  Rank-labelled
//!   span paths (`rank3/compute`, ...) are interned **once per (rank,
//!   label)** at construction — the per-call path is a `&str` borrow, never
//!   a `format!`, keeping the hot path allocation-free (the same discipline
//!   as `Registry`'s `bump_counter`);
//! * a [`MessageLedger`]: one [`LedgerOp`] per ghost-exchange message and
//!   collective — bytes, peer rank, simulated cost from the machine model,
//!   and the wait-vs-transfer split the clock computed;
//! * a [`critical_path`] walk over the rank×op DAG the ledgers encode,
//!   attributing end-to-end simulated time to compute / exchange / wait.
//!
//! Both tracer and ledger are disabled by default; an untraced world runs
//! the identical arithmetic (tracing never feeds back into the clock), so
//! results are bitwise-identical with tracing off.

use fun3d_telemetry::{Registry, TimeDomain};

/// The four timeline lanes a rank's simulated time divides into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Local computation (roofline time).
    Compute,
    /// Ghost-point scatter transfer / injection.
    Scatter,
    /// Global reduction tree time.
    Reduction,
    /// Implicit-synchronization wait (imbalance).
    Wait,
}

/// Per-rank span paths, formatted once at construction (satellite: no
/// per-call `format!` in the span path).
#[derive(Debug, Clone)]
struct RankPaths {
    compute: String,
    scatter: String,
    reduction: String,
    wait: String,
}

impl RankPaths {
    fn new(rank: usize) -> Self {
        Self {
            compute: format!("rank{rank}/compute"),
            scatter: format!("rank{rank}/scatter"),
            reduction: format!("rank{rank}/reduction"),
            wait: format!("rank{rank}/wait"),
        }
    }

    fn path(&self, phase: TracePhase) -> &str {
        match phase {
            TracePhase::Compute => &self.compute,
            TracePhase::Scatter => &self.scatter,
            TracePhase::Reduction => &self.reduction,
            TracePhase::Wait => &self.wait,
        }
    }
}

/// Places a rank's simulated phases on its telemetry timeline.
///
/// Adjacent compute intervals are coalesced (kernels advance the clock many
/// times between communication events); communication phases flush the
/// pending compute interval and record immediately.
#[derive(Debug, Clone)]
pub struct RankTracer {
    reg: Registry,
    paths: RankPaths,
    /// Coalesced compute interval not yet recorded: (start, end).
    pending: Option<(f64, f64)>,
}

impl RankTracer {
    /// A tracer recording rank-labelled simulated spans into `reg`.
    pub fn new(reg: Registry, rank: usize) -> Self {
        Self {
            reg,
            paths: RankPaths::new(rank),
            pending: None,
        }
    }

    /// Record a compute advance `[t0, t0+dt]`, merging with the pending
    /// interval when contiguous.
    pub fn compute(&mut self, t0: f64, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        match &mut self.pending {
            Some((_, end)) if *end == t0 => *end = t0 + dt,
            _ => {
                self.flush();
                self.pending = Some((t0, t0 + dt));
            }
        }
    }

    /// Record a communication-phase interval `[t0, t0+dt]`.
    pub fn comm(&mut self, phase: TracePhase, t0: f64, dt: f64) {
        self.flush();
        if dt <= 0.0 {
            return;
        }
        self.reg
            .record_event(self.paths.path(phase), TimeDomain::Simulated, t0, dt);
    }

    /// Flush the pending coalesced compute interval, if any.  Call before
    /// snapshotting the registry.
    pub fn flush(&mut self) {
        if let Some((start, end)) = self.pending.take() {
            self.reg.record_event(
                &self.paths.compute,
                TimeDomain::Simulated,
                start,
                end - start,
            );
        }
    }
}

/// One communication operation on a rank's simulated timeline.  Timestamps
/// are simulated seconds; every op occupies `[t_start, end()]` on its rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LedgerOp {
    /// Message injection toward `peer` (sender side does not block).
    Send {
        /// Destination rank.
        peer: usize,
        /// Payload bytes.
        bytes: f64,
        /// Simulated time at injection.
        t_start: f64,
        /// Injection overhead charged (the latency term).
        inject_s: f64,
    },
    /// Message receipt from `peer`.
    Recv {
        /// Source rank.
        peer: usize,
        /// Payload bytes.
        bytes: f64,
        /// Simulated time the receive was posted.
        t_start: f64,
        /// Sender's simulated send time (the cross-rank dependency).
        sent_at: f64,
        /// Implicit-synchronization wait booked (sender later than us).
        wait_s: f64,
        /// Transfer time from the machine model (latency + bytes/bandwidth).
        transfer_s: f64,
    },
    /// Global collective over `p` ranks.
    Collective {
        /// World size.
        p: usize,
        /// Reduced payload length in elements.
        elems: usize,
        /// Simulated time this rank entered the collective.
        t_start: f64,
        /// Maximum clock over participants (everyone syncs to it).
        t_max: f64,
        /// The rank that set `t_max` (the collective's critical rank).
        critical_rank: usize,
        /// Wait to `t_max`.
        wait_s: f64,
        /// Log-tree reduction time.
        reduce_s: f64,
    },
}

impl LedgerOp {
    /// Simulated time at which this op started.
    pub fn t_start(&self) -> f64 {
        match *self {
            LedgerOp::Send { t_start, .. }
            | LedgerOp::Recv { t_start, .. }
            | LedgerOp::Collective { t_start, .. } => t_start,
        }
    }

    /// Simulated time at which this op completed on its rank.
    pub fn end(&self) -> f64 {
        match *self {
            LedgerOp::Send {
                t_start, inject_s, ..
            } => t_start + inject_s,
            LedgerOp::Recv {
                t_start,
                wait_s,
                transfer_s,
                ..
            } => t_start + wait_s + transfer_s,
            LedgerOp::Collective {
                t_start,
                wait_s,
                reduce_s,
                ..
            } => t_start + wait_s + reduce_s,
        }
    }
}

/// Per-rank message ledger: every ghost exchange and collective this rank
/// took part in, in timeline order.  Disabled ledgers cost one branch per
/// communication call and record nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageLedger {
    rank: usize,
    enabled: bool,
    ops: Vec<LedgerOp>,
    /// Simulated clock at the end of the run (set by [`MessageLedger::close`]).
    finish_s: f64,
}

impl MessageLedger {
    /// An enabled ledger for `rank`.
    pub fn enabled(rank: usize) -> Self {
        Self {
            rank,
            enabled: true,
            ops: Vec::new(),
            finish_s: 0.0,
        }
    }

    /// A disabled (no-op) ledger.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this ledger records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The rank this ledger belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Recorded operations in timeline order.
    pub fn ops(&self) -> &[LedgerOp] {
        &self.ops
    }

    /// Final simulated clock, set by [`MessageLedger::close`].
    pub fn finish_s(&self) -> f64 {
        self.finish_s
    }

    /// Append an operation (no-op when disabled).
    pub fn record(&mut self, op: LedgerOp) {
        if self.enabled {
            self.ops.push(op);
        }
    }

    /// Seal the ledger with the rank's final simulated clock.
    pub fn close(&mut self, now_s: f64) {
        self.finish_s = self.finish_s.max(now_s);
    }

    /// Number of point-to-point messages sent.
    pub fn nsends(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, LedgerOp::Send { .. }))
            .count()
    }

    /// Number of point-to-point messages received.
    pub fn nrecvs(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, LedgerOp::Recv { .. }))
            .count()
    }

    /// Number of collectives joined.
    pub fn ncollectives(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, LedgerOp::Collective { .. }))
            .count()
    }

    /// Total point-to-point bytes sent.
    pub fn bytes_sent(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Send { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Total point-to-point bytes received.
    pub fn bytes_received(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Recv { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Bytes sent per destination rank: `(peer, message count, bytes)`,
    /// sorted by peer.
    pub fn sends_by_peer(&self) -> Vec<(usize, usize, f64)> {
        let mut acc: Vec<(usize, usize, f64)> = Vec::new();
        for op in &self.ops {
            if let LedgerOp::Send { peer, bytes, .. } = op {
                match acc.iter_mut().find(|(p, _, _)| p == peer) {
                    Some((_, n, b)) => {
                        *n += 1;
                        *b += bytes;
                    }
                    None => acc.push((*peer, 1, *bytes)),
                }
            }
        }
        acc.sort_by_key(|&(p, _, _)| p);
        acc
    }

    /// Wait booked at point-to-point receives (implicit sync at scatters).
    pub fn wait_at_recv_s(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Recv { wait_s, .. } => *wait_s,
                _ => 0.0,
            })
            .sum()
    }

    /// Wait booked entering collectives (implicit sync at reductions).
    pub fn wait_at_collective_s(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Collective { wait_s, .. } => *wait_s,
                _ => 0.0,
            })
            .sum()
    }

    /// Transfer + injection time at point-to-point messages.
    pub fn transfer_s(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Send { inject_s, .. } => *inject_s,
                LedgerOp::Recv { transfer_s, .. } => *transfer_s,
                _ => 0.0,
            })
            .sum()
    }

    /// Reduction-tree time at collectives.
    pub fn reduce_s(&self) -> f64 {
        self.ops
            .iter()
            .map(|o| match o {
                LedgerOp::Collective { reduce_s, .. } => *reduce_s,
                _ => 0.0,
            })
            .sum()
    }

    /// Write the ledger's aggregates into a telemetry registry as counters
    /// on the rank's simulated spans, so merged reports carry per-rank
    /// communication accounting.  Called once at end of run; the per-peer
    /// counter names are formatted here, never on the message path.
    pub fn ingest_into(&self, reg: &Registry) {
        if !self.enabled {
            return;
        }
        let paths = RankPaths::new(self.rank);
        let scatter = paths.path(TracePhase::Scatter);
        reg.counter_at(
            scatter,
            TimeDomain::Simulated,
            "bytes_sent",
            self.bytes_sent(),
        );
        reg.counter_at(
            scatter,
            TimeDomain::Simulated,
            "bytes_recv",
            self.bytes_received(),
        );
        reg.counter_at(
            scatter,
            TimeDomain::Simulated,
            "msgs_sent",
            self.nsends() as f64,
        );
        reg.counter_at(
            scatter,
            TimeDomain::Simulated,
            "msgs_recv",
            self.nrecvs() as f64,
        );
        for (peer, count, bytes) in self.sends_by_peer() {
            reg.counter_at(
                scatter,
                TimeDomain::Simulated,
                &format!("to{peer}_bytes"),
                bytes,
            );
            reg.counter_at(
                scatter,
                TimeDomain::Simulated,
                &format!("to{peer}_msgs"),
                count as f64,
            );
        }
        let wait = paths.path(TracePhase::Wait);
        reg.counter_at(
            wait,
            TimeDomain::Simulated,
            "at_scatter_s",
            self.wait_at_recv_s(),
        );
        reg.counter_at(
            wait,
            TimeDomain::Simulated,
            "at_reduction_s",
            self.wait_at_collective_s(),
        );
    }
}

/// Critical-path attribution over the rank×op DAG: end-to-end simulated
/// time split into compute, exchange (transfer + injection + reduction
/// tree), and wait that no cross-rank dependency explains.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CriticalPath {
    /// End-to-end simulated time (the last rank's finish).
    pub total_s: f64,
    /// Compute time along the path.
    pub compute_s: f64,
    /// Message transfer / injection / reduction time along the path.
    pub exchange_s: f64,
    /// Residual wait along the path (ties, self-dependencies).
    pub wait_s: f64,
    /// Rank whose finish time ends the path.
    pub end_rank: usize,
    /// Number of rank-to-rank jumps the walk took.
    pub hops: usize,
}

impl CriticalPath {
    /// `compute_s + exchange_s + wait_s` — equals `total_s` up to rounding.
    pub fn accounted_s(&self) -> f64 {
        self.compute_s + self.exchange_s + self.wait_s
    }
}

/// Walk the critical path backwards from the last rank to finish.
///
/// Each rank's ledger is a chain of communication ops; the gaps between
/// them are compute.  At a receive whose wait was caused by a late sender
/// the walk jumps to the sender at its send time; at a collective it jumps
/// to the rank that set `t_max`.  Every simulated second in `[0, total]`
/// is attributed exactly once, so the parts sum to the total.
///
/// Ledgers must be closed ([`MessageLedger::close`]) and indexed by rank
/// (`ledgers[r].rank() == r`).
pub fn critical_path(ledgers: &[MessageLedger]) -> CriticalPath {
    if ledgers.is_empty() {
        return CriticalPath::default();
    }
    let end_rank = (0..ledgers.len())
        .max_by(|&a, &b| ledgers[a].finish_s().total_cmp(&ledgers[b].finish_s()))
        .unwrap();
    let total = ledgers[end_rank].finish_s();
    let mut cp = CriticalPath {
        total_s: total,
        end_rank,
        ..Default::default()
    };
    // Per-rank pointer one past the last op still eligible; cursor time is
    // globally non-increasing, so pointers only ever move left.
    let mut ptr: Vec<usize> = ledgers.iter().map(|l| l.ops().len()).collect();
    let mut r = end_rank;
    let mut t = total;
    while t > 0.0 {
        let ops = ledgers[r].ops();
        while ptr[r] > 0 && ops[ptr[r] - 1].end() > t {
            ptr[r] -= 1;
        }
        if ptr[r] == 0 {
            // Only compute (or idle start) remains on this rank.
            cp.compute_s += t;
            break;
        }
        let op = ops[ptr[r] - 1];
        ptr[r] -= 1;
        // Gap between the op's completion and the cursor is compute.
        cp.compute_s += (t - op.end()).max(0.0);
        t = op.end();
        match op {
            LedgerOp::Send { inject_s, .. } => {
                cp.exchange_s += inject_s;
                t -= inject_s;
            }
            LedgerOp::Recv {
                peer,
                sent_at,
                wait_s,
                transfer_s,
                ..
            } => {
                cp.exchange_s += transfer_s;
                t -= transfer_s;
                if wait_s > 0.0 && peer != r {
                    // The sender was the bottleneck: follow the message.
                    r = peer;
                    t = sent_at;
                    cp.hops += 1;
                } else {
                    cp.wait_s += wait_s;
                    t -= wait_s;
                }
            }
            LedgerOp::Collective {
                critical_rank,
                t_max,
                wait_s,
                reduce_s,
                ..
            } => {
                cp.exchange_s += reduce_s;
                t -= reduce_s;
                if wait_s > 0.0 && critical_rank != r {
                    r = critical_rank;
                    t = t_max;
                    cp.hops += 1;
                } else {
                    cp.wait_s += wait_s;
                    t -= wait_s;
                }
            }
        }
    }
    cp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_coalesces_adjacent_compute() {
        let reg = Registry::enabled(2);
        let mut tr = RankTracer::new(reg.clone(), 2);
        tr.compute(0.0, 1.0);
        tr.compute(1.0, 1.0); // contiguous: merges
        tr.comm(TracePhase::Scatter, 2.0, 0.5); // flushes the compute pair
        tr.compute(2.5, 0.25);
        tr.flush();
        let snap = reg.snapshot();
        let compute = snap.span("rank2/compute").unwrap();
        assert_eq!(compute.calls, 2, "two coalesced intervals, not three");
        assert!((compute.total_s - 2.25).abs() < 1e-12);
        assert!((snap.span("rank2/scatter").unwrap().total_s - 0.5).abs() < 1e-12);
        // Timeline events carry simulated placement.
        assert!(snap
            .events
            .iter()
            .any(|e| e.path == "rank2/compute" && e.t_start_s == 0.0 && e.dur_s == 2.0));
    }

    #[test]
    fn ledger_aggregates_by_kind_and_peer() {
        let mut l = MessageLedger::enabled(0);
        l.record(LedgerOp::Send {
            peer: 1,
            bytes: 64.0,
            t_start: 0.0,
            inject_s: 0.01,
        });
        l.record(LedgerOp::Send {
            peer: 1,
            bytes: 36.0,
            t_start: 0.1,
            inject_s: 0.01,
        });
        l.record(LedgerOp::Recv {
            peer: 2,
            bytes: 80.0,
            t_start: 0.2,
            sent_at: 0.5,
            wait_s: 0.3,
            transfer_s: 0.05,
        });
        l.record(LedgerOp::Collective {
            p: 3,
            elems: 1,
            t_start: 0.9,
            t_max: 1.0,
            critical_rank: 2,
            wait_s: 0.1,
            reduce_s: 0.02,
        });
        l.close(1.12);
        assert_eq!((l.nsends(), l.nrecvs(), l.ncollectives()), (2, 1, 1));
        assert_eq!(l.bytes_sent(), 100.0);
        assert_eq!(l.bytes_received(), 80.0);
        assert_eq!(l.sends_by_peer(), vec![(1, 2, 100.0)]);
        assert!((l.wait_at_recv_s() - 0.3).abs() < 1e-12);
        assert!((l.wait_at_collective_s() - 0.1).abs() < 1e-12);
        assert!((l.transfer_s() - 0.07).abs() < 1e-12);
        assert!((l.reduce_s() - 0.02).abs() < 1e-12);

        let reg = Registry::enabled(0);
        l.ingest_into(&reg);
        let snap = reg.snapshot();
        let sc = snap.span("rank0/scatter").unwrap();
        assert_eq!(sc.counter("bytes_sent"), Some(100.0));
        assert_eq!(sc.counter("to1_bytes"), Some(100.0));
        assert_eq!(sc.counter("to1_msgs"), Some(2.0));
        let w = snap.span("rank0/wait").unwrap();
        assert_eq!(w.counter("at_scatter_s"), Some(0.3));
        assert_eq!(w.counter("at_reduction_s"), Some(0.1));
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let mut l = MessageLedger::disabled();
        l.record(LedgerOp::Send {
            peer: 0,
            bytes: 8.0,
            t_start: 0.0,
            inject_s: 0.0,
        });
        assert!(l.ops().is_empty());
        let reg = Registry::enabled(0);
        l.ingest_into(&reg);
        assert!(reg.snapshot().spans.is_empty());
    }

    /// Two ranks: rank 1 computes 1.0 s then sends; rank 0 posts its
    /// receive at 0.1 s and waits.  The critical path runs through rank 1's
    /// compute, not rank 0's wait.
    #[test]
    fn critical_path_follows_the_late_sender() {
        let mut r0 = MessageLedger::enabled(0);
        let mut r1 = MessageLedger::enabled(1);
        r1.record(LedgerOp::Send {
            peer: 0,
            bytes: 800.0,
            t_start: 1.0,
            inject_s: 0.01,
        });
        r1.close(1.01);
        r0.record(LedgerOp::Recv {
            peer: 1,
            bytes: 800.0,
            t_start: 0.1,
            sent_at: 1.0,
            wait_s: 0.9,
            transfer_s: 0.05,
        });
        r0.close(1.05);
        let cp = critical_path(&[r0, r1]);
        assert_eq!(cp.end_rank, 0);
        assert_eq!(cp.hops, 1);
        assert!((cp.total_s - 1.05).abs() < 1e-12);
        // 1.0 of rank 1's compute + 0.05 transfer; the wait is explained.
        assert!(
            (cp.compute_s - 1.0).abs() < 1e-12,
            "compute {}",
            cp.compute_s
        );
        assert!((cp.exchange_s - 0.05).abs() < 1e-12);
        assert!(cp.wait_s.abs() < 1e-12);
        assert!((cp.accounted_s() - cp.total_s).abs() < 1e-9);
    }

    #[test]
    fn critical_path_jumps_to_collective_critical_rank() {
        // Rank 1 computes 2.0 s; both join a collective syncing to 2.0.
        let mut r0 = MessageLedger::enabled(0);
        let mut r1 = MessageLedger::enabled(1);
        r0.record(LedgerOp::Collective {
            p: 2,
            elems: 1,
            t_start: 0.5,
            t_max: 2.0,
            critical_rank: 1,
            wait_s: 1.5,
            reduce_s: 0.1,
        });
        r0.close(2.1);
        r1.record(LedgerOp::Collective {
            p: 2,
            elems: 1,
            t_start: 2.0,
            t_max: 2.0,
            critical_rank: 1,
            wait_s: 0.0,
            reduce_s: 0.1,
        });
        r1.close(2.1);
        let cp = critical_path(&[r0, r1]);
        assert!((cp.total_s - 2.1).abs() < 1e-12);
        assert!((cp.compute_s - 2.0).abs() < 1e-12);
        assert!((cp.exchange_s - 0.1).abs() < 1e-12);
        assert_eq!(cp.hops, if cp.end_rank == 0 { 1 } else { 0 });
        assert!((cp.accounted_s() - cp.total_s).abs() < 1e-9);
    }

    #[test]
    fn critical_path_empty_and_single() {
        assert_eq!(critical_path(&[]), CriticalPath::default());
        let mut l = MessageLedger::enabled(0);
        l.close(3.0);
        let cp = critical_path(&[l]);
        assert!((cp.total_s - 3.0).abs() < 1e-12);
        assert!((cp.compute_s - 3.0).abs() < 1e-12);
        assert_eq!(cp.hops, 0);
    }
}
