//! Ghost-point scatter — the PETSc `VecScatter` analogue.
//!
//! In a domain-decomposed PDE solve, each rank owns a set of vertices and
//! needs current values at the *ghost* vertices owned by its neighbors before
//! every flux evaluation or SpMV.  The scatter is the "nearest neighbor data
//! exchange" whose cost grows from 3% to 6% of execution time in Table 3 as
//! the surface-to-volume ratio of the subdomains degrades.

use crate::world::Rank;
use fun3d_telemetry::events::EventRecord;

/// A rank's ghost-exchange plan.
///
/// Local vector layout convention: owned vertices first (local indices
/// `0..nowned`), then ghosts grouped by neighbor in `neighbors` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterPlan {
    /// Neighbor rank ids, ascending.
    pub neighbors: Vec<usize>,
    /// For each neighbor: the *owned-local* indices this rank must send.
    pub send_indices: Vec<Vec<u32>>,
    /// For each neighbor: how many ghost vertices are received.
    pub recv_counts: Vec<usize>,
}

impl ScatterPlan {
    /// An empty plan (sequential run).
    pub fn empty() -> Self {
        Self {
            neighbors: Vec::new(),
            send_indices: Vec::new(),
            recv_counts: Vec::new(),
        }
    }

    /// Total ghost entries this plan receives.
    pub fn nghosts(&self) -> usize {
        self.recv_counts.iter().sum()
    }

    /// Total entries this plan sends.
    pub fn nsends(&self) -> usize {
        self.send_indices.iter().map(Vec::len).sum()
    }

    /// Execute the exchange for a vector with `ncomp` components per vertex.
    ///
    /// `local` holds owned values in its first `nowned * ncomp` entries and
    /// receives ghost values behind them (plan layout). All sends are posted
    /// before any receive, so the exchange cannot deadlock.
    pub fn execute(
        &self,
        rank: &mut Rank,
        local: &mut [f64],
        nowned: usize,
        ncomp: usize,
        tag: u32,
    ) {
        let tel = rank.telemetry.clone();
        let _span = tel.span("comm/scatter");
        let bytes = (self.nsends() + self.nghosts()) * ncomp * 8;
        tel.counter("scatter_bytes", bytes as f64);
        let t0 = rank.events.is_enabled().then(std::time::Instant::now);
        // Post sends.
        for (ni, &nbr) in self.neighbors.iter().enumerate() {
            let idx = &self.send_indices[ni];
            let mut buf = Vec::with_capacity(idx.len() * ncomp);
            for &li in idx {
                let base = li as usize * ncomp;
                buf.extend_from_slice(&local[base..base + ncomp]);
            }
            rank.send(nbr, tag, buf);
        }
        // Drain receives in neighbor order into the ghost region.
        let mut ghost_base = nowned * ncomp;
        for (ni, &nbr) in self.neighbors.iter().enumerate() {
            let data = rank.recv(nbr, tag);
            assert_eq!(
                data.len(),
                self.recv_counts[ni] * ncomp,
                "ghost count mismatch from rank {nbr}"
            );
            local[ghost_base..ghost_base + data.len()].copy_from_slice(&data);
            ghost_base += data.len();
        }
        if let Some(t0) = t0 {
            rank.events.emit(EventRecord::Scatter {
                bytes: bytes as u64,
                neighbors: self.neighbors.len() as u64,
                t: t0.elapsed().as_secs_f64(),
            });
        }
    }
}

/// Build per-rank scatter plans and local orderings from a global partition.
///
/// Input: the global vertex count, each vertex's owner, and the global
/// adjacency (as an edge list).  Output, per rank: the globally-indexed owned
/// vertices (ascending), the ghost vertices (grouped by owner, ascending
/// within a group), and the [`ScatterPlan`] wired so that
/// `plan.execute(...)` fills ghosts consistently on all ranks.
pub fn build_scatter_plans(
    nverts: usize,
    owner: &[u32],
    edges: &[[u32; 2]],
    nranks: usize,
) -> Vec<(Vec<usize>, Vec<usize>, ScatterPlan)> {
    assert_eq!(owner.len(), nverts);
    // Owned lists.
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); nranks];
    for (v, &o) in owner.iter().enumerate() {
        owned[o as usize].push(v);
    }
    // Ghosts: for each rank, the set of off-rank vertices adjacent to an
    // owned vertex, grouped by their owner.
    let mut ghost_sets: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); nranks];
    for &[a, b] in edges {
        let (a, b) = (a as usize, b as usize);
        let (oa, ob) = (owner[a] as usize, owner[b] as usize);
        if oa != ob {
            ghost_sets[oa].insert(b);
            ghost_sets[ob].insert(a);
        }
    }

    // For each rank r and neighbor s: the vertices r receives from s are
    // exactly the ghosts of r owned by s; s must send them in the same
    // (ascending-global) order.
    let mut result = Vec::with_capacity(nranks);
    for r in 0..nranks {
        // Group r's ghosts by owner.
        let mut by_owner: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &g in &ghost_sets[r] {
            by_owner.entry(owner[g] as usize).or_default().push(g);
        }
        let neighbors: Vec<usize> = by_owner.keys().copied().collect();
        let recv_counts: Vec<usize> = by_owner.values().map(Vec::len).collect();
        // Sends: for each neighbor s, the vertices owned by r that s ghosts,
        // i.e. r-owned vertices adjacent to s-owned vertices, ascending.
        let mut send_indices = Vec::with_capacity(neighbors.len());
        // Map global -> owned-local for rank r.
        let mut global_to_local = std::collections::HashMap::new();
        for (li, &g) in owned[r].iter().enumerate() {
            global_to_local.insert(g, li as u32);
        }
        for &s in &neighbors {
            // Vertices of r ghosted by s = ghost_sets[s] ∩ owned-by-r.
            let mut sends: Vec<u32> = ghost_sets[s]
                .iter()
                .filter(|&&g| owner[g] as usize == r)
                .map(|&g| global_to_local[&g])
                .collect();
            sends.sort_unstable_by_key(|&li| owned[r][li as usize]);
            send_indices.push(sends);
        }
        let ghosts: Vec<usize> = by_owner.values().flatten().copied().collect();
        result.push((
            owned[r].clone(),
            ghosts,
            ScatterPlan {
                neighbors,
                send_indices,
                recv_counts,
            },
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;
    use fun3d_memmodel::machine::MachineSpec;

    /// Path graph 0-1-2-3-4-5 split into [0,1,2] and [3,4,5].
    fn path_setup() -> (usize, Vec<u32>, Vec<[u32; 2]>) {
        let owner = vec![0, 0, 0, 1, 1, 1];
        let edges: Vec<[u32; 2]> = (0..5u32).map(|i| [i, i + 1]).collect();
        (6, owner, edges)
    }

    #[test]
    fn plans_identify_interface() {
        let (n, owner, edges) = path_setup();
        let plans = build_scatter_plans(n, &owner, &edges, 2);
        let (owned0, ghosts0, p0) = &plans[0];
        assert_eq!(owned0, &vec![0, 1, 2]);
        assert_eq!(ghosts0, &vec![3]);
        assert_eq!(p0.neighbors, vec![1]);
        assert_eq!(p0.recv_counts, vec![1]);
        assert_eq!(p0.send_indices, vec![vec![2]]); // local index of global 2
        let (_, ghosts1, p1) = &plans[1];
        assert_eq!(ghosts1, &vec![2]);
        assert_eq!(p1.send_indices, vec![vec![0]]); // local index of global 3
    }

    #[test]
    fn exchange_moves_correct_values() {
        let (n, owner, edges) = path_setup();
        let plans = build_scatter_plans(n, &owner, &edges, 2);
        let out = run_world(2, &MachineSpec::asci_red(), |r| {
            let (owned, ghosts, plan) = &plans[r.id()];
            let ncomp = 2;
            let mut local = vec![0.0; (owned.len() + ghosts.len()) * ncomp];
            // Owned values: global index * 10 + component.
            for (li, &g) in owned.iter().enumerate() {
                for c in 0..ncomp {
                    local[li * ncomp + c] = (g * 10 + c) as f64;
                }
            }
            plan.execute(r, &mut local, owned.len(), ncomp, 42);
            local
        });
        // Rank 0's ghost (global 3) must hold [30, 31].
        let l0 = &out[0];
        assert_eq!(&l0[6..8], &[30.0, 31.0]);
        // Rank 1's ghost (global 2) must hold [20, 21].
        let l1 = &out[1];
        assert_eq!(&l1[6..8], &[20.0, 21.0]);
    }

    #[test]
    fn three_rank_exchange_is_consistent() {
        // 3x3 grid partitioned in rows.
        let mut edges = Vec::new();
        let id = |i: usize, j: usize| (i * 3 + j) as u32;
        for i in 0..3 {
            for j in 0..3 {
                if i + 1 < 3 {
                    edges.push([id(i, j), id(i + 1, j)]);
                }
                if j + 1 < 3 {
                    edges.push([id(i, j), id(i, j + 1)]);
                }
            }
        }
        let owner = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let plans = build_scatter_plans(9, &owner, &edges, 3);
        let out = run_world(3, &MachineSpec::cray_t3e(), |r| {
            let (owned, ghosts, plan) = &plans[r.id()];
            let mut local = vec![0.0; owned.len() + ghosts.len()];
            for (li, &g) in owned.iter().enumerate() {
                local[li] = g as f64;
            }
            plan.execute(r, &mut local, owned.len(), 1, 7);
            // Return ghost values for checking.
            (ghosts.clone(), local[owned.len()..].to_vec())
        });
        for (ghosts, values) in &out {
            for (g, v) in ghosts.iter().zip(values) {
                assert_eq!(*v, *g as f64, "ghost {g} got {v}");
            }
        }
        // Middle rank has two neighbors.
        assert_eq!(plans[1].2.neighbors, vec![0, 2]);
    }

    #[test]
    fn instrumented_scatter_emits_events() {
        use crate::world::run_world_instrumented;
        let (n, owner, edges) = path_setup();
        let plans = build_scatter_plans(n, &owner, &edges, 2);
        let out = run_world_instrumented(2, &MachineSpec::asci_red(), true, |r| {
            let (owned, ghosts, plan) = &plans[r.id()];
            let mut local = vec![0.0; owned.len() + ghosts.len()];
            for (li, &g) in owned.iter().enumerate() {
                local[li] = g as f64;
            }
            plan.execute(r, &mut local, owned.len(), 1, 9);
            plan.execute(r, &mut local, owned.len(), 1, 9);
            r.events.drain()
        });
        for (rank, evs) in out.iter().enumerate() {
            assert_eq!(evs.len(), 2, "rank {rank} scatter events");
            for ev in evs {
                let fun3d_telemetry::events::EventRecord::Scatter {
                    bytes,
                    neighbors,
                    t,
                } = ev
                else {
                    panic!("unexpected event {ev:?}");
                };
                // 1 send + 1 ghost, 1 component, 8 bytes each.
                assert_eq!(*bytes, 16);
                assert_eq!(*neighbors, 1);
                assert!(*t >= 0.0);
            }
        }
        // Uninstrumented worlds emit nothing.
        let out = run_world(2, &MachineSpec::asci_red(), |r| {
            let (owned, ghosts, plan) = &plans[r.id()];
            let mut local = vec![0.0; owned.len() + ghosts.len()];
            plan.execute(r, &mut local, owned.len(), 1, 9);
            r.events.drain().len()
        });
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn empty_plan_is_noop() {
        let plan = ScatterPlan::empty();
        let out = run_world(1, &MachineSpec::origin2000(), |r| {
            let mut local = vec![1.0, 2.0];
            plan.execute(r, &mut local, 2, 1, 0);
            local
        });
        assert_eq!(out[0], vec![1.0, 2.0]);
        assert_eq!(plan.nghosts(), 0);
        assert_eq!(plan.nsends(), 0);
    }
}
