//! Shared-memory thread team — the OpenMP analogue of Section 2.5.
//!
//! Table 5 compares two ways to use a node's second processor on the flux
//! evaluation: OpenMP threads splitting the edge loop inside one address
//! space, versus two MPI processes with separate subdomains.  The threaded
//! variant needs *private residual arrays* per thread (OpenMP 1.0 had no
//! vector reduction), combined afterwards by a gather that is itself memory-
//! bandwidth-bound — the caveat the paper calls out.  [`ThreadTeam`]
//! reproduces that exact structure.
//!
//! The partitioning and fork/join machinery is shared with the production
//! kernels: `ThreadTeam` wraps [`fun3d_sparse::par::ParCtx`], the context
//! the `_par` SpMV / BLAS-1 / triangular-solve variants take, so the Table 5
//! experiment and the threaded solver hot path use identical chunk math.

use fun3d_sparse::par::{DisjointSliceMut, ParCtx};
use fun3d_sparse::profile;
use std::time::Instant;

/// A team of worker threads with static loop scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTeam {
    ctx: ParCtx,
}

impl ThreadTeam {
    /// A team of `nthreads` workers (1 = sequential).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        Self {
            ctx: ParCtx::new(nthreads),
        }
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.ctx.nthreads()
    }

    /// The shared-kernel context this team wraps.
    pub fn ctx(&self) -> &ParCtx {
        &self.ctx
    }

    /// The contiguous static chunk of `0..n` assigned to thread `t`:
    /// `n / nthreads` items each, the remainder spread one-per-thread over
    /// the lowest-numbered threads; `nthreads > n` leaves the trailing
    /// threads with empty (zero-length) ranges.
    ///
    /// # Panics
    /// Panics if `t >= nthreads`.
    pub fn chunk(&self, n: usize, t: usize) -> std::ops::Range<usize> {
        self.ctx.chunk(n, t)
    }

    /// Run `f(thread_id, chunk)` on every thread over the index space
    /// `0..n` with static scheduling (OpenMP `schedule(static)`).  Threads
    /// whose chunk is empty are never spawned and `f` is not called for
    /// them.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        if profile::is_enabled() {
            return self.parallel_for_profiled(n, f);
        }
        if self.nthreads() == 1 {
            f(0, 0..n);
            return;
        }
        std::thread::scope(|scope| {
            for t in 0..self.nthreads() {
                let range = self.chunk(n, t);
                if range.is_empty() {
                    continue;
                }
                let f = &f;
                scope.spawn(move || f(t, range));
            }
        });
    }

    /// [`Self::parallel_for`] recording wall + per-thread busy time under
    /// the `team_for` region label — same chunks, same spawn decision.
    fn parallel_for_profiled<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let wall0 = Instant::now();
        let mut busy = vec![0.0f64; self.nthreads()];
        if self.nthreads() == 1 {
            let b0 = Instant::now();
            f(0, 0..n);
            busy[0] = b0.elapsed().as_secs_f64();
        } else {
            let view = DisjointSliceMut::new(&mut busy);
            std::thread::scope(|scope| {
                for t in 0..self.nthreads() {
                    let range = self.chunk(n, t);
                    if range.is_empty() {
                        continue;
                    }
                    let f = &f;
                    let view = &view;
                    scope.spawn(move || {
                        let b0 = Instant::now();
                        f(t, range);
                        // SAFETY: each thread writes only its own slot `t`.
                        unsafe { view.set(t, b0.elapsed().as_secs_f64()) };
                    });
                }
            });
        }
        profile::record(
            "team_for",
            self.nthreads(),
            wall0.elapsed().as_secs_f64(),
            &busy,
        );
    }

    /// The private-array reduction of the paper: each thread accumulates
    /// into its own copy of the residual; afterwards the copies are summed
    /// into the shared array *in thread order* (a bandwidth-bound gather,
    /// deterministic for a fixed team size).
    ///
    /// `body(thread, chunk, private)` fills the thread's private array.
    /// Threads with empty chunks neither run nor allocate a private copy.
    pub fn parallel_for_private_reduce<F>(&self, n: usize, result: &mut [f64], body: F)
    where
        F: Fn(usize, std::ops::Range<usize>, &mut [f64]) + Sync,
    {
        let profiled = profile::is_enabled();
        let wall0 = profiled.then(Instant::now);
        let mut busy = vec![0.0f64; self.nthreads()];
        let width = result.len();
        let mut privates: Vec<(usize, Vec<f64>)> = (0..self.nthreads())
            .filter(|&t| !self.chunk(n, t).is_empty() || (n == 0 && t == 0))
            .map(|t| (t, vec![0.0; width]))
            .collect();
        if self.nthreads() == 1 {
            if let Some((t, private)) = privates.first_mut() {
                let b0 = Instant::now();
                body(*t, self.chunk(n, *t), private);
                busy[0] = b0.elapsed().as_secs_f64();
            }
        } else {
            let view = DisjointSliceMut::new(&mut busy);
            std::thread::scope(|scope| {
                for (t, private) in privates.iter_mut() {
                    let range = self.chunk(n, *t);
                    let t = *t;
                    let body = &body;
                    let view = &view;
                    scope.spawn(move || {
                        let b0 = Instant::now();
                        body(t, range, private);
                        if profiled {
                            // SAFETY: each thread writes only its own slot.
                            unsafe { view.set(t, b0.elapsed().as_secs_f64()) };
                        }
                    });
                }
            });
        }
        // The gather: redundant memory traffic proportional to
        // nthreads * len(result).
        for (_, private) in &privates {
            for (r, p) in result.iter_mut().zip(private) {
                *r += p;
            }
        }
        if let Some(wall0) = wall0 {
            // The serial gather sits inside the region wall but outside any
            // thread's busy time, so it lands in join-wait — exactly where
            // the paper's Table 3 charges the private-array combine.
            profile::record(
                "team_reduce",
                self.nthreads(),
                wall0.elapsed().as_secs_f64(),
                &busy,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_partition_the_range() {
        let team = ThreadTeam::new(3);
        let n = 10;
        let mut covered = vec![false; n];
        for t in 0..3 {
            for i in team.chunk(n, t) {
                assert!(!covered[i]);
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Static chunks are balanced within 1.
        let sizes: Vec<usize> = (0..3).map(|t| team.chunk(n, t).len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn parallel_for_visits_everything_once() {
        let team = ThreadTeam::new(4);
        let n = 1000;
        let counter = AtomicUsize::new(0);
        team.parallel_for(n, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn private_reduce_matches_sequential() {
        // Sum of i over chunks, scattered into result[i % width].
        let width = 8;
        let n = 100;
        let reference = {
            let mut r = vec![0.0; width];
            for i in 0..n {
                r[i % width] += i as f64;
            }
            r
        };
        for nthreads in [1usize, 2, 4, 7] {
            let team = ThreadTeam::new(nthreads);
            let mut result = vec![0.0; width];
            team.parallel_for_private_reduce(n, &mut result, |_, range, private| {
                for i in range {
                    private[i % width] += i as f64;
                }
            });
            assert_eq!(result, reference, "nthreads={nthreads}");
        }
    }

    #[test]
    fn single_thread_chunk_is_whole_range() {
        let team = ThreadTeam::new(1);
        assert_eq!(team.chunk(17, 0), 0..17);
    }

    #[test]
    fn empty_range_is_fine() {
        let team = ThreadTeam::new(4);
        team.parallel_for(0, |_, range| assert!(range.is_empty()));
        let mut result = vec![0.0; 4];
        team.parallel_for_private_reduce(0, &mut result, |_, _, _| {});
        assert_eq!(result, vec![0.0; 4]);
    }

    // Regression tests for the partition edge cases: an oversized team must
    // produce empty (not out-of-bounds) trailing chunks, never call user
    // code for them, and still cover every index exactly once.

    #[test]
    fn oversized_team_covers_exactly_once() {
        for (n, nthreads) in [(3usize, 8usize), (1, 16), (7, 7), (5, 6)] {
            let team = ThreadTeam::new(nthreads);
            let mut next = 0;
            for t in 0..nthreads {
                let r = team.chunk(n, t);
                assert_eq!(r.start, next, "n={n} nthreads={nthreads} t={t}");
                assert!(r.end <= n, "chunk past the end: {r:?}");
                next = r.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn oversized_team_skips_empty_chunks() {
        let team = ThreadTeam::new(8);
        let called = AtomicUsize::new(0);
        team.parallel_for(3, |t, range| {
            assert!(t < 3, "thread {t} should have an empty chunk");
            assert!(!range.is_empty());
            called.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(called.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn oversized_team_private_reduce_matches() {
        let n = 3;
        let team = ThreadTeam::new(16);
        let mut result = vec![0.0; 2];
        team.parallel_for_private_reduce(n, &mut result, |_, range, private| {
            for i in range {
                private[i % 2] += 1.0 + i as f64;
            }
        });
        assert_eq!(result, vec![4.0, 2.0]); // i=0,2 -> slot 0; i=1 -> slot 1
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_rejects_out_of_range_thread() {
        // Previously this silently returned a range past the end of the
        // data; now it panics at the call site.
        ThreadTeam::new(4).chunk(10, 4);
    }

    #[test]
    fn remainder_is_spread_over_low_threads() {
        let team = ThreadTeam::new(4);
        let sizes: Vec<usize> = (0..4).map(|t| team.chunk(10, t).len()).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
    }
}
