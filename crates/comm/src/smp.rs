//! Shared-memory thread team — the OpenMP analogue of Section 2.5.
//!
//! Table 5 compares two ways to use a node's second processor on the flux
//! evaluation: OpenMP threads splitting the edge loop inside one address
//! space, versus two MPI processes with separate subdomains.  The threaded
//! variant needs *private residual arrays* per thread (OpenMP 1.0 had no
//! vector reduction), combined afterwards by a gather that is itself memory-
//! bandwidth-bound — the caveat the paper calls out.  [`ThreadTeam`]
//! reproduces that exact structure.

/// A team of worker threads with static loop scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTeam {
    nthreads: usize,
}

impl ThreadTeam {
    /// A team of `nthreads` workers (1 = sequential).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        Self { nthreads }
    }

    /// Team size.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The contiguous static chunk of `0..n` assigned to thread `t`.
    pub fn chunk(&self, n: usize, t: usize) -> std::ops::Range<usize> {
        let per = n / self.nthreads;
        let rem = n % self.nthreads;
        let start = t * per + t.min(rem);
        let len = per + usize::from(t < rem);
        start..start + len
    }

    /// Run `f(thread_id, chunk)` on every thread over the index space
    /// `0..n` with static scheduling (OpenMP `schedule(static)`).
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        if self.nthreads == 1 {
            f(0, 0..n);
            return;
        }
        std::thread::scope(|scope| {
            for t in 0..self.nthreads {
                let range = self.chunk(n, t);
                let f = &f;
                scope.spawn(move || f(t, range));
            }
        });
    }

    /// The private-array reduction of the paper: each thread accumulates
    /// into its own copy of the residual; afterwards the copies are summed
    /// into the shared array (a bandwidth-bound gather).
    ///
    /// `body(thread, chunk, private)` fills the thread's private array.
    pub fn parallel_for_private_reduce<F>(&self, n: usize, result: &mut [f64], body: F)
    where
        F: Fn(usize, std::ops::Range<usize>, &mut [f64]) + Sync,
    {
        let width = result.len();
        let mut privates: Vec<Vec<f64>> = (0..self.nthreads).map(|_| vec![0.0; width]).collect();
        if self.nthreads == 1 {
            body(0, 0..n, &mut privates[0]);
        } else {
            std::thread::scope(|scope| {
                for (t, private) in privates.iter_mut().enumerate() {
                    let range = self.chunk(n, t);
                    let body = &body;
                    scope.spawn(move || body(t, range, private));
                }
            });
        }
        // The gather: redundant memory traffic proportional to
        // nthreads * len(result).
        for private in &privates {
            for (r, p) in result.iter_mut().zip(private) {
                *r += p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_partition_the_range() {
        let team = ThreadTeam::new(3);
        let n = 10;
        let mut covered = vec![false; n];
        for t in 0..3 {
            for i in team.chunk(n, t) {
                assert!(!covered[i]);
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Static chunks are balanced within 1.
        let sizes: Vec<usize> = (0..3).map(|t| team.chunk(n, t).len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn parallel_for_visits_everything_once() {
        let team = ThreadTeam::new(4);
        let n = 1000;
        let counter = AtomicUsize::new(0);
        team.parallel_for(n, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn private_reduce_matches_sequential() {
        // Sum of i over chunks, scattered into result[i % width].
        let width = 8;
        let n = 100;
        let reference = {
            let mut r = vec![0.0; width];
            for i in 0..n {
                r[i % width] += i as f64;
            }
            r
        };
        for nthreads in [1usize, 2, 4, 7] {
            let team = ThreadTeam::new(nthreads);
            let mut result = vec![0.0; width];
            team.parallel_for_private_reduce(n, &mut result, |_, range, private| {
                for i in range {
                    private[i % width] += i as f64;
                }
            });
            assert_eq!(result, reference, "nthreads={nthreads}");
        }
    }

    #[test]
    fn single_thread_chunk_is_whole_range() {
        let team = ThreadTeam::new(1);
        assert_eq!(team.chunk(17, 0), 0..17);
    }

    #[test]
    fn empty_range_is_fine() {
        let team = ThreadTeam::new(4);
        team.parallel_for(0, |_, range| assert!(range.is_empty()));
        let mut result = vec![0.0; 4];
        team.parallel_for_private_reduce(0, &mut result, |_, _, _| {});
        assert_eq!(result, vec![0.0; 4]);
    }
}
