//! An MPI-like world: one thread per rank, channels for point-to-point
//! messages, deterministic collectives, and simulated-time integration.
//!
//! The collectives are implemented star-wise through rank 0 with a fixed
//! reduction order, so results (including floating-point rounding) are
//! bit-reproducible across runs — a property the numerical regression tests
//! rely on.  Channels are `std::sync::mpsc` (one per ordered rank pair), so
//! the substrate has no dependencies outside the standard library.
//!
//! Each rank carries a [`fun3d_telemetry::Registry`]: disabled (zero-cost)
//! under [`run_world`], enabled per rank under [`run_world_instrumented`],
//! where collectives and scatters record spans under the same schema the
//! solver uses.

use crate::clock::SimClock;
use crate::ranktrace::{LedgerOp, MessageLedger, RankTracer};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_telemetry::events::EventSink;
use fun3d_telemetry::{FlowEdge, Registry};
use std::sync::mpsc::{channel, Receiver, Sender};

/// A message: tag, payload, and the sender's simulated send time.
#[derive(Debug)]
struct Msg {
    tag: u32,
    data: Vec<f64>,
    sim_sent: f64,
}

/// One rank's endpoint in the world.
pub struct Rank {
    id: usize,
    nranks: usize,
    /// Senders to every rank (index = destination).
    tx: Vec<Sender<Msg>>,
    /// Receivers from every rank (index = source).
    rx: Vec<Receiver<Msg>>,
    /// The simulated clock.
    pub clock: SimClock,
    /// Per-rank profiling registry (disabled unless the world was started
    /// with [`run_world_instrumented`]).  Cloning it is cheap; clone before
    /// opening spans around calls that need `&mut self`.
    pub telemetry: Registry,
    /// Per-rank structured event sink (enabled together with `telemetry`
    /// under [`run_world_instrumented`]); scatters emit
    /// [`fun3d_telemetry::events::EventRecord::Scatter`] records into it.
    pub events: EventSink,
    /// Per-rank message ledger (enabled under [`run_world_with`] when
    /// `trace_ranks` is set): every send, receive, and collective with its
    /// simulated cost and wait-vs-transfer split.
    pub ledger: MessageLedger,
}

impl Rank {
    /// This rank's id in `0..nranks`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Send `data` to `to` with `tag`. Non-blocking (channels are
    /// unbounded); charges injection overhead to the simulated clock.
    pub fn send(&mut self, to: usize, tag: u32, data: Vec<f64>) {
        let bytes = (data.len() * 8) as f64;
        let t_start = self.clock.now();
        let msg = Msg {
            tag,
            data,
            sim_sent: t_start,
        };
        let cost = self.clock.send_message(bytes);
        self.ledger.record(LedgerOp::Send {
            peer: to,
            bytes,
            t_start,
            inject_s: cost.active_s,
        });
        self.tx[to].send(msg).expect("receiver hung up");
    }

    /// Receive the next message from `from`; panics if its tag differs
    /// (messages between a pair are ordered, so tags act as assertions).
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<f64> {
        let msg = self.rx[from].recv().expect("sender hung up");
        assert_eq!(
            msg.tag, tag,
            "tag mismatch on rank {} from {}",
            self.id, from
        );
        let bytes = (msg.data.len() * 8) as f64;
        let t_start = self.clock.now();
        let cost = self.clock.receive_message(bytes, msg.sim_sent);
        if self.ledger.is_enabled() {
            self.ledger.record(LedgerOp::Recv {
                peer: from,
                bytes,
                t_start,
                sent_at: msg.sim_sent,
                wait_s: cost.wait_s,
                transfer_s: cost.active_s,
            });
            // Scatter edge for the chrome trace: sender's lane at send time
            // to this rank's lane at receive completion.
            self.telemetry.record_flow(FlowEdge {
                src_rank: from,
                src_ts_s: msg.sim_sent,
                dst_rank: self.id,
                dst_ts_s: self.clock.now(),
            });
        }
        msg.data
    }

    /// Element-wise sum allreduce with deterministic order (rank 0 reduces
    /// 1, 2, ..., p-1, then broadcasts). Synchronizes simulated clocks.
    pub fn allreduce_sum(&mut self, x: &[f64]) -> Vec<f64> {
        self.allreduce_with(x, |acc, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a += b;
            }
        })
    }

    /// Element-wise max allreduce.
    pub fn allreduce_max(&mut self, x: &[f64]) -> Vec<f64> {
        self.allreduce_with(x, |acc, v| {
            for (a, b) in acc.iter_mut().zip(v) {
                *a = a.max(*b);
            }
        })
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_sum_scalar(&mut self, v: f64) -> f64 {
        self.allreduce_sum(&[v])[0]
    }

    /// Scalar max allreduce convenience.
    pub fn allreduce_max_scalar(&mut self, v: f64) -> f64 {
        self.allreduce_max(&[v])[0]
    }

    /// Barrier (an empty allreduce).
    pub fn barrier(&mut self) {
        let tel = self.telemetry.clone();
        let _span = tel.span("comm/barrier");
        self.allreduce_sum(&[]);
    }

    fn allreduce_with(
        &mut self,
        x: &[f64],
        mut combine: impl FnMut(&mut [f64], &[f64]),
    ) -> Vec<f64> {
        const TAG_GATHER: u32 = u32::MAX - 1;
        const TAG_BCAST: u32 = u32::MAX - 2;
        let tel = self.telemetry.clone();
        let _span = tel.span("comm/allreduce");
        tel.counter("allreduce_elems", x.len() as f64);
        let p = self.nranks;
        // Piggyback the local simulated time as the last element.
        let mut payload: Vec<f64> = Vec::with_capacity(x.len() + 1);
        payload.extend_from_slice(x);
        payload.push(self.clock.now());
        let t_start = self.clock.now();
        let (acc, t_max, critical_rank);
        if self.id == 0 {
            let mut a = payload[..x.len()].to_vec();
            let mut tm = self.clock.now();
            // First-max-wins ties make the critical rank deterministic.
            let mut argmax = 0usize;
            for from in 1..p {
                // Collective bookkeeping bypasses the scatter-time model:
                // raw channel receive, time handled by allreduce_sync below.
                let msg = self.rx[from].recv().expect("sender hung up");
                assert_eq!(msg.tag, TAG_GATHER);
                combine(&mut a, &msg.data[..x.len()]);
                if msg.data[x.len()] > tm {
                    tm = msg.data[x.len()];
                    argmax = from;
                }
            }
            let mut out = a.clone();
            out.push(tm);
            out.push(argmax as f64);
            for to in 1..p {
                self.tx[to]
                    .send(Msg {
                        tag: TAG_BCAST,
                        data: out.clone(),
                        sim_sent: 0.0,
                    })
                    .expect("receiver hung up");
            }
            (acc, t_max, critical_rank) = (a, tm, argmax);
        } else {
            self.tx[0]
                .send(Msg {
                    tag: TAG_GATHER,
                    data: payload,
                    sim_sent: 0.0,
                })
                .expect("receiver hung up");
            let msg = self.rx[0].recv().expect("root hung up");
            assert_eq!(msg.tag, TAG_BCAST);
            (acc, t_max, critical_rank) = (
                msg.data[..x.len()].to_vec(),
                msg.data[x.len()],
                msg.data[x.len() + 1] as usize,
            );
        }
        let cost = self.clock.allreduce_sync(p, t_max);
        self.ledger.record(LedgerOp::Collective {
            p,
            elems: x.len(),
            t_start,
            t_max,
            critical_rank,
            wait_s: cost.wait_s,
            reduce_s: cost.active_s,
        });
        acc
    }
}

/// What a world records beyond the simulation itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldOptions {
    /// Enable per-rank telemetry registries and event sinks.
    pub instrument: bool,
    /// Enable per-rank message ledgers and simulated span timelines
    /// (implies `instrument`).  Tracing never feeds back into the clock,
    /// so traced and untraced runs produce bitwise-identical results.
    pub trace_ranks: bool,
}

/// Run an SPMD program: `nranks` threads each execute `f(rank)`; returns the
/// per-rank results in rank order.  Telemetry is disabled (zero overhead);
/// use [`run_world_instrumented`] to profile.
///
/// # Panics
/// Propagates any rank's panic.
pub fn run_world<R, F>(nranks: usize, machine: &MachineSpec, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
{
    run_world_instrumented(nranks, machine, false, f)
}

/// Like [`run_world`] but with per-rank telemetry registries enabled when
/// `instrument` is true; each rank's profile is read back via
/// `rank.telemetry.snapshot()` inside `f`.
pub fn run_world_instrumented<R, F>(
    nranks: usize,
    machine: &MachineSpec,
    instrument: bool,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
{
    run_world_with(
        nranks,
        machine,
        WorldOptions {
            instrument,
            trace_ranks: false,
        },
        f,
    )
}

/// Like [`run_world`] with explicit [`WorldOptions`]: `instrument` enables
/// per-rank telemetry/events, `trace_ranks` additionally attaches a
/// [`RankTracer`] to each clock and an enabled [`MessageLedger`] to each
/// rank (read them back inside `f`, e.g. via `std::mem::take`).
pub fn run_world_with<R, F>(
    nranks: usize,
    machine: &MachineSpec,
    opts: WorldOptions,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Sync,
{
    let instrument = opts.instrument || opts.trace_ranks;
    assert!(nranks >= 1);
    // Build the channel mesh: channels[from][to].
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for from in 0..nranks {
        for to in 0..nranks {
            let (s, r) = channel();
            senders[from][to] = Some(s);
            receivers[to][from] = Some(r);
        }
    }
    let mut ranks: Vec<Rank> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(id, (tx, rx))| {
            let telemetry = if instrument {
                Registry::enabled(id)
            } else {
                Registry::disabled()
            };
            let mut clock = SimClock::new(machine.clone());
            if opts.trace_ranks {
                // Rank-labelled span paths are interned here, once per
                // (rank, label) — never formatted on the per-call path.
                clock.set_tracer(RankTracer::new(telemetry.clone(), id));
            }
            Rank {
                id,
                nranks,
                tx: tx.into_iter().map(Option::unwrap).collect(),
                rx: rx.into_iter().map(Option::unwrap).collect(),
                clock,
                telemetry,
                events: if instrument {
                    EventSink::enabled()
                } else {
                    EventSink::disabled()
                },
                ledger: if opts.trace_ranks {
                    MessageLedger::enabled(id)
                } else {
                    MessageLedger::disabled()
                },
            }
        })
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = ranks
            .iter_mut()
            .map(|rank| {
                let f = &f;
                scope.spawn(move || f(rank))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec::asci_red()
    }

    #[test]
    fn single_rank_runs() {
        let out = run_world(1, &machine(), |r| r.id() * 10);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn point_to_point_ring() {
        let p = 4;
        let out = run_world(p, &machine(), |r| {
            let next = (r.id() + 1) % r.nranks();
            let prev = (r.id() + r.nranks() - 1) % r.nranks();
            r.send(next, 7, vec![r.id() as f64]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn allreduce_sum_agrees_with_sequential() {
        let p = 6;
        let out = run_world(p, &machine(), |r| r.allreduce_sum(&[r.id() as f64, 1.0]));
        for o in out {
            assert_eq!(o, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn allreduce_max_takes_max() {
        let out = run_world(5, &machine(), |r| r.allreduce_max_scalar(r.id() as f64));
        assert!(out.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn allreduce_is_deterministic_fp() {
        // Sums in fixed order: repeated runs must agree bitwise.
        let run = || {
            run_world(7, &machine(), |r| {
                let v = 0.1 * (r.id() as f64 + 1.0);
                r.allreduce_sum_scalar(v)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn imbalance_shows_up_as_implicit_sync() {
        let out = run_world(2, &machine(), |r| {
            if r.id() == 1 {
                // Rank 1 does 10x the compute.
                r.clock.compute(333e6, 0.0, 1.0);
            } else {
                r.clock.compute(33.3e6, 0.0, 1.0);
            }
            r.barrier();
            r.clock.breakdown()
        });
        assert!(out[0].implicit_sync > 0.8, "idle rank waits: {:?}", out[0]);
        assert!(
            out[1].implicit_sync < 1e-9,
            "busy rank never waits: {:?}",
            out[1]
        );
    }

    #[test]
    fn scatter_time_charged_on_receive() {
        let out = run_world(2, &machine(), |r| {
            if r.id() == 0 {
                r.send(1, 3, vec![1.0; 1000]);
                0.0
            } else {
                let _ = r.recv(0, 3);
                r.clock.breakdown().scatter
            }
        });
        assert!(out[1] > 0.0);
    }

    #[test]
    fn bytes_sent_accounted() {
        let out = run_world(2, &machine(), |r| {
            if r.id() == 0 {
                r.send(1, 1, vec![0.0; 128]);
            } else {
                let _ = r.recv(0, 1);
            }
            r.clock.bytes_sent
        });
        assert_eq!(out[0], 1024.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn tag_mismatch_panics() {
        run_world(2, &machine(), |r| {
            if r.id() == 0 {
                r.send(1, 1, vec![]);
            } else {
                let _ = r.recv(0, 2);
            }
        });
    }

    #[test]
    fn instrumented_world_records_collective_spans() {
        let snaps = run_world_instrumented(3, &machine(), true, |r| {
            r.barrier();
            r.allreduce_sum_scalar(1.0);
            r.telemetry.snapshot()
        });
        let merged = fun3d_telemetry::merge(&snaps);
        // One barrier (which nests an allreduce) plus one bare allreduce.
        assert_eq!(merged.span("comm/barrier").unwrap().calls, 3);
        assert_eq!(merged.span("comm/barrier/comm/allreduce").unwrap().calls, 3);
        assert_eq!(merged.span("comm/allreduce").unwrap().calls, 3);
    }

    fn traced() -> WorldOptions {
        WorldOptions {
            instrument: true,
            trace_ranks: true,
        }
    }

    #[test]
    fn traced_world_builds_per_rank_timelines_and_ledgers() {
        let p = 3;
        let out = run_world_with(p, &machine(), traced(), |r| {
            r.clock.compute(33.3e6 * (r.id() + 1) as f64, 0.0, 1.0);
            let next = (r.id() + 1) % r.nranks();
            let prev = (r.id() + r.nranks() - 1) % r.nranks();
            r.send(next, 9, vec![r.id() as f64; 16]);
            let _ = r.recv(prev, 9);
            r.allreduce_sum_scalar(1.0);
            r.clock.flush_trace();
            let mut ledger = std::mem::take(&mut r.ledger);
            ledger.close(r.clock.now());
            (r.telemetry.snapshot(), ledger)
        });
        // One lane per rank with the four phase spans.
        for (rank, (snap, ledger)) in out.iter().enumerate() {
            assert!(snap.span(&format!("rank{rank}/compute")).is_some());
            assert_eq!(ledger.rank(), rank);
            assert_eq!(ledger.nsends(), 1);
            assert_eq!(ledger.nrecvs(), 1);
            assert_eq!(ledger.ncollectives(), 1);
            assert_eq!(ledger.bytes_sent(), 128.0);
            // Rank timeline is fully accounted: phases sum to the clock.
            let phases: f64 = ["compute", "scatter", "reduction", "wait"]
                .iter()
                .filter_map(|ph| snap.span(&format!("rank{rank}/{ph}")))
                .map(|s| s.total_s)
                .sum();
            assert!(
                (phases - ledger.finish_s()).abs() < 1e-9 * ledger.finish_s().max(1.0),
                "rank {rank}: phases {phases} != finish {}",
                ledger.finish_s()
            );
        }
        // Flows recorded on the receiving rank, one per p2p message.
        let snaps: Vec<_> = out.iter().map(|(s, _)| s.clone()).collect();
        let merged = fun3d_telemetry::merge(&snaps);
        assert_eq!(merged.flows.len(), p);
        // Collectives agree on the critical rank (the heavy last rank).
        for (_, ledger) in &out {
            let crit = ledger.ops().iter().find_map(|op| match op {
                crate::ranktrace::LedgerOp::Collective { critical_rank, .. } => {
                    Some(*critical_rank)
                }
                _ => None,
            });
            assert_eq!(crit, Some(p - 1));
        }
        // Critical path is consistent: parts sum to the end-to-end time.
        let ledgers: Vec<_> = out.into_iter().map(|(_, l)| l).collect();
        let cp = crate::ranktrace::critical_path(&ledgers);
        assert!(cp.total_s > 0.0);
        assert!((cp.accounted_s() - cp.total_s).abs() < 1e-9 * cp.total_s);
    }

    #[test]
    fn tracing_does_not_change_results_or_clocks() {
        let program = |r: &mut Rank| {
            r.clock.compute(3.33e6 * (r.id() + 1) as f64, 1e5, 0.8);
            let s = r.allreduce_sum_scalar(0.1 * (r.id() as f64 + 1.0));
            (s, r.clock.now(), r.clock.breakdown())
        };
        let plain = run_world(4, &machine(), program);
        let traced_out = run_world_with(4, &machine(), traced(), program);
        assert_eq!(plain, traced_out);
    }

    #[test]
    fn uninstrumented_world_has_disabled_ledgers() {
        let out = run_world(2, &machine(), |r| {
            if r.id() == 0 {
                r.send(1, 1, vec![0.0; 8]);
            } else {
                let _ = r.recv(0, 1);
            }
            r.allreduce_sum_scalar(1.0);
            (r.ledger.is_enabled(), r.ledger.ops().len())
        });
        assert!(out.iter().all(|&(enabled, n)| !enabled && n == 0));
    }

    #[test]
    fn uninstrumented_world_records_nothing() {
        let snaps = run_world(2, &machine(), |r| {
            r.barrier();
            r.telemetry.snapshot()
        });
        assert!(snaps.iter().all(|s| s.spans.is_empty()));
    }
}
