//! Property-based tests for the message-passing substrate.

use fun3d_comm::ranktrace::critical_path;
use fun3d_comm::scatter::build_scatter_plans;
use fun3d_comm::smp::ThreadTeam;
use fun3d_comm::world::{run_world, run_world_with, WorldOptions};
use fun3d_memmodel::machine::MachineSpec;
use proptest::prelude::*;

fn traced() -> WorldOptions {
    WorldOptions {
        instrument: true,
        trace_ranks: true,
    }
}

/// Contiguous random split of `n` vertices over up to `nranks` ranks;
/// returns the owner array and the realized rank count.
fn random_path_partition(n: usize, nranks: usize, seed: u64) -> (Vec<u32>, usize) {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..nranks - 1).map(|_| rng.gen_range(1..n)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let nranks = cuts.len() + 1;
    let mut owner = vec![0u32; n];
    let mut r = 0u32;
    for (v, o) in owner.iter_mut().enumerate() {
        if cuts.contains(&v) {
            r += 1;
        }
        *o = r;
    }
    (owner, nranks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Allreduce-sum agrees with the sequential reduction in the same order,
    /// for any rank count and payload.
    #[test]
    fn allreduce_sum_matches_sequential(
        nranks in 1usize..7,
        len in 0usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let data: Vec<Vec<f64>> = (0..nranks)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(r as u64));
                (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
            })
            .collect();
        // Sequential reference in rank order (0 + 1 + 2 + ...), the same
        // order the star reduction uses, so agreement is bitwise.
        let mut expect = vec![0.0f64; len];
        for v in &data {
            for (e, x) in expect.iter_mut().zip(v) {
                *e += x;
            }
        }
        let out = run_world(nranks, &MachineSpec::asci_red(), |rank| {
            rank.allreduce_sum(&data[rank.id()])
        });
        for o in out {
            prop_assert_eq!(&o, &expect);
        }
    }

    /// Allreduce-max returns the global maximum on every rank.
    #[test]
    fn allreduce_max_is_global_max(nranks in 1usize..7, vals in proptest::collection::vec(-100.0f64..100.0, 1..7)) {
        let nranks = nranks.min(vals.len());
        let expect = vals[..nranks].iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let out = run_world(nranks, &MachineSpec::cray_t3e(), |rank| {
            rank.allreduce_max_scalar(vals[rank.id()])
        });
        for o in out {
            prop_assert_eq!(o, expect);
        }
    }

    /// Ghost exchange on a random path partition delivers owners' values.
    #[test]
    fn scatter_delivers_owner_values(n in 6usize..30, nranks in 2usize..5, seed in 0u64..500) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        // Contiguous random split of a path graph.
        let mut cuts: Vec<usize> = (0..nranks - 1).map(|_| rng.gen_range(1..n)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let nranks = cuts.len() + 1;
        let mut owner = vec![0u32; n];
        let mut r = 0u32;
        for (v, o) in owner.iter_mut().enumerate() {
            if cuts.contains(&v) {
                r += 1;
            }
            *o = r;
        }
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        let plans = build_scatter_plans(n, &owner, &edges, nranks);
        let outs = run_world(nranks, &MachineSpec::origin2000(), |rank| {
            let (owned, ghosts, plan) = &plans[rank.id()];
            let mut local = vec![0.0; owned.len() + ghosts.len()];
            for (l, &g) in owned.iter().enumerate() {
                local[l] = 1000.0 + g as f64;
            }
            plan.execute(rank, &mut local, owned.len(), 1, 3);
            (ghosts.clone(), local[owned.len()..].to_vec())
        });
        for (ghosts, values) in outs {
            for (g, v) in ghosts.iter().zip(&values) {
                prop_assert_eq!(*v, 1000.0 + *g as f64);
            }
        }
    }

    /// Static chunks always partition the iteration space exactly.
    #[test]
    fn team_chunks_partition(n in 0usize..200, nthreads in 1usize..9) {
        let team = ThreadTeam::new(nthreads);
        let mut covered = vec![false; n];
        for t in 0..nthreads {
            for i in team.chunk(n, t) {
                prop_assert!(!covered[i]);
                covered[i] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Ledger conservation: over all ranks, total point-to-point bytes (and
    /// message counts) sent equal bytes received, and per-rank ledger
    /// counts match the scatter plan's per-execute message counts.
    #[test]
    fn ledger_bytes_sent_equal_bytes_received(
        n in 6usize..30,
        nranks in 2usize..5,
        seed in 0u64..500,
        ncomp in 1usize..4,
        execs in 1usize..4,
    ) {
        let (owner, nranks) = random_path_partition(n, nranks, seed);
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        let plans = build_scatter_plans(n, &owner, &edges, nranks);
        let ledgers = run_world_with(nranks, &MachineSpec::asci_red(), traced(), |rank| {
            let (owned, ghosts, plan) = &plans[rank.id()];
            let mut local = vec![1.0; (owned.len() + ghosts.len()) * ncomp];
            for k in 0..execs {
                plan.execute(rank, &mut local, owned.len(), ncomp, 10 + k as u32);
            }
            let mut ledger = std::mem::take(&mut rank.ledger);
            ledger.close(rank.clock.now());
            ledger
        });
        let sent: f64 = ledgers.iter().map(|l| l.bytes_sent()).sum();
        let received: f64 = ledgers.iter().map(|l| l.bytes_received()).sum();
        prop_assert_eq!(sent, received);
        let nsends: usize = ledgers.iter().map(|l| l.nsends()).sum();
        let nrecvs: usize = ledgers.iter().map(|l| l.nrecvs()).sum();
        prop_assert_eq!(nsends, nrecvs);
        // Each execute posts exactly one message per neighbor.
        for (rank, ledger) in ledgers.iter().enumerate() {
            let neighbors = plans[rank].2.neighbors.len();
            prop_assert_eq!(ledger.nsends(), execs * neighbors);
            prop_assert_eq!(ledger.nrecvs(), execs * neighbors);
            // Ledger volume agrees with the clock's byte accounting.
            prop_assert_eq!(ledger.bytes_sent(), plans[rank].2.nsends() as f64 * ncomp as f64 * 8.0 * execs as f64);
        }
    }

    /// Critical-path invariants on random rank DAGs: the walk's total is
    /// the end-to-end time, at least every rank's busy (non-wait) time,
    /// and its parts account for the whole path.
    #[test]
    fn critical_path_bounds_busy_time(
        nranks in 1usize..6,
        rounds in 1usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        // Same seed on every rank: all ranks agree on the op sequence.
        let script: Vec<(u64, bool)> = {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..rounds).map(|_| (rng.gen_range(1..40), rng.gen_bool(0.5))).collect()
        };
        let out = run_world_with(nranks, &MachineSpec::cray_t3e(), traced(), |rank| {
            for (round, &(work, collective)) in script.iter().enumerate() {
                // Imbalanced compute: rank r does (r+1)x the base work.
                let flops = 1e6 * work as f64 * (rank.id() + 1) as f64;
                rank.clock.compute(flops, 0.0, 1.0);
                if collective || rank.nranks() == 1 {
                    rank.allreduce_sum_scalar(1.0);
                } else {
                    let next = (rank.id() + 1) % rank.nranks();
                    let prev = (rank.id() + rank.nranks() - 1) % rank.nranks();
                    rank.send(next, round as u32, vec![1.0; 8]);
                    let _ = rank.recv(prev, round as u32);
                }
            }
            let mut ledger = std::mem::take(&mut rank.ledger);
            ledger.close(rank.clock.now());
            let b = rank.clock.breakdown();
            (ledger, b.compute + b.scatter + b.reduction, rank.clock.now())
        });
        let ledgers: Vec<_> = out.iter().map(|(l, _, _)| l.clone()).collect();
        let cp = critical_path(&ledgers);
        let max_finish = out.iter().map(|&(_, _, t)| t).fold(0.0f64, f64::max);
        prop_assert!((cp.total_s - max_finish).abs() <= 1e-12 * max_finish.max(1.0));
        // Critical path dominates every rank's busy time.
        for &(_, busy, _) in &out {
            prop_assert!(
                cp.total_s >= busy - 1e-9 * busy.max(1.0),
                "critical path {} < busy {}", cp.total_s, busy
            );
        }
        // Every second along the path is attributed exactly once.
        prop_assert!((cp.accounted_s() - cp.total_s).abs() <= 1e-9 * cp.total_s.max(1.0));
        prop_assert!(cp.compute_s >= 0.0 && cp.exchange_s >= 0.0 && cp.wait_s >= 0.0);
    }

    /// Private-array reduction is exactly the sequential accumulation.
    #[test]
    fn private_reduce_matches_sequential(n in 1usize..120, nthreads in 1usize..5, width in 1usize..9) {
        let team = ThreadTeam::new(nthreads);
        let mut expect = vec![0.0; width];
        for i in 0..n {
            expect[i % width] += (i * i) as f64;
        }
        let mut got = vec![0.0; width];
        team.parallel_for_private_reduce(n, &mut got, |_, range, private| {
            for i in range {
                private[i % width] += (i * i) as f64;
            }
        });
        prop_assert_eq!(got, expect);
    }
}
