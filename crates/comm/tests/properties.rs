//! Property-based tests for the message-passing substrate.

use fun3d_comm::scatter::build_scatter_plans;
use fun3d_comm::smp::ThreadTeam;
use fun3d_comm::world::run_world;
use fun3d_memmodel::machine::MachineSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Allreduce-sum agrees with the sequential reduction in the same order,
    /// for any rank count and payload.
    #[test]
    fn allreduce_sum_matches_sequential(
        nranks in 1usize..7,
        len in 0usize..6,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let data: Vec<Vec<f64>> = (0..nranks)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(r as u64));
                (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
            })
            .collect();
        // Sequential reference in rank order (0 + 1 + 2 + ...), the same
        // order the star reduction uses, so agreement is bitwise.
        let mut expect = vec![0.0f64; len];
        for v in &data {
            for (e, x) in expect.iter_mut().zip(v) {
                *e += x;
            }
        }
        let out = run_world(nranks, &MachineSpec::asci_red(), |rank| {
            rank.allreduce_sum(&data[rank.id()])
        });
        for o in out {
            prop_assert_eq!(&o, &expect);
        }
    }

    /// Allreduce-max returns the global maximum on every rank.
    #[test]
    fn allreduce_max_is_global_max(nranks in 1usize..7, vals in proptest::collection::vec(-100.0f64..100.0, 1..7)) {
        let nranks = nranks.min(vals.len());
        let expect = vals[..nranks].iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let out = run_world(nranks, &MachineSpec::cray_t3e(), |rank| {
            rank.allreduce_max_scalar(vals[rank.id()])
        });
        for o in out {
            prop_assert_eq!(o, expect);
        }
    }

    /// Ghost exchange on a random path partition delivers owners' values.
    #[test]
    fn scatter_delivers_owner_values(n in 6usize..30, nranks in 2usize..5, seed in 0u64..500) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        // Contiguous random split of a path graph.
        let mut cuts: Vec<usize> = (0..nranks - 1).map(|_| rng.gen_range(1..n)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let nranks = cuts.len() + 1;
        let mut owner = vec![0u32; n];
        let mut r = 0u32;
        for (v, o) in owner.iter_mut().enumerate() {
            if cuts.contains(&v) {
                r += 1;
            }
            *o = r;
        }
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        let plans = build_scatter_plans(n, &owner, &edges, nranks);
        let outs = run_world(nranks, &MachineSpec::origin2000(), |rank| {
            let (owned, ghosts, plan) = &plans[rank.id()];
            let mut local = vec![0.0; owned.len() + ghosts.len()];
            for (l, &g) in owned.iter().enumerate() {
                local[l] = 1000.0 + g as f64;
            }
            plan.execute(rank, &mut local, owned.len(), 1, 3);
            (ghosts.clone(), local[owned.len()..].to_vec())
        });
        for (ghosts, values) in outs {
            for (g, v) in ghosts.iter().zip(&values) {
                prop_assert_eq!(*v, 1000.0 + *g as f64);
            }
        }
    }

    /// Static chunks always partition the iteration space exactly.
    #[test]
    fn team_chunks_partition(n in 0usize..200, nthreads in 1usize..9) {
        let team = ThreadTeam::new(nthreads);
        let mut covered = vec![false; n];
        for t in 0..nthreads {
            for i in team.chunk(n, t) {
                prop_assert!(!covered[i]);
                covered[i] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Private-array reduction is exactly the sequential accumulation.
    #[test]
    fn private_reduce_matches_sequential(n in 1usize..120, nthreads in 1usize..5, width in 1usize..9) {
        let team = ThreadTeam::new(nthreads);
        let mut expect = vec![0.0; width];
        for i in 0..n {
            expect[i % width] += (i * i) as f64;
        }
        let mut got = vec![0.0; width];
        team.parallel_for_private_reduce(n, &mut got, |_, range, private| {
            for i in range {
                private[i % width] += (i * i) as f64;
            }
        });
        prop_assert_eq!(got, expect);
    }
}
