//! `fun3d` — the command-line solver, in the spirit of the original
//! PETSc-FUN3D executable and its runtime options.
//!
//! ```sh
//! fun3d --vertices 20000 --model incompressible --cfl0 10 --ilu 1 \
//!       --subdomains 8 --overlap 0 --order 2 --vtk flow.vtk
//! ```
//!
//! Prints a PETSc-style run summary: mesh statistics, per-step convergence,
//! phase timings, and (optionally) writes the flow field for ParaView.

use fun3d_core::config::{apply_orderings, LayoutConfig};
use fun3d_core::output::write_vtk_file;
use fun3d_core::problem::EulerProblem;
use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_mesh::metrics::{mesh_quality, ordering_metrics};
use fun3d_partition::partition_kway;
use fun3d_solver::gmres::GmresOptions;
use fun3d_solver::pseudo::{solve_pseudo_transient, Forcing, PrecondSpec, PseudoTransientOptions};
use fun3d_sparse::ilu::IluOptions;

struct Options {
    vertices: usize,
    model: FlowModel,
    order: SpatialOrder,
    cfl0: f64,
    cfl_exponent: f64,
    max_steps: usize,
    rtol: f64,
    reduction: f64,
    restart: usize,
    ilu_fill: usize,
    subdomains: usize,
    overlap: usize,
    matrix_free: bool,
    blocked: bool,
    second_order_switch: Option<f64>,
    viscosity: f64,
    vtk: Option<String>,
    quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 10_000,
            model: FlowModel::incompressible(),
            order: SpatialOrder::First,
            cfl0: 5.0,
            cfl_exponent: 1.2,
            max_steps: 100,
            rtol: 1e-2,
            reduction: 1e-10,
            restart: 20,
            ilu_fill: 1,
            subdomains: 1,
            overlap: 0,
            matrix_free: false,
            blocked: true,
            second_order_switch: None,
            viscosity: 0.0,
            vtk: None,
            quiet: false,
        }
    }
}

const USAGE: &str = "\
fun3d — pseudo-transient Newton-Krylov-Schwarz Euler solver

Options (PETSc-FUN3D style):
  --vertices <n>       target mesh size                      [10000]
  --model <m>          incompressible | compressible         [incompressible]
  --order <1|2|2lim>   spatial order (2lim = limited MUSCL)  [1]
  --order-switch <r>   switch 1st->2nd order at reduction r
  --cfl0 <v>           initial CFL number                    [5]
  --cfl-exponent <p>   SER power-law exponent                [1.2]
  --max-steps <n>      pseudo-timestep limit                 [100]
  --rtol <v>           inner (Krylov) relative tolerance     [1e-2]
  --reduction <v>      outer residual reduction target       [1e-10]
  --restart <m>        GMRES restart dimension               [20]
  --ilu <k>            ILU fill level                        [1]
  --subdomains <n>     Schwarz subdomain count (1 = global)  [1]
  --overlap <d>        Schwarz overlap                       [0]
  --viscosity <mu>     laminar viscosity (0 = Euler)         [0]
  --matrix-free        matrix-free Jacobian-vector products
  --no-blocking        disable BCSR structural blocking
  --vtk <path>         write the converged field (legacy VTK)
  --quiet              suppress per-step output
  --help               this text
";

fn parse_args() -> Options {
    let mut o = Options::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| {
                eprintln!("missing value for {}", args[*i - 1]);
                std::process::exit(2);
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--vertices" => o.vertices = value(&mut i).parse().expect("--vertices"),
            "--model" => {
                o.model = match value(&mut i).as_str() {
                    "incompressible" => FlowModel::incompressible(),
                    "compressible" => FlowModel::compressible(),
                    other => {
                        eprintln!("unknown model {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--order" => {
                o.order = match value(&mut i).as_str() {
                    "1" => SpatialOrder::First,
                    "2" => SpatialOrder::Second,
                    "2lim" => SpatialOrder::SecondLimited,
                    other => {
                        eprintln!("unknown order {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--order-switch" => {
                o.second_order_switch = Some(value(&mut i).parse().expect("--order-switch"))
            }
            "--cfl0" => o.cfl0 = value(&mut i).parse().expect("--cfl0"),
            "--cfl-exponent" => o.cfl_exponent = value(&mut i).parse().expect("--cfl-exponent"),
            "--max-steps" => o.max_steps = value(&mut i).parse().expect("--max-steps"),
            "--rtol" => o.rtol = value(&mut i).parse().expect("--rtol"),
            "--reduction" => o.reduction = value(&mut i).parse().expect("--reduction"),
            "--restart" => o.restart = value(&mut i).parse().expect("--restart"),
            "--ilu" => o.ilu_fill = value(&mut i).parse().expect("--ilu"),
            "--subdomains" => o.subdomains = value(&mut i).parse().expect("--subdomains"),
            "--overlap" => o.overlap = value(&mut i).parse().expect("--overlap"),
            "--viscosity" => o.viscosity = value(&mut i).parse().expect("--viscosity"),
            "--matrix-free" => o.matrix_free = true,
            "--no-blocking" => o.blocked = false,
            "--vtk" => o.vtk = Some(value(&mut i)),
            "--quiet" => o.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o
}

fn main() {
    let o = parse_args();
    let ncomp = o.model.ncomp();

    // --- Mesh ---
    let spec = BumpChannelSpec::with_target_vertices(o.vertices);
    let layout_cfg = LayoutConfig::tuned();
    let mesh = apply_orderings(
        spec.build(),
        layout_cfg.vertex_ordering,
        layout_cfg.edge_ordering,
    );
    let quality = mesh_quality(&mesh);
    let g = mesh.vertex_graph();
    let id: Vec<usize> = (0..g.n()).collect();
    let om = ordering_metrics(&g, &id);
    println!(
        "mesh: {} vertices, {} tets, {} edges",
        mesh.nverts(),
        mesh.ntets(),
        mesh.nedges()
    );
    println!(
        "      bandwidth {} | mean wavefront {:.0} | mean degree {:.1} | min tet volume {:.2e}",
        om.bandwidth, om.mean_wavefront, quality.mean_degree, quality.min_volume
    );
    println!(
        "model: {} ({} unknowns/vertex, {} total), order {:?}{}",
        if ncomp == 4 {
            "incompressible Euler"
        } else {
            "compressible Euler"
        },
        ncomp,
        mesh.nverts() * ncomp,
        o.order,
        if o.viscosity > 0.0 { " + viscous" } else { "" },
    );

    // --- Preconditioner spec ---
    let ilu = IluOptions::with_fill(o.ilu_fill);
    let precond = if o.subdomains > 1 {
        let part = partition_kway(&g, o.subdomains, 7);
        let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); o.subdomains];
        for (v, &p) in part.part.iter().enumerate() {
            for c in 0..ncomp {
                owned_sets[p as usize].push(v * ncomp + c);
            }
        }
        println!(
            "preconditioner: RASM, {} subdomains, overlap {}, ILU({})",
            o.subdomains, o.overlap, o.ilu_fill
        );
        PrecondSpec::Schwarz {
            owned_sets,
            overlap: o.overlap,
            ilu,
            restricted: true,
        }
    } else if o.blocked {
        println!("preconditioner: global block-ILU(0), b = {ncomp}");
        PrecondSpec::BlockIlu { block: ncomp }
    } else {
        println!("preconditioner: global ILU({})", o.ilu_fill);
        PrecondSpec::Ilu(ilu)
    };

    // --- Solve ---
    let mut disc = Discretization::new(&mesh, o.model, layout_cfg.field_layout(), o.order);
    if o.viscosity > 0.0 {
        disc = disc.with_viscosity(o.viscosity);
    }
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();
    let opts = PseudoTransientOptions {
        cfl0: o.cfl0,
        cfl_exponent: o.cfl_exponent,
        cfl_max: 1e6,
        max_steps: o.max_steps,
        target_reduction: o.reduction,
        krylov: GmresOptions {
            restart: o.restart,
            rtol: o.rtol,
            max_iters: 10 * o.restart,
            ..Default::default()
        },
        precond,
        second_order_switch: o.second_order_switch,
        matrix_free: o.matrix_free,
        line_search: true,
        bcsr_block: if o.blocked && o.subdomains <= 1 {
            Some(ncomp)
        } else {
            None
        },
        forcing: Forcing::Constant,
        pc_refresh: 1,
    };
    let t0 = std::time::Instant::now();
    let history = solve_pseudo_transient(&mut problem, &mut q, &opts);
    let wall = t0.elapsed().as_secs_f64();

    if !o.quiet {
        for s in &history.steps {
            println!(
                "  {:4}  CFL {:9.3e}  |R| {:12.6e}  lin {:4}  alpha {:.2}",
                s.step, s.cfl, s.residual_norm, s.linear_iters, s.step_length
            );
        }
    }
    let phases = history.phases();
    println!("---");
    println!(
        "{} in {} steps, {} linear iterations, {:.3}s wall",
        if history.converged {
            "CONVERGED"
        } else {
            "NOT CONVERGED"
        },
        history.nsteps(),
        history.total_linear_iters(),
        wall
    );
    println!(
        "residual {:.3e} -> {:.3e} (reduction {:.2e})",
        history.initial_residual,
        history.final_residual,
        history.reduction()
    );
    println!(
        "phases: residual {:.2}s | jacobian {:.2}s | preconditioner {:.2}s | krylov {:.2}s",
        phases.residual, phases.jacobian, phases.precond, phases.krylov
    );

    // --- Forces & output ---
    let field = FieldVec::from_vec(q, mesh.nverts(), ncomp, layout_cfg.field_layout());
    let disc = Discretization::new(&mesh, o.model, layout_cfg.field_layout(), o.order);
    let f = disc.wall_forces(&field);
    println!(
        "wall pressure force: [{:+.5e}, {:+.5e}, {:+.5e}]",
        f[0], f[1], f[2]
    );
    if let Some(path) = &o.vtk {
        write_vtk_file(std::path::Path::new(path), &mesh, Some((&field, &o.model)))
            .expect("VTK write failed");
        println!("wrote {path}");
    }
    if !history.converged {
        std::process::exit(1);
    }
}
