//! Solve-state checkpointing.
//!
//! Design-optimization workflows run "many analysis cycles" (Section 1.1);
//! production runs on shared machines also need to survive queue limits.
//! A checkpoint captures the minimum needed to resume pseudo-transient
//! continuation: the state vector, the step index, and the SER reference
//! norm.  The format is a self-describing text file (hex-encoded IEEE bits,
//! so the round-trip is exact) with no dependencies.

use std::io::{self, BufRead, Write};

/// A resumable ΨNKS solve state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Pseudo-timestep index at which the checkpoint was taken.
    pub step: usize,
    /// Residual norm at the checkpoint.
    pub residual_norm: f64,
    /// The SER reference norm (`||f(u_0)||` of the current phase).
    pub ser_reference: f64,
    /// The state vector (layout is the caller's contract).
    pub q: Vec<f64>,
}

const MAGIC: &str = "petsc-fun3d-repro checkpoint v1";

impl Checkpoint {
    /// Serialize to a writer.
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "step {}", self.step)?;
        writeln!(w, "residual_norm {:016x}", self.residual_norm.to_bits())?;
        writeln!(w, "ser_reference {:016x}", self.ser_reference.to_bits())?;
        writeln!(w, "n {}", self.q.len())?;
        for v in &self.q {
            writeln!(w, "{:016x}", v.to_bits())?;
        }
        Ok(())
    }

    /// Deserialize from a reader.
    ///
    /// Returns `InvalidData` on any malformed content.
    pub fn load<R: BufRead>(r: &mut R) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut lines = r.lines();
        let mut next = |what: &str| -> io::Result<String> {
            lines
                .next()
                .ok_or_else(|| bad(&format!("missing {what}")))?
        };
        if next("magic")? != MAGIC {
            return Err(bad("bad magic line"));
        }
        let parse_field = |line: String, key: &str| -> io::Result<String> {
            let mut it = line.splitn(2, ' ');
            if it.next() != Some(key) {
                return Err(bad(&format!("expected field {key}")));
            }
            it.next()
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing value for {key}")))
        };
        let step: usize = parse_field(next("step")?, "step")?
            .parse()
            .map_err(|_| bad("bad step"))?;
        let rn = u64::from_str_radix(&parse_field(next("residual_norm")?, "residual_norm")?, 16)
            .map_err(|_| bad("bad residual_norm"))?;
        let sr = u64::from_str_radix(&parse_field(next("ser_reference")?, "ser_reference")?, 16)
            .map_err(|_| bad("bad ser_reference"))?;
        let n: usize = parse_field(next("n")?, "n")?
            .parse()
            .map_err(|_| bad("bad n"))?;
        let mut q = Vec::with_capacity(n);
        for _ in 0..n {
            let bits = u64::from_str_radix(&next("value")?, 16).map_err(|_| bad("bad value"))?;
            q.push(f64::from_bits(bits));
        }
        Ok(Self {
            step,
            residual_norm: f64::from_bits(rn),
            ser_reference: f64::from_bits(sr),
            q,
        })
    }

    /// Save to a file path.
    pub fn save_file(&self, path: &std::path::Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut f)
    }

    /// Load from a file path.
    pub fn load_file(path: &std::path::Path) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut f)
    }

    /// [`Self::save_file`] plus a `Checkpoint` record in the run's event
    /// stream, so `fun3d-report` can show where a run saved its state.
    pub fn save_file_with_events(
        &self,
        path: &std::path::Path,
        events: &fun3d_telemetry::events::EventSink,
    ) -> io::Result<()> {
        self.save_file(path)?;
        events.emit(fun3d_telemetry::events::EventRecord::Checkpoint {
            step: self.step as u64,
            path: path.display().to_string(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 17,
            residual_norm: 3.125e-7,
            ser_reference: 0.998877,
            q: vec![
                1.0,
                -2.5,
                std::f64::consts::PI,
                1e-300,
                -0.0,
                f64::MIN_POSITIVE,
            ],
        }
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let c = sample();
        let mut buf = Vec::new();
        c.save(&mut buf).unwrap();
        let d = Checkpoint::load(&mut io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(c.step, d.step);
        assert_eq!(c.residual_norm.to_bits(), d.residual_norm.to_bits());
        assert_eq!(c.ser_reference.to_bits(), d.ser_reference.to_bits());
        assert_eq!(c.q.len(), d.q.len());
        for (a, b) in c.q.iter().zip(&d.q) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"not a checkpoint\n".to_vec();
        assert!(Checkpoint::load(&mut io::BufReader::new(&buf[..])).is_err());
    }

    #[test]
    fn rejects_truncated_data() {
        let c = sample();
        let mut buf = Vec::new();
        c.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 20);
        assert!(Checkpoint::load(&mut io::BufReader::new(&buf[..])).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let c = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("fun3d_ckpt_test.txt");
        c.save_file(&path).unwrap();
        let d = Checkpoint::load_file(&path).unwrap();
        assert_eq!(c, d);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_with_events_emits_checkpoint_record() {
        use fun3d_telemetry::events::{EventRecord, EventSink};
        let c = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("fun3d_ckpt_event_test.txt");
        let sink = EventSink::enabled();
        c.save_file_with_events(&path, &sink).unwrap();
        let evs = sink.drain();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            EventRecord::Checkpoint { step, path: p } => {
                assert_eq!(*step, 17);
                assert!(p.ends_with("fun3d_ckpt_event_test.txt"));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // The file itself is still a valid checkpoint.
        assert_eq!(Checkpoint::load_file(&path).unwrap(), c);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_continues_a_solve() {
        // Solve half-way, checkpoint, restore into a fresh solve, and check
        // the final state matches an uninterrupted run.
        use crate::config::CaseConfig;
        use crate::problem::EulerProblem;
        use fun3d_euler::residual::Discretization;
        use fun3d_solver::pseudo::solve_pseudo_transient;

        let mut cfg = CaseConfig::small();
        cfg.mesh = fun3d_mesh::generator::BumpChannelSpec::with_dims(6, 5, 5);
        cfg.nks.max_steps = 30;
        cfg.nks.target_reduction = 1e-8;
        let mesh = cfg.build_mesh();

        // Uninterrupted run.
        let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
        let mut p = EulerProblem::new(disc);
        let mut q_full = p.initial_state();
        let h_full = solve_pseudo_transient(&mut p, &mut q_full, &cfg.nks);
        assert!(h_full.converged);

        // Interrupted at 10 steps, checkpointed, resumed.
        let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
        let mut p = EulerProblem::new(disc);
        let mut q = p.initial_state();
        let mut opts = cfg.nks.clone();
        opts.max_steps = 10;
        opts.target_reduction = 0.0;
        let h1 = solve_pseudo_transient(&mut p, &mut q, &opts);
        let ck = Checkpoint {
            step: h1.nsteps(),
            residual_norm: h1.final_residual,
            ser_reference: h1.initial_residual,
            q: q.clone(),
        };
        let mut buf = Vec::new();
        ck.save(&mut buf).unwrap();
        let restored = Checkpoint::load(&mut io::BufReader::new(&buf[..])).unwrap();
        // Resume: CFL continuity comes from seeding cfl0 with the SER value
        // the interrupted run had reached.
        let mut q2 = restored.q.clone();
        let mut opts2 = cfg.nks.clone();
        opts2.cfl0 = cfg.nks.cfl0
            * (restored.ser_reference / restored.residual_norm).powf(cfg.nks.cfl_exponent);
        opts2.max_steps = 40;
        let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
        let mut p2 = EulerProblem::new(disc);
        let h2 = solve_pseudo_transient(&mut p2, &mut q2, &opts2);
        assert!(
            h2.converged,
            "resumed run must finish: {:.2e}",
            h2.reduction()
        );
        // The two end states agree to solver tolerance.
        let scale = q_full.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in q_full.iter().zip(&q2) {
            assert!((a - b).abs() / scale < 1e-5, "{a} vs {b}");
        }
    }
}
