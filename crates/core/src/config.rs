//! Case configuration: every tunable the paper sweeps, in one place.

use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::SpatialOrder;
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_mesh::reorder::{edge_order, vertex_permutation, EdgeOrdering, VertexOrdering};
use fun3d_mesh::tet::TetMesh;
use fun3d_solver::pseudo::PseudoTransientOptions;
use fun3d_sparse::layout::FieldLayout;

/// The three data-layout enhancements of Table 1 plus the orderings behind
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutConfig {
    /// Field interlacing (Section 2.1.1). Off = segregated/vector layout.
    pub interlaced: bool,
    /// Structural blocking of the Jacobian (Section 2.1.2). Requires
    /// interlacing (a blocked matrix only exists when the unknowns at a
    /// point are adjacent).
    pub blocked: bool,
    /// Edge ordering (Section 2.1.3). `VectorColored` is the original
    /// FUN3D / "NOER" baseline; `VertexSorted` is the paper's reordering.
    pub edge_ordering: EdgeOrdering,
    /// Vertex ordering. The paper pairs edge reordering with RCM.
    pub vertex_ordering: VertexOrdering,
}

impl LayoutConfig {
    /// The fully tuned configuration (last row of Table 1).
    pub fn tuned() -> Self {
        Self {
            interlaced: true,
            blocked: true,
            edge_ordering: EdgeOrdering::VertexSorted,
            vertex_ordering: VertexOrdering::ReverseCuthillMcKee,
        }
    }

    /// The untuned vector-machine baseline (first row of Table 1): colored
    /// edges and no cache-aware vertex numbering.
    pub fn baseline() -> Self {
        Self {
            interlaced: false,
            blocked: false,
            edge_ordering: EdgeOrdering::VectorColored,
            vertex_ordering: VertexOrdering::Random(0xF3D0),
        }
    }

    /// The six rows of Table 1, in the paper's order:
    /// (interlacing, blocking, edge reordering).
    pub fn table1_rows() -> Vec<(Self, [bool; 3])> {
        let combos = [
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, true],
            [true, false, true],
            [true, true, true],
        ];
        combos
            .iter()
            .map(|&[inter, blk, reord]| {
                (
                    Self {
                        interlaced: inter,
                        blocked: blk,
                        edge_ordering: if reord {
                            EdgeOrdering::VertexSorted
                        } else {
                            EdgeOrdering::VectorColored
                        },
                        // The original FUN3D grids carried no cache-aware
                        // numbering (they were vector-tuned); a seeded
                        // shuffle models that baseline, RCM the tuned rows.
                        vertex_ordering: if reord {
                            VertexOrdering::ReverseCuthillMcKee
                        } else {
                            VertexOrdering::Random(0xF3D0)
                        },
                    },
                    [inter, blk, reord],
                )
            })
            .collect()
    }

    /// The unknown layout this config induces.
    pub fn field_layout(&self) -> FieldLayout {
        if self.interlaced {
            FieldLayout::Interlaced
        } else {
            FieldLayout::Segregated
        }
    }
}

/// A full experiment case.
#[derive(Debug, Clone)]
pub struct CaseConfig {
    /// Mesh generator parameters.
    pub mesh: BumpChannelSpec,
    /// Flow model (incompressible: 4 dof/vertex; compressible: 5).
    pub model: FlowModel,
    /// Data layout enhancements.
    pub layout: LayoutConfig,
    /// Spatial order of the residual at start.
    pub order: SpatialOrder,
    /// ΨNKS options (CFL law, Krylov, preconditioner).
    pub nks: PseudoTransientOptions,
}

impl CaseConfig {
    /// A small default case: tuned layout, incompressible, first order.
    pub fn small() -> Self {
        Self {
            mesh: BumpChannelSpec::with_dims(12, 8, 8),
            model: FlowModel::incompressible(),
            layout: LayoutConfig::tuned(),
            order: SpatialOrder::First,
            nks: PseudoTransientOptions::default(),
        }
    }

    /// Build the mesh with this case's vertex and edge orderings applied.
    pub fn build_mesh(&self) -> TetMesh {
        let mesh = self.mesh.build();
        apply_orderings(mesh, self.layout.vertex_ordering, self.layout.edge_ordering)
    }

    /// The block size structural blocking would use (the component count).
    pub fn block_size(&self) -> usize {
        self.model.ncomp()
    }
}

/// Renumber vertices and reorder edges per the given strategies.
pub fn apply_orderings(mesh: TetMesh, vord: VertexOrdering, eord: EdgeOrdering) -> TetMesh {
    let g = mesh.vertex_graph();
    let perm = vertex_permutation(&g, vord);
    let mut mesh = mesh.renumber_vertices(&perm);
    let order = edge_order(mesh.edges(), mesh.nverts(), eord);
    mesh.reorder_edges(&order);
    mesh
}

/// A record of one configured run, convertible to a
/// [`fun3d_telemetry::report::PerfReport`] for EXPERIMENTS.md tooling.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Human-readable experiment id (e.g. "table1-row3").
    pub experiment: String,
    /// Mesh vertices.
    pub nverts: usize,
    /// Quantity name -> value.
    pub metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// Convert into the stable `fun3d-perf/1` JSON report schema.
    pub fn to_perf_report(&self) -> fun3d_telemetry::report::PerfReport {
        let mut r = fun3d_telemetry::report::PerfReport::new(self.experiment.clone())
            .with_meta("nverts", self.nverts.to_string());
        for (k, v) in &self.metrics {
            r.push_metric(k.clone(), *v);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_in_paper_order() {
        let rows = LayoutConfig::table1_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].1, [false, false, false]);
        assert_eq!(rows[5].1, [true, true, true]);
        // Blocking only appears with interlacing.
        for (cfg, _) in &rows {
            if cfg.blocked {
                assert!(cfg.interlaced);
            }
        }
    }

    #[test]
    fn orderings_change_edge_sequence_not_geometry() {
        let cfg = CaseConfig::small();
        let baseline = CaseConfig {
            layout: LayoutConfig::baseline(),
            ..cfg.clone()
        };
        let m1 = cfg.build_mesh();
        let m2 = baseline.build_mesh();
        assert_eq!(m1.nverts(), m2.nverts());
        assert_eq!(m1.nedges(), m2.nedges());
        assert!((m1.total_volume() - m2.total_volume()).abs() < 1e-9);
        assert!(m1.closure_residual() < 1e-9);
        assert!(m2.closure_residual() < 1e-9);
        // The tuned mesh has sorted edges; the baseline (colored) does not.
        let sorted = |m: &TetMesh| m.edges().windows(2).all(|w| w[0] <= w[1]);
        assert!(sorted(&m1));
        assert!(!sorted(&m2));
    }

    #[test]
    fn rcm_reduces_graph_bandwidth_on_the_case_mesh() {
        let cfg = CaseConfig::small();
        let tuned = cfg.build_mesh();
        let shuffled = apply_orderings(
            cfg.mesh.build(),
            VertexOrdering::Random(42),
            EdgeOrdering::VertexSorted,
        );
        let bt = tuned.vertex_graph().bandwidth();
        let bs = shuffled.vertex_graph().bandwidth();
        assert!(bt * 4 < bs, "RCM {bt} vs shuffled {bs}");
    }

    #[test]
    fn block_size_follows_model() {
        let mut cfg = CaseConfig::small();
        assert_eq!(cfg.block_size(), 4);
        cfg.model = FlowModel::compressible();
        assert_eq!(cfg.block_size(), 5);
    }
}
