//! Distributed linear algebra over the `fun3d-comm` substrate — the PETSc
//! `MPIAIJ` + `KSP` analogue used by the parallel experiments.
//!
//! The global matrix rows are partitioned by ownership; each rank holds its
//! row block with columns renumbered into "owned + ghost" local space, a
//! [`ScatterPlan`] refreshing the ghosts, and an ILU factorization of its
//! diagonal block (block-Jacobi preconditioning, the paper's baseline).
//! Distributed GMRES then needs one ghost scatter per matvec and one
//! allreduce per inner product — exactly the communication pattern whose
//! scaling Table 3 dissects.  Every local operation also advances the
//! rank's simulated clock through the machine model, so the same run yields
//! both *real* results and *simulated* times at the paper's scales.

use fun3d_comm::scatter::{build_scatter_plans, ScatterPlan};
use fun3d_comm::world::{run_world, Rank};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_solver::gmres::{GmresOptions, GmresResult};
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::{IluFactors, IluOptions};
use fun3d_sparse::vec_ops;

/// A rank's slice of a row-partitioned global matrix.
pub struct DistributedMatrix {
    /// Global indices of owned rows (ascending).
    pub owned_rows: Vec<usize>,
    /// Global indices of ghost columns (grouped by owner, matching `plan`).
    pub ghost_cols: Vec<usize>,
    /// Local matrix: `nowned x (nowned + nghosts)`, columns in local space.
    pub local: CsrMatrix,
    /// The ghost-refresh plan.
    pub plan: ScatterPlan,
}

impl DistributedMatrix {
    /// Extract rank `me`'s slice of `a` under the row ownership `owner`.
    ///
    /// The pattern of `a` must be structurally symmetric (true for the FE/FV
    /// Jacobians here) so the scatter plan derived from it is consistent on
    /// both sides.
    pub fn from_global(a: &CsrMatrix, owner: &[u32], nranks: usize, me: usize) -> Self {
        let plans = build_plans_for_matrix(a, owner, nranks);
        Self::from_plan(a, &plans[me])
    }

    /// Build from a precomputed `(owned, ghosts, plan)` triple (shared setup
    /// across ranks).
    pub fn from_plan(a: &CsrMatrix, triple: &(Vec<usize>, Vec<usize>, ScatterPlan)) -> Self {
        let (owned_rows, ghost_cols, plan) = triple;
        let n = a.nrows();
        let mut col_map = vec![u32::MAX; n];
        for (l, &g) in owned_rows.iter().enumerate() {
            col_map[g] = l as u32;
        }
        for (l, &g) in ghost_cols.iter().enumerate() {
            col_map[g] = (owned_rows.len() + l) as u32;
        }
        let mut row_ptr = Vec::with_capacity(owned_rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for &g in owned_rows {
            scratch.clear();
            for (k, &c) in a.row_cols(g).iter().enumerate() {
                let lc = col_map[c as usize];
                assert!(
                    lc != u32::MAX,
                    "column {c} of row {g} is neither owned nor ghosted — pattern not symmetric?"
                );
                scratch.push((lc, a.row_vals(g)[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let local = CsrMatrix::from_raw(
            owned_rows.len(),
            owned_rows.len() + ghost_cols.len(),
            row_ptr,
            col_idx,
            values,
        );
        Self {
            owned_rows: owned_rows.clone(),
            ghost_cols: ghost_cols.clone(),
            local,
            plan: plan.clone(),
        }
    }

    /// Owned row count.
    pub fn nowned(&self) -> usize {
        self.owned_rows.len()
    }

    /// Ghost column count.
    pub fn nghosts(&self) -> usize {
        self.ghost_cols.len()
    }

    /// The square diagonal block (owned columns only), for block-Jacobi ILU.
    pub fn diagonal_block(&self) -> CsrMatrix {
        let nowned = self.nowned();
        let mut row_ptr = Vec::with_capacity(nowned + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0usize);
        for i in 0..nowned {
            for (k, &c) in self.local.row_cols(i).iter().enumerate() {
                if (c as usize) < nowned {
                    col_idx.push(c);
                    values.push(self.local.row_vals(i)[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(nowned, nowned, row_ptr, col_idx, values)
    }

    /// Distributed SpMV: refresh ghosts of `x`, multiply into `y` (owned
    /// rows only). `x` must be `nowned + nghosts` long; `tag` disambiguates
    /// concurrent exchanges. Charges the simulated clock.
    pub fn spmv(&self, rank: &mut Rank, x: &mut [f64], y: &mut [f64], tag: u32) {
        self.plan.execute(rank, x, self.nowned(), 1, tag);
        self.local.spmv(x, y);
        let nnz = self.local.nnz() as f64;
        rank.clock.compute(2.0 * nnz, 12.0 * nnz, 1.0);
    }
}

/// Build all per-rank `(owned, ghosts, plan)` triples from the matrix
/// pattern (structurally symmetric).
pub fn build_plans_for_matrix(
    a: &CsrMatrix,
    owner: &[u32],
    nranks: usize,
) -> Vec<(Vec<usize>, Vec<usize>, ScatterPlan)> {
    let mut edges: Vec<[u32; 2]> = Vec::new();
    for i in 0..a.nrows() {
        for &c in a.row_cols(i) {
            let j = c as usize;
            if j > i {
                edges.push([i as u32, c]);
            }
        }
    }
    build_scatter_plans(a.nrows(), owner, &edges, nranks)
}

/// Distributed dot product (deterministic allreduce). Charges the clock for
/// the local work.
pub fn ddot(rank: &mut Rank, x: &[f64], y: &[f64]) -> f64 {
    let local = vec_ops::dot(x, y);
    let n = x.len() as f64;
    rank.clock.compute(2.0 * n, 16.0 * n, 1.0);
    rank.allreduce_sum_scalar(local)
}

/// Distributed 2-norm.
pub fn dnorm2(rank: &mut Rank, x: &[f64]) -> f64 {
    ddot(rank, x, x).sqrt()
}

/// Distributed, block-Jacobi/ILU-preconditioned, restarted GMRES.
///
/// `x` and `b` are the owned parts; `x` carries the initial guess in and the
/// solution out.  The algorithm and its floating-point reduction order match
/// the sequential [`fun3d_solver::gmres::gmres`] with an
/// [`fun3d_solver::precond::AdditiveSchwarz::block_jacobi`] preconditioner
/// over the same row sets, so iteration counts agree exactly.
#[allow(clippy::too_many_arguments)]
pub fn dist_gmres(
    rank: &mut Rank,
    mat: &DistributedMatrix,
    prec: &IluFactors,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    let nowned = mat.nowned();
    assert_eq!(b.len(), nowned);
    assert_eq!(x.len(), nowned);
    let restart = opts.restart;
    let norm_b = dnorm2(rank, b);
    let target = (opts.rtol * norm_b).max(opts.atol);

    let mut total_iters = 0usize;
    let mut tag = 1000u32;
    let mut full = vec![0.0; nowned + mat.nghosts()];
    let mut r = vec![0.0; nowned];
    let mut w = vec![0.0; nowned];
    let mut z = vec![0.0; nowned];
    let mut v: Vec<Vec<f64>> = Vec::new();
    let mut h: Vec<Vec<f64>> = Vec::new();
    let mut cs = vec![0.0f64; restart + 1];
    let mut sn = vec![0.0f64; restart + 1];
    let mut g = vec![0.0f64; restart + 1];

    let prec_apply = |rank: &mut Rank, prec: &IluFactors, r: &[f64], z: &mut [f64]| {
        prec.solve(r, z);
        let nnz = prec.nnz() as f64;
        rank.clock
            .compute(2.0 * nnz, (prec.value_bytes() + prec.nnz() * 4) as f64, 1.0);
    };

    loop {
        // r = b - A x.
        full[..nowned].copy_from_slice(x);
        tag += 1;
        mat.spmv(rank, &mut full, &mut r, tag);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = dnorm2(rank, &r);
        if beta <= target || total_iters >= opts.max_iters {
            return GmresResult {
                iterations: total_iters,
                residual_norm: beta,
                converged: beta <= target,
            };
        }
        v.clear();
        h.clear();
        let mut v0 = r.clone();
        vec_ops::scale(1.0 / beta, &mut v0);
        v.push(v0);
        g.iter_mut().for_each(|x| *x = 0.0);
        g[0] = beta;

        let mut j = 0usize;
        while j < restart && total_iters < opts.max_iters {
            prec_apply(rank, prec, &v[j], &mut z);
            full[..nowned].copy_from_slice(&z);
            tag += 1;
            mat.spmv(rank, &mut full, &mut w, tag);
            total_iters += 1;
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in v.iter().enumerate().take(j + 1) {
                let hij = ddot(rank, &w, vi);
                hj[i] = hij;
                vec_ops::axpy(-hij, vi, &mut w);
            }
            let wnorm = dnorm2(rank, &w);
            hj[j + 1] = wnorm;
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            if denom > 0.0 {
                cs[j] = hj[j] / denom;
                sn[j] = hj[j + 1] / denom;
            } else {
                cs[j] = 1.0;
                sn[j] = 0.0;
            }
            hj[j] = cs[j] * hj[j] + sn[j] * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            let res_est = g[j + 1].abs();
            h.push(hj);
            j += 1;
            if wnorm == 0.0 {
                break;
            }
            if j < restart {
                let mut vj = w.clone();
                vec_ops::scale(1.0 / wnorm, &mut vj);
                v.push(vj);
            }
            if res_est <= target {
                break;
            }
        }
        let k = j;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for l in (i + 1)..k {
                s -= h[l][i] * y[l];
            }
            y[i] = s / h[i][i];
        }
        let mut update = vec![0.0; nowned];
        for (l, yl) in y.iter().enumerate() {
            vec_ops::axpy(*yl, &v[l], &mut update);
        }
        prec_apply(rank, prec, &update, &mut z);
        vec_ops::axpy(1.0, &z, x);
    }
}

/// Report from a parallel block-Jacobi solve.
#[derive(Debug, Clone)]
pub struct DistSolveReport {
    /// GMRES outcome (identical on all ranks).
    pub result: GmresResult,
    /// Assembled global solution.
    pub x: Vec<f64>,
    /// Per-rank simulated phase breakdowns.
    pub breakdowns: Vec<fun3d_comm::clock::PhaseBreakdown>,
    /// Simulated parallel time (max over ranks).
    pub sim_time: f64,
    /// Total bytes sent across ranks (scatter volume).
    pub total_bytes_sent: f64,
}

/// Solve `A x = b` with `nranks` message-passing ranks, block-Jacobi ILU
/// preconditioning, and a simulated clock on `machine`.
pub fn parallel_block_jacobi_solve(
    a: &CsrMatrix,
    b: &[f64],
    owner: &[u32],
    nranks: usize,
    machine: &MachineSpec,
    ilu: &IluOptions,
    opts: &GmresOptions,
) -> DistSolveReport {
    assert_eq!(a.nrows(), b.len());
    assert_eq!(owner.len(), a.nrows());
    let plans = build_plans_for_matrix(a, owner, nranks);
    let outputs = run_world(nranks, machine, |rank| {
        let mat = DistributedMatrix::from_plan(a, &plans[rank.id()]);
        let diag = mat.diagonal_block();
        let t0 = std::time::Instant::now();
        let prec = IluFactors::factor(&diag, ilu).expect("subdomain ILU failed");
        let _setup = t0.elapsed();
        let bl: Vec<f64> = mat.owned_rows.iter().map(|&g| b[g]).collect();
        let mut xl = vec![0.0; mat.nowned()];
        let result = dist_gmres(rank, &mat, &prec, &bl, &mut xl, opts);
        (
            mat.owned_rows.clone(),
            xl,
            result,
            rank.clock.breakdown(),
            rank.clock.now(),
            rank.clock.bytes_sent,
        )
    });
    let mut x = vec![0.0; a.nrows()];
    let mut breakdowns = Vec::with_capacity(nranks);
    let mut sim_time: f64 = 0.0;
    let mut total_bytes = 0.0;
    let result = outputs[0].2;
    for (rows, xl, res, bd, t, bytes) in &outputs {
        for (l, &g) in rows.iter().enumerate() {
            x[g] = xl[l];
        }
        assert_eq!(res.iterations, result.iterations, "ranks must agree");
        breakdowns.push(*bd);
        sim_time = sim_time.max(*t);
        total_bytes += bytes;
    }
    DistSolveReport {
        result,
        x,
        breakdowns,
        sim_time,
        total_bytes_sent: total_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_solver::gmres::gmres;
    use fun3d_solver::op::CsrOperator;
    use fun3d_solver::precond::AdditiveSchwarz;
    use fun3d_sparse::triplet::TripletMatrix;

    fn laplacian_2d(nx: usize) -> CsrMatrix {
        let n = nx * nx;
        let mut t = TripletMatrix::new(n, n);
        let id = |i: usize, j: usize| i * nx + j;
        for i in 0..nx {
            for j in 0..nx {
                t.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    t.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    t.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    t.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    t.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn strip_owner(n: usize, p: usize) -> Vec<u32> {
        (0..n).map(|i| ((i * p) / n) as u32).collect()
    }

    #[test]
    fn distributed_matrix_partitions_rows() {
        let a = laplacian_2d(6);
        let owner = strip_owner(36, 3);
        let m0 = DistributedMatrix::from_global(&a, &owner, 3, 0);
        let m1 = DistributedMatrix::from_global(&a, &owner, 3, 1);
        let m2 = DistributedMatrix::from_global(&a, &owner, 3, 2);
        assert_eq!(m0.nowned() + m1.nowned() + m2.nowned(), 36);
        // Interior ranks see ghosts on both sides.
        assert!(m1.nghosts() > 0);
        // Diagonal blocks are square and factorable.
        for m in [&m0, &m1, &m2] {
            let d = m.diagonal_block();
            assert_eq!(d.nrows(), m.nowned());
            IluFactors::factor(&d, &IluOptions::with_fill(0)).unwrap();
        }
    }

    #[test]
    fn distributed_spmv_matches_sequential() {
        let a = laplacian_2d(8);
        let n = a.nrows();
        let owner = strip_owner(n, 4);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut y_seq = vec![0.0; n];
        a.spmv(&x, &mut y_seq);
        let plans = build_plans_for_matrix(&a, &owner, 4);
        let outs = run_world(4, &MachineSpec::asci_red(), |rank| {
            let mat = DistributedMatrix::from_plan(&a, &plans[rank.id()]);
            let mut full = vec![0.0; mat.nowned() + mat.nghosts()];
            for (l, &g) in mat.owned_rows.iter().enumerate() {
                full[l] = x[g];
            }
            let mut y = vec![0.0; mat.nowned()];
            mat.spmv(rank, &mut full, &mut y, 5);
            (mat.owned_rows.clone(), y)
        });
        for (rows, y) in outs {
            for (l, &g) in rows.iter().enumerate() {
                assert!((y[l] - y_seq[g]).abs() < 1e-13, "row {g}");
            }
        }
    }

    #[test]
    fn parallel_solve_matches_sequential_block_jacobi() {
        let a = laplacian_2d(10);
        let n = a.nrows();
        let p = 4;
        let owner = strip_owner(n, p);
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let opts = GmresOptions {
            restart: 25,
            rtol: 1e-8,
            max_iters: 2000,
            ..Default::default()
        };
        let ilu = IluOptions::with_fill(0);
        // Sequential reference with the same block structure.
        let owned_sets: Vec<Vec<usize>> = (0..p)
            .map(|r| (0..n).filter(|&i| owner[i] as usize == r).collect())
            .collect();
        let pc = AdditiveSchwarz::block_jacobi(&a, &owned_sets, &ilu).unwrap();
        let mut x_seq = vec![0.0; n];
        let r_seq = gmres(&CsrOperator::new(&a), &pc, &b, &mut x_seq, &opts);
        // Parallel run.
        let report =
            parallel_block_jacobi_solve(&a, &b, &owner, p, &MachineSpec::asci_red(), &ilu, &opts);
        assert!(r_seq.converged && report.result.converged);
        assert_eq!(
            r_seq.iterations, report.result.iterations,
            "identical math must give identical iteration counts"
        );
        for (u, v) in x_seq.iter().zip(&report.x) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn simulated_time_reported() {
        let a = laplacian_2d(8);
        let n = a.nrows();
        let owner = strip_owner(n, 2);
        let b = vec![1.0; n];
        let report = parallel_block_jacobi_solve(
            &a,
            &b,
            &owner,
            2,
            &MachineSpec::cray_t3e(),
            &IluOptions::with_fill(0),
            &GmresOptions {
                rtol: 1e-6,
                max_iters: 500,
                ..Default::default()
            },
        );
        assert!(report.sim_time > 0.0);
        assert!(report.total_bytes_sent > 0.0);
        assert_eq!(report.breakdowns.len(), 2);
        for bd in &report.breakdowns {
            assert!(bd.compute > 0.0);
            assert!(bd.reduction > 0.0);
        }
    }

    #[test]
    fn more_ranks_increase_iterations() {
        // The algorithmic degradation the paper measures (eta_alg): more
        // Jacobi blocks, slower convergence.
        let a = laplacian_2d(14);
        let n = a.nrows();
        let b = vec![1.0; n];
        let opts = GmresOptions {
            restart: 30,
            rtol: 1e-8,
            max_iters: 3000,
            ..Default::default()
        };
        let mut iters = Vec::new();
        for p in [1usize, 2, 8] {
            let owner = strip_owner(n, p);
            let report = parallel_block_jacobi_solve(
                &a,
                &b,
                &owner,
                p,
                &MachineSpec::asci_red(),
                &IluOptions::with_fill(0),
                &opts,
            );
            assert!(report.result.converged);
            iters.push(report.result.iterations);
        }
        assert!(iters[0] <= iters[1] && iters[1] <= iters[2], "{iters:?}");
        assert!(iters[2] > iters[0], "{iters:?}");
    }
}
