//! Instrumented sequential runs — the harness behind Table 1 and Figure 5.

use crate::config::CaseConfig;
use crate::problem::EulerProblem;
use fun3d_euler::residual::Discretization;
use fun3d_solver::pseudo::{solve_pseudo_transient_with_events, SolveHistory};
use fun3d_telemetry::events::{EventRecord, EventSink};
use fun3d_telemetry::Registry;

/// Results of one sequential case run.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Mesh vertices.
    pub nverts: usize,
    /// Unknowns.
    pub nunknowns: usize,
    /// The ΨNKS history (per-step residuals, CFL, timers).
    pub history: SolveHistory,
}

impl CaseReport {
    /// Wall time per pseudo-timestep (the Table 1 metric).
    pub fn time_per_step(&self) -> f64 {
        self.history.time_per_step()
    }
}

/// Run a case sequentially: build the mesh with its orderings, assemble the
/// discretization and solve with ΨNKS, returning the instrumented history.
pub fn run_case(cfg: &CaseConfig) -> CaseReport {
    run_case_instrumented(cfg, "case", &Registry::disabled(), &EventSink::disabled())
}

/// [`run_case`] with observability: profiling spans land in `tel` and a
/// `RunMeta`-prefixed event stream (one `NewtonStep` per pseudo-timestep,
/// `KrylovIter`s from the inner solves) lands in `events`.  `label` names
/// the run in its `RunMeta` record, so several sub-cases written into one
/// sink render as separate convergence-table series.
pub fn run_case_instrumented(
    cfg: &CaseConfig,
    label: &str,
    tel: &Registry,
    events: &EventSink,
) -> CaseReport {
    let mesh = cfg.build_mesh();
    events.emit(EventRecord::RunMeta {
        name: label.to_string(),
        meta: vec![
            ("nverts".into(), mesh.nverts().to_string()),
            ("ncomp".into(), cfg.model.ncomp().to_string()),
            ("nthreads".into(), cfg.nks.krylov.par.nthreads().to_string()),
        ],
    });
    let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();
    let mut nks = cfg.nks.clone();
    // Structural blocking applies only in the interlaced layout.
    if cfg.layout.blocked && cfg.layout.interlaced {
        nks.bcsr_block = Some(cfg.block_size());
    } else {
        nks.bcsr_block = None;
    }
    let history = solve_pseudo_transient_with_events(&mut problem, &mut q, &nks, tel, events);
    CaseReport {
        nverts: mesh.nverts(),
        nunknowns: mesh.nverts() * cfg.model.ncomp(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LayoutConfig;
    use fun3d_euler::model::FlowModel;
    use fun3d_solver::gmres::GmresOptions;
    use fun3d_solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
    use fun3d_sparse::ilu::IluOptions;

    fn quick_nks(steps: usize) -> PseudoTransientOptions {
        PseudoTransientOptions {
            cfl0: 5.0,
            cfl_exponent: 1.2,
            cfl_max: 1e6,
            max_steps: steps,
            target_reduction: 1e-8,
            krylov: GmresOptions {
                restart: 20,
                rtol: 1e-2,
                max_iters: 120,
                ..Default::default()
            },
            precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
            second_order_switch: None,
            matrix_free: false,
            line_search: true,
            bcsr_block: None,
            forcing: Forcing::Constant,
            pc_refresh: 1,
        }
    }

    #[test]
    fn euler_flow_over_bump_converges() {
        let mut cfg = CaseConfig::small();
        cfg.nks = quick_nks(60);
        let report = run_case(&cfg);
        assert!(
            report.history.converged,
            "residual reduction only {:.2e} after {} steps",
            report.history.reduction(),
            report.history.nsteps()
        );
        assert!(report.time_per_step() > 0.0);
    }

    #[test]
    fn all_table1_layouts_give_the_same_physics() {
        // The layout enhancements must not change the computed flow: same
        // iteration counts (matrix is permuted, ILU in permuted order is a
        // different preconditioner, so allow small drift) and the same
        // converged residual reduction.
        let mut reductions = Vec::new();
        for (layout, flags) in LayoutConfig::table1_rows() {
            let mut cfg = CaseConfig::small();
            cfg.mesh = fun3d_mesh::generator::BumpChannelSpec::with_dims(8, 6, 6);
            cfg.layout = layout;
            cfg.nks = quick_nks(45);
            let report = run_case(&cfg);
            assert!(
                report.history.converged,
                "layout {flags:?} failed to converge: {:.2e}",
                report.history.reduction()
            );
            reductions.push(report.history.reduction());
        }
        for r in &reductions {
            assert!(*r <= 1e-8);
        }
    }

    #[test]
    fn compressible_case_converges() {
        let mut cfg = CaseConfig::small();
        cfg.mesh = fun3d_mesh::generator::BumpChannelSpec::with_dims(8, 6, 6);
        cfg.model = FlowModel::compressible();
        cfg.nks = quick_nks(60);
        cfg.nks.cfl0 = 2.0;
        let report = run_case(&cfg);
        assert!(
            report.history.converged,
            "compressible reduction {:.2e}",
            report.history.reduction()
        );
    }

    #[test]
    fn second_order_continuation_runs() {
        let mut cfg = CaseConfig::small();
        cfg.mesh = fun3d_mesh::generator::BumpChannelSpec::with_dims(8, 6, 6);
        cfg.nks = quick_nks(60);
        cfg.nks.second_order_switch = Some(1e-2);
        // Defect correction (1st-order matrix on a 2nd-order residual)
        // stalls; the paper's code is matrix-free, and so is this test.
        cfg.nks.matrix_free = true;
        cfg.nks.target_reduction = 1e-6;
        let report = run_case(&cfg);
        assert!(
            report.history.converged,
            "reduction {:.2e}",
            report.history.reduction()
        );
    }

    #[test]
    fn instrumented_case_emits_run_meta_and_steps() {
        let mut cfg = CaseConfig::small();
        cfg.nks = quick_nks(4);
        cfg.nks.target_reduction = 1e-30; // force all 4 steps
        let tel = Registry::enabled(0);
        let sink = EventSink::enabled();
        let report = run_case_instrumented(&cfg, "bump-small", &tel, &sink);
        let evs = sink.drain();
        assert!(matches!(
            &evs[0],
            EventRecord::RunMeta { name, .. } if name == "bump-small"
        ));
        let steps = evs
            .iter()
            .filter(|e| matches!(e, EventRecord::NewtonStep { .. }))
            .count();
        assert_eq!(steps, report.history.nsteps());
        // Spans landed under the nks tree.
        let snap = tel.snapshot();
        assert!(snap.span("nks").is_some());
        assert!(snap.span("nks/krylov/gmres").is_some());
    }

    #[test]
    fn phase_timers_account_for_time() {
        let mut cfg = CaseConfig::small();
        cfg.nks = quick_nks(5);
        cfg.nks.target_reduction = 1e-30; // force all 5 steps
        let report = run_case(&cfg);
        let t = report.history.phases();
        assert!(t.residual > 0.0 && t.jacobian > 0.0 && t.precond > 0.0 && t.krylov > 0.0);
        assert_eq!(report.history.nsteps(), 5);
    }
}
