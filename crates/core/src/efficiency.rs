//! Parallel efficiency decomposition (Table 3, Figures 1–2).
//!
//! The paper splits overall parallel efficiency into an *algorithmic*
//! component (iteration growth of non-coarse-grid NKS with subdomain count)
//! and an *implementation* component (everything else: reductions, load
//! imbalance, scatters, hardware):
//!
//! `eta_overall(p) = eta_alg(p) * eta_impl(p)` with
//! `eta_alg(p) = its(p0) / its(p)` and
//! `eta_overall(p) = T(p0) * p0 / (T(p) * p)`.

use fun3d_telemetry::report::PerfReport;

/// One measured (or simulated) scaling point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Processor (node) count.
    pub nprocs: usize,
    /// Linear iterations to convergence (or per unit of work).
    pub its: usize,
    /// Execution time, seconds.
    pub time: f64,
}

/// One row of the Table 3 efficiency block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyRow {
    /// Processor count.
    pub nprocs: usize,
    /// Iterations.
    pub its: usize,
    /// Time (seconds).
    pub time: f64,
    /// Speedup relative to the base point.
    pub speedup: f64,
    /// Overall parallel efficiency.
    pub eta_overall: f64,
    /// Algorithmic efficiency (iteration growth).
    pub eta_alg: f64,
    /// Implementation efficiency (the remainder).
    pub eta_impl: f64,
}

/// Decompose a fixed-size scaling series into the paper's efficiency
/// columns. The first point is the base (speedup 1.0, efficiencies 1.0).
///
/// # Panics
/// Panics on an empty series or non-increasing processor counts.
pub fn efficiency_table(points: &[ScalingPoint]) -> Vec<EfficiencyRow> {
    assert!(!points.is_empty(), "need at least one scaling point");
    assert!(
        points.windows(2).all(|w| w[0].nprocs < w[1].nprocs),
        "points must be sorted by processor count"
    );
    let base = points[0];
    points
        .iter()
        .map(|p| {
            let speedup = base.time / p.time;
            let eta_overall = speedup * base.nprocs as f64 / p.nprocs as f64;
            let eta_alg = base.its as f64 / p.its as f64;
            let eta_impl = eta_overall / eta_alg;
            EfficiencyRow {
                nprocs: p.nprocs,
                its: p.its,
                time: p.time,
                speedup,
                eta_overall,
                eta_alg,
                eta_impl,
            }
        })
        .collect()
}

/// Aggregate Gflop/s from a total flop count and execution time.
pub fn gflops(total_flops: f64, time_s: f64) -> f64 {
    assert!(time_s > 0.0);
    total_flops / time_s / 1e9
}

/// Implementation efficiency between two points "per time step" (the 91%
/// figure of Section 1.2 between 256 and 2048 nodes): ratio of per-step
/// work rates, discounting iteration growth.
pub fn implementation_efficiency(base: &ScalingPoint, at: &ScalingPoint) -> f64 {
    let eta_overall = (base.time / at.time) * base.nprocs as f64 / at.nprocs as f64;
    let eta_alg = base.its as f64 / at.its as f64;
    eta_overall / eta_alg
}

/// Extract a scaling point from a telemetry [`PerfReport`].
///
/// Looks for the metrics `nprocs`, `linear_its`, and `time_s`; when absent,
/// falls back to the instrumented span tree: the `nks` span's `linear_iters`
/// counter and wall time, and the report's rank count. Returns `None` when
/// neither form carries enough information.
///
/// The span fallback treats the span tree as a *single timeline*. Merged
/// multi-rank snapshots sum times and counters over ranks, and GMRES
/// iterations are global (every rank counts the same ones) — so producers
/// of merged reports must push explicit per-run `linear_its`/`time_s`
/// metrics rather than rely on the fallback (as `parallel_nks` does).
pub fn scaling_point_from_report(report: &PerfReport) -> Option<ScalingPoint> {
    let nks = report.span("nks");
    let nprocs = report
        .metric("nprocs")
        .or_else(|| report.meta("nranks").and_then(|s| s.parse().ok()))? as usize;
    let its = report
        .metric("linear_its")
        .or_else(|| nks.and_then(|s| s.counter("linear_iters")))?
        .round() as usize;
    let time = report.metric("time_s").or_else(|| nks.map(|s| s.total_s))?;
    Some(ScalingPoint { nprocs, its, time })
}

/// Build the Table-3 efficiency decomposition directly from a series of
/// telemetry reports (one per processor count, sorted ascending).
///
/// Reports that lack the required metrics/spans are skipped.
pub fn efficiency_from_reports(reports: &[PerfReport]) -> Vec<EfficiencyRow> {
    let points: Vec<ScalingPoint> = reports
        .iter()
        .filter_map(scaling_point_from_report)
        .collect();
    if points.is_empty() {
        return Vec::new();
    }
    efficiency_table(&points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 3 numbers, verbatim.
    fn table3_points() -> Vec<ScalingPoint> {
        vec![
            ScalingPoint {
                nprocs: 128,
                its: 22,
                time: 2039.0,
            },
            ScalingPoint {
                nprocs: 256,
                its: 24,
                time: 1144.0,
            },
            ScalingPoint {
                nprocs: 512,
                its: 26,
                time: 638.0,
            },
            ScalingPoint {
                nprocs: 768,
                its: 27,
                time: 441.0,
            },
            ScalingPoint {
                nprocs: 1024,
                its: 29,
                time: 362.0,
            },
        ]
    }

    #[test]
    fn reproduces_paper_table3_efficiencies() {
        let rows = efficiency_table(&table3_points());
        // Paper: speedups 1.00, 1.78, 3.20, 4.62, 5.63.
        let expect_speedup = [1.00, 1.78, 3.20, 4.62, 5.63];
        let expect_overall = [1.00, 0.89, 0.80, 0.77, 0.70];
        let expect_alg = [1.00, 0.92, 0.85, 0.81, 0.76];
        let expect_impl = [1.00, 0.97, 0.94, 0.95, 0.93];
        for (i, row) in rows.iter().enumerate() {
            assert!((row.speedup - expect_speedup[i]).abs() < 0.01, "{row:?}");
            assert!(
                (row.eta_overall - expect_overall[i]).abs() < 0.01,
                "{row:?}"
            );
            assert!((row.eta_alg - expect_alg[i]).abs() < 0.01, "{row:?}");
            assert!((row.eta_impl - expect_impl[i]).abs() < 0.015, "{row:?}");
        }
    }

    #[test]
    fn decomposition_identity_holds() {
        for row in efficiency_table(&table3_points()) {
            assert!((row.eta_overall - row.eta_alg * row.eta_impl).abs() < 1e-12);
        }
    }

    #[test]
    fn base_row_is_unity() {
        let rows = efficiency_table(&table3_points());
        assert_eq!(rows[0].speedup, 1.0);
        assert_eq!(rows[0].eta_overall, 1.0);
        assert_eq!(rows[0].eta_alg, 1.0);
        assert_eq!(rows[0].eta_impl, 1.0);
    }

    #[test]
    fn gflops_conversion() {
        assert_eq!(gflops(2e12, 10.0), 200.0);
    }

    #[test]
    fn implementation_efficiency_between_points() {
        let pts = table3_points();
        let eff = implementation_efficiency(&pts[0], &pts[4]);
        assert!((eff - 0.93).abs() < 0.015, "{eff}");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_points_panic() {
        let mut pts = table3_points();
        pts.swap(0, 1);
        efficiency_table(&pts);
    }

    fn report_for(p: &ScalingPoint) -> PerfReport {
        let mut r = PerfReport::new("table3");
        r.push_metric("nprocs", p.nprocs as f64);
        r.push_metric("linear_its", p.its as f64);
        r.push_metric("time_s", p.time);
        r
    }

    #[test]
    fn efficiency_from_reports_matches_direct_table() {
        let pts = table3_points();
        let reports: Vec<PerfReport> = pts.iter().map(report_for).collect();
        assert_eq!(efficiency_from_reports(&reports), efficiency_table(&pts));
    }

    #[test]
    fn scaling_point_falls_back_to_span_tree() {
        use fun3d_telemetry::{Registry, SpanRow, TimeDomain};
        let reg = Registry::enabled(0);
        reg.record_span("nks", TimeDomain::Measured, 362.0, 1);
        reg.counter_at("nks", TimeDomain::Measured, "linear_iters", 29.0);
        let mut r = PerfReport::new("run")
            .with_meta("nranks", "1024")
            .with_snapshot(&reg.snapshot());
        // Drop the synthetic root row so only real spans remain.
        r.spans.retain(|s: &SpanRow| !s.path.is_empty());
        let p = scaling_point_from_report(&r).unwrap();
        assert_eq!(p.nprocs, 1024);
        assert_eq!(p.its, 29);
        assert!((p.time - 362.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_metrics_win_over_span_fallback() {
        use fun3d_telemetry::{Registry, TimeDomain};
        // A merged multi-rank snapshot whose span tree would give the wrong
        // answer (summed-over-ranks time); the explicit metrics must win.
        let reg = Registry::enabled(0);
        reg.record_span("nks", TimeDomain::Measured, 9999.0, 1);
        reg.counter_at("nks", TimeDomain::Measured, "linear_iters", 777.0);
        let mut r = PerfReport::new("merged")
            .with_meta("nranks", "4")
            .with_snapshot(&reg.snapshot());
        r.push_metric("nprocs", 1024.0);
        r.push_metric("linear_its", 29.0);
        r.push_metric("time_s", 362.0);
        let p = scaling_point_from_report(&r).unwrap();
        assert_eq!(p.nprocs, 1024);
        assert_eq!(p.its, 29);
        assert!((p.time - 362.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_report_series_skips_only_the_incomplete_ones() {
        let pts = table3_points();
        let mut reports: Vec<PerfReport> = pts.iter().map(report_for).collect();
        reports.insert(2, PerfReport::new("broken"));
        let rows = efficiency_from_reports(&reports);
        assert_eq!(rows, efficiency_table(&pts));
    }

    #[test]
    fn incomplete_reports_are_skipped() {
        assert!(scaling_point_from_report(&PerfReport::new("empty")).is_none());
        assert!(efficiency_from_reports(&[PerfReport::new("empty")]).is_empty());
    }
}
