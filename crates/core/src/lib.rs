//! PETSc-FUN3D reproduced: the application layer.
//!
//! This crate wires the substrates together into the application the paper
//! measures, and provides the experiment harnesses every table and figure
//! regenerator builds on:
//!
//! * [`problem`] — the Euler discretization as a
//!   [`fun3d_solver::op::PseudoTransientProblem`], so the ΨNKS stack drives
//!   the real flow solver.
//! * [`config`] — one struct holding every tunable the paper sweeps: mesh
//!   size, flow model, the three layout enhancements of Table 1
//!   (interlacing / blocking / reorderings), and the full Section 2.4
//!   algorithmic parameter list.
//! * [`driver`] — instrumented sequential runs returning per-phase times
//!   (Table 1, Figure 5).
//! * [`dist`] — distributed linear algebra over `fun3d-comm`: a PETSc
//!   `MPIAIJ`-style row-partitioned matrix, ghosted vectors, distributed
//!   GMRES with block-Jacobi/ILU preconditioning (Tables 2–3 at real small
//!   scale, with simulated-time accounting).
//! * [`parallel_nks`] — the fully distributed ΨNKS solve: local submeshes
//!   with ghost layers, distributed residual/Jacobian assembly, and the
//!   block-Jacobi NKS loop over real message-passing ranks.
//! * [`efficiency`] — the η_overall = η_alg · η_impl decomposition of
//!   Table 3 and the Gflop/s / speedup metrics of Figures 1–2.
//! * [`scaling`] — the fixed-size scaling model that extrapolates measured
//!   iteration counts and partition communication volumes to the paper's
//!   machine scales (documented substitution for the dead testbeds).

pub mod checkpoint;
pub mod config;
pub mod dist;
pub mod driver;
pub mod efficiency;
pub mod output;
pub mod parallel_nks;
pub mod problem;
pub mod scaling;

pub use config::{CaseConfig, LayoutConfig};
pub use driver::{run_case, CaseReport};
pub use problem::EulerProblem;
