//! Legacy-VTK output of meshes and flow fields, for inspecting solutions in
//! ParaView/VisIt — the adoption path a downstream CFD user expects.

use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_mesh::tet::TetMesh;
use std::io::{self, Write};

/// Write a mesh and (optionally) a flow state as a legacy ASCII VTK
/// unstructured grid.
///
/// Scalars written: `pressure`; vectors: `velocity` (derived per model:
/// primitive for incompressible, momentum/density for compressible).
pub fn write_vtk<W: Write>(
    w: &mut W,
    mesh: &TetMesh,
    state: Option<(&FieldVec, &FlowModel)>,
) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "petsc-fun3d-repro flow field")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(w, "POINTS {} double", mesh.nverts())?;
    for p in mesh.coords() {
        writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
    }
    writeln!(w, "CELLS {} {}", mesh.ntets(), mesh.ntets() * 5)?;
    for t in mesh.tets() {
        writeln!(w, "4 {} {} {} {}", t[0], t[1], t[2], t[3])?;
    }
    writeln!(w, "CELL_TYPES {}", mesh.ntets())?;
    for _ in 0..mesh.ntets() {
        writeln!(w, "10")?; // VTK_TETRA
    }
    if let Some((q, model)) = state {
        assert_eq!(q.nverts(), mesh.nverts());
        writeln!(w, "POINT_DATA {}", mesh.nverts())?;
        writeln!(w, "SCALARS pressure double 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for v in 0..mesh.nverts() {
            let s = q.get(v);
            writeln!(w, "{}", model.pressure(&s))?;
        }
        writeln!(w, "VECTORS velocity double")?;
        for v in 0..mesh.nverts() {
            let s = q.get(v);
            let (u, vv, ww) = match model {
                FlowModel::Incompressible { .. } => (s[1], s[2], s[3]),
                FlowModel::Compressible { .. } => (s[1] / s[0], s[2] / s[0], s[3] / s[0]),
            };
            writeln!(w, "{u} {vv} {ww}")?;
        }
    }
    Ok(())
}

/// Convenience: write to a file path.
pub fn write_vtk_file(
    path: &std::path::Path,
    mesh: &TetMesh,
    state: Option<(&FieldVec, &FlowModel)>,
) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_vtk(&mut f, mesh, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_euler::residual::{Discretization, SpatialOrder};
    use fun3d_mesh::generator::BumpChannelSpec;
    use fun3d_sparse::layout::FieldLayout;

    #[test]
    fn vtk_output_is_well_formed() {
        let mesh = BumpChannelSpec::with_dims(4, 3, 3).build();
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let q = disc.initial_state();
        let mut buf = Vec::new();
        write_vtk(&mut buf, &mesh, Some((&q, &model))).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains(&format!("POINTS {} double", mesh.nverts())));
        assert!(text.contains(&format!("CELLS {} {}", mesh.ntets(), mesh.ntets() * 5)));
        assert!(text.contains("SCALARS pressure"));
        assert!(text.contains("VECTORS velocity"));
        // Every tet line has 5 integers; freestream velocity is (1,0,0).
        assert!(text.contains("1 0 0"));
        // Line counts: header(4) + 1 + points + 1 + cells + 1 + types + point data.
        let lines = text.lines().count();
        assert!(lines > mesh.nverts() + 2 * mesh.ntets());
    }

    #[test]
    fn mesh_only_output_skips_point_data() {
        let mesh = BumpChannelSpec::with_dims(3, 3, 3).build();
        let mut buf = Vec::new();
        write_vtk(&mut buf, &mesh, None).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("POINT_DATA"));
        assert!(text.contains("CELL_TYPES"));
    }

    #[test]
    fn compressible_velocity_divides_by_density() {
        let mesh = BumpChannelSpec::with_dims(3, 3, 3).build();
        let model = FlowModel::compressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let q = disc.initial_state();
        let mut buf = Vec::new();
        write_vtk(&mut buf, &mesh, Some((&q, &model))).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Freestream u = Mach 0.3 exactly after dividing by rho = 1.
        assert!(text.contains("0.3 0 0"));
    }
}
