//! Fully distributed pseudo-transient Newton–Krylov–Schwarz — the parallel
//! PETSc-FUN3D execution model.
//!
//! Each rank owns a subdomain of the mesh and holds one layer of ghost
//! vertices; flux evaluation and first-order Jacobian assembly are purely
//! local after a ghost scatter (edges crossing the interface are computed by
//! both sides — the duplicated work the paper's Table 5 discussion notes),
//! inner products go through allreduce, and the preconditioner is
//! block Jacobi with ILU(k) on each rank's diagonal block.  The per-phase
//! simulated clock runs throughout, so every solve also yields the paper's
//! Table 3 phase decomposition at the machine model's scale.
//!
//! The setup here is *replicated* (every rank slices the same global mesh),
//! which is standard practice for reproductions at laptop scale; the
//! per-rank compute and communication paths are the real distributed ones.

use crate::problem::EulerProblem;
use fun3d_comm::clock::PhaseBreakdown;
use fun3d_comm::ranktrace::MessageLedger;
use fun3d_comm::scatter::{build_scatter_plans, ScatterPlan};
use fun3d_comm::world::{run_world_with, Rank, WorldOptions};
use fun3d_euler::field::FieldVec;
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_memmodel::machine::MachineSpec;
use fun3d_mesh::tet::TetMesh;
use fun3d_solver::gmres::GmresOptions;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::{IluFactors, IluOptions};
use fun3d_sparse::layout::FieldLayout;
use fun3d_sparse::triplet::TripletMatrix;
use fun3d_telemetry::events::{EventRecord, EventStream};
use fun3d_telemetry::Snapshot;

use crate::dist::{dist_gmres, DistributedMatrix};

/// One rank's static view of the problem: owned + ghost vertices, the local
/// edge/face lists needed for owned residual rows, and the scatter plan.
pub struct LocalSubdomain {
    /// Global indices: owned first (ascending), then ghosts (plan order).
    pub verts: Vec<usize>,
    /// Number of owned vertices.
    pub nowned: usize,
    /// Vertex-level ghost-exchange plan.
    pub plan: ScatterPlan,
    /// Local edges `[a, b]` (local vertex indices) with at least one owned
    /// endpoint, plus their dual-face normals.
    edges: Vec<[u32; 2]>,
    edge_normals: Vec<[f64; 3]>,
    /// Local boundary faces (local vertex indices; ghost slots allowed) and
    /// their kinds/normals.
    faces: Vec<(fun3d_mesh::tet::BoundaryKind, [u32; 3], [f64; 3])>,
    /// Dual volumes of owned vertices.
    volumes: Vec<f64>,
    /// Ownership mask over local indices (true = owned).
    is_owned: Vec<bool>,
}

impl LocalSubdomain {
    /// Slice rank `me`'s subdomain out of the global mesh.
    pub fn build(mesh: &TetMesh, owner: &[u32], nranks: usize, me: usize) -> Self {
        let plans = build_scatter_plans(mesh.nverts(), owner, mesh.edges(), nranks);
        Self::from_plan(mesh, owner, &plans[me], me)
    }

    /// Build from a precomputed `(owned, ghosts, plan)` triple.
    pub fn from_plan(
        mesh: &TetMesh,
        owner: &[u32],
        triple: &(Vec<usize>, Vec<usize>, ScatterPlan),
        me: usize,
    ) -> Self {
        let (owned, ghosts, plan) = triple;
        let nowned = owned.len();
        let mut verts = owned.clone();
        verts.extend_from_slice(ghosts);
        let mut global_to_local = vec![u32::MAX; mesh.nverts()];
        for (l, &g) in verts.iter().enumerate() {
            global_to_local[g] = l as u32;
        }
        let mut edges = Vec::new();
        let mut edge_normals = Vec::new();
        for (e, &[a, b]) in mesh.edges().iter().enumerate() {
            let (oa, ob) = (owner[a as usize] as usize, owner[b as usize] as usize);
            if oa == me || ob == me {
                let la = global_to_local[a as usize];
                let lb = global_to_local[b as usize];
                debug_assert!(la != u32::MAX && lb != u32::MAX, "ghost layer too thin");
                edges.push([la, lb]);
                edge_normals.push(mesh.edge_normals()[e]);
            }
        }
        let mut faces = Vec::new();
        for f in mesh.boundary_faces() {
            let any_owned = f.verts.iter().any(|&v| owner[v as usize] as usize == me);
            if any_owned {
                // All three vertices are local (they are within one edge of
                // an owned vertex).
                let tri = [
                    global_to_local[f.verts[0] as usize],
                    global_to_local[f.verts[1] as usize],
                    global_to_local[f.verts[2] as usize],
                ];
                debug_assert!(tri.iter().all(|&v| v != u32::MAX));
                faces.push((f.kind, tri, f.normal));
            }
        }
        let volumes = owned.iter().map(|&g| mesh.dual_volumes()[g]).collect();
        let mut is_owned = vec![false; verts.len()];
        for o in is_owned.iter_mut().take(nowned) {
            *o = true;
        }
        Self {
            verts,
            nowned,
            plan: plan.clone(),
            edges,
            edge_normals,
            faces,
            volumes,
            is_owned,
        }
    }

    /// Local vertex count (owned + ghosts).
    pub fn nlocal(&self) -> usize {
        self.verts.len()
    }

    /// Evaluate the first-order residual at *owned* vertices.  `q` holds
    /// `nlocal * ncomp` interlaced values with ghosts current; `res` gets
    /// `nowned * ncomp`.  Charges the simulated clock for the flux work.
    pub fn residual(
        &self,
        model: &FlowModel,
        q: &[f64],
        res: &mut [f64],
        rank: &mut Rank,
        freestream: &fun3d_euler::model::Comp,
    ) {
        let ncomp = model.ncomp();
        assert_eq!(q.len(), self.nlocal() * ncomp);
        assert_eq!(res.len(), self.nowned * ncomp);
        res.iter_mut().for_each(|v| *v = 0.0);
        let get = |v: usize| -> fun3d_euler::model::Comp {
            let mut s = [0.0; fun3d_euler::model::MAX_COMP];
            s[..ncomp].copy_from_slice(&q[v * ncomp..(v + 1) * ncomp]);
            s
        };
        for (e, &[a, b]) in self.edges.iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            let n = self.edge_normals[e];
            let qa = get(a);
            let qb = get(b);
            let f = rusanov(model, &qa, &qb, n);
            if self.is_owned[a] {
                for c in 0..ncomp {
                    res[a * ncomp + c] += f[c];
                }
            }
            if self.is_owned[b] {
                for c in 0..ncomp {
                    res[b * ncomp + c] -= f[c];
                }
            }
        }
        for (kind, tri, normal) in &self.faces {
            let n3 = [normal[0] / 3.0, normal[1] / 3.0, normal[2] / 3.0];
            for &v in tri {
                let v = v as usize;
                if !self.is_owned[v] {
                    continue;
                }
                let qv = get(v);
                let f = boundary_flux(model, *kind, &qv, n3, freestream);
                for c in 0..ncomp {
                    res[v * ncomp + c] += f[c];
                }
            }
        }
        // Simulated cost of the local flux work.
        let flops = 110.0 * self.edges.len() as f64 * ncomp as f64 / 4.0;
        let bytes = (32 + 4 * ncomp * 8) as f64 * self.edges.len() as f64;
        rank.clock.compute(flops, bytes, 0.25);
    }

    /// Assemble the shifted first-order Jacobian rows for owned unknowns as
    /// an `nowned*ncomp x nlocal*ncomp` CSR in local indexing.
    pub fn jacobian(
        &self,
        model: &FlowModel,
        q: &[f64],
        inv_dt: &[f64],
        rank: &mut Rank,
        freestream: &fun3d_euler::model::Comp,
    ) -> CsrMatrix {
        use fun3d_euler::model::MAX_COMP;
        let ncomp = model.ncomp();
        let n_rows = self.nowned * ncomp;
        let n_cols = self.nlocal() * ncomp;
        let mut t =
            TripletMatrix::with_capacity(n_rows, n_cols, self.edges.len() * 2 * ncomp * ncomp);
        let get = |v: usize| -> fun3d_euler::model::Comp {
            let mut s = [0.0; MAX_COMP];
            s[..ncomp].copy_from_slice(&q[v * ncomp..(v + 1) * ncomp]);
            s
        };
        let push_block =
            |t: &mut TripletMatrix, vi: usize, vj: usize, sign: f64, a: &[f64], lam: f64| {
                for r in 0..ncomp {
                    for c in 0..ncomp {
                        let mut val = 0.5 * a[r * MAX_COMP + c];
                        if r == c {
                            val += 0.5 * lam;
                        }
                        t.push(vi * ncomp + r, vj * ncomp + c, sign * val);
                    }
                }
            };
        for (e, &[a, b]) in self.edges.iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            let n = self.edge_normals[e];
            let qa = get(a);
            let qb = get(b);
            let lam = model.max_wavespeed(&qa, n).max(model.max_wavespeed(&qb, n));
            let ja = model.flux_jacobian(&qa, n);
            let jb = model.flux_jacobian(&qb, n);
            if self.is_owned[a] {
                push_block(&mut t, a, a, 1.0, &ja, lam);
                push_block(&mut t, a, b, 1.0, &jb, -lam);
            }
            if self.is_owned[b] {
                push_block(&mut t, b, a, -1.0, &ja, lam);
                push_block(&mut t, b, b, -1.0, &jb, -lam);
            }
        }
        for (kind, tri, normal) in &self.faces {
            let n3 = [normal[0] / 3.0, normal[1] / 3.0, normal[2] / 3.0];
            for &v in tri {
                let v = v as usize;
                if !self.is_owned[v] {
                    continue;
                }
                let qv = get(v);
                boundary_jacobian_into(model, *kind, &qv, n3, freestream, v, ncomp, &mut t);
            }
        }
        // Pseudo-time diagonal and structural diagonal.
        for v in 0..self.nowned {
            for c in 0..ncomp {
                t.push(v * ncomp + c, v * ncomp + c, inv_dt[v * ncomp + c]);
            }
        }
        let jac = t.to_csr();
        let flops = 250.0 * self.edges.len() as f64 * (ncomp * ncomp) as f64 / 16.0;
        rank.clock.compute(flops, 12.0 * jac.nnz() as f64, 0.5);
        jac
    }

    /// Per-owned-unknown `V/dtau` at CFL = 1 (wave-speed sums over the
    /// edges/faces incident to owned vertices).
    pub fn inverse_timestep_scale(&self, model: &FlowModel, q: &[f64]) -> Vec<f64> {
        let ncomp = model.ncomp();
        let mut sums = vec![0.0; self.nowned];
        let get = |v: usize| -> fun3d_euler::model::Comp {
            let mut s = [0.0; fun3d_euler::model::MAX_COMP];
            s[..ncomp].copy_from_slice(&q[v * ncomp..(v + 1) * ncomp]);
            s
        };
        for (e, &[a, b]) in self.edges.iter().enumerate() {
            let n = self.edge_normals[e];
            let lam = model
                .max_wavespeed(&get(a as usize), n)
                .max(model.max_wavespeed(&get(b as usize), n));
            if self.is_owned[a as usize] {
                sums[a as usize] += lam;
            }
            if self.is_owned[b as usize] {
                sums[b as usize] += lam;
            }
        }
        for (_, tri, normal) in &self.faces {
            let n3 = [normal[0] / 3.0, normal[1] / 3.0, normal[2] / 3.0];
            for &v in tri {
                let v = v as usize;
                if self.is_owned[v] {
                    sums[v] += model.max_wavespeed(&get(v), n3);
                }
            }
        }
        let mut out = vec![0.0; self.nowned * ncomp];
        for v in 0..self.nowned {
            for c in 0..ncomp {
                out[v * ncomp + c] = sums[v];
            }
        }
        let _ = &self.volumes; // volumes cancel in V/(CFL V / lam) = lam/CFL
        out
    }
}

#[inline]
fn rusanov(
    model: &FlowModel,
    ql: &fun3d_euler::model::Comp,
    qr: &fun3d_euler::model::Comp,
    n: [f64; 3],
) -> fun3d_euler::model::Comp {
    let ncomp = model.ncomp();
    let fl = model.flux(ql, n);
    let fr = model.flux(qr, n);
    let lam = model.max_wavespeed(ql, n).max(model.max_wavespeed(qr, n));
    let mut f = [0.0; fun3d_euler::model::MAX_COMP];
    for c in 0..ncomp {
        f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * lam * (qr[c] - ql[c]);
    }
    f
}

#[inline]
fn boundary_flux(
    model: &FlowModel,
    kind: fun3d_mesh::tet::BoundaryKind,
    q: &fun3d_euler::model::Comp,
    n: [f64; 3],
    freestream: &fun3d_euler::model::Comp,
) -> fun3d_euler::model::Comp {
    use fun3d_mesh::tet::BoundaryKind;
    match kind {
        BoundaryKind::Wall => {
            let p = model.pressure(q);
            let mut f = [0.0; fun3d_euler::model::MAX_COMP];
            f[1] = p * n[0];
            f[2] = p * n[1];
            f[3] = p * n[2];
            f
        }
        BoundaryKind::Inflow => rusanov(model, q, freestream, n),
        BoundaryKind::Outflow => model.flux(q, n),
    }
}

#[allow(clippy::too_many_arguments)]
fn boundary_jacobian_into(
    model: &FlowModel,
    kind: fun3d_mesh::tet::BoundaryKind,
    q: &fun3d_euler::model::Comp,
    n3: [f64; 3],
    freestream: &fun3d_euler::model::Comp,
    v: usize,
    ncomp: usize,
    t: &mut TripletMatrix,
) {
    use fun3d_euler::model::MAX_COMP;
    use fun3d_mesh::tet::BoundaryKind;
    match kind {
        BoundaryKind::Wall => {
            let dp = pressure_gradient(model, q);
            for r in 1..4usize {
                for c in 0..ncomp {
                    t.push(v * ncomp + r, v * ncomp + c, n3[r - 1] * dp[c]);
                }
            }
        }
        BoundaryKind::Inflow => {
            let lam = model
                .max_wavespeed(q, n3)
                .max(model.max_wavespeed(freestream, n3));
            let a = model.flux_jacobian(q, n3);
            for r in 0..ncomp {
                for c in 0..ncomp {
                    let mut val = 0.5 * a[r * MAX_COMP + c];
                    if r == c {
                        val += 0.5 * lam;
                    }
                    t.push(v * ncomp + r, v * ncomp + c, val);
                }
            }
        }
        BoundaryKind::Outflow => {
            let a = model.flux_jacobian(q, n3);
            for r in 0..ncomp {
                for c in 0..ncomp {
                    t.push(v * ncomp + r, v * ncomp + c, a[r * MAX_COMP + c]);
                }
            }
        }
    }
}

fn pressure_gradient(model: &FlowModel, q: &fun3d_euler::model::Comp) -> fun3d_euler::model::Comp {
    match *model {
        FlowModel::Incompressible { .. } => {
            let mut d = [0.0; fun3d_euler::model::MAX_COMP];
            d[0] = 1.0;
            d
        }
        FlowModel::Compressible { gamma } => {
            let g1 = gamma - 1.0;
            let rho = q[0];
            let (u, v, w) = (q[1] / rho, q[2] / rho, q[3] / rho);
            [
                0.5 * g1 * (u * u + v * v + w * w),
                -g1 * u,
                -g1 * v,
                -g1 * w,
                g1,
            ]
        }
    }
}

/// Options for the parallel NKS solve (a subset of the sequential options —
/// first order, block Jacobi, assembled operator).
#[derive(Debug, Clone)]
pub struct ParallelNksOptions {
    /// Initial CFL.
    pub cfl0: f64,
    /// SER exponent.
    pub cfl_exponent: f64,
    /// CFL ceiling.
    pub cfl_max: f64,
    /// Pseudo-timestep limit.
    pub max_steps: usize,
    /// Stop at this residual reduction.
    pub target_reduction: f64,
    /// Krylov options.
    pub krylov: GmresOptions,
    /// Subdomain ILU options.
    pub ilu: IluOptions,
    /// Record per-rank span timelines, message ledgers, and cross-rank flow
    /// edges in simulated time (one chrome-trace lane per rank, consumed by
    /// `fun3d-report comm` and the critical-path walk).  Tracing is pure
    /// observation: results and simulated clocks are bitwise identical with
    /// it on or off.
    pub trace_ranks: bool,
    /// Partition family label recorded in the run's `RunMeta` (the solver is
    /// partition-agnostic; callers pass whatever produced `owner`).
    pub partition_family: &'static str,
}

impl Default for ParallelNksOptions {
    fn default() -> Self {
        Self {
            cfl0: 5.0,
            cfl_exponent: 1.2,
            cfl_max: 1e6,
            max_steps: 60,
            target_reduction: 1e-8,
            krylov: GmresOptions {
                restart: 20,
                rtol: 1e-2,
                max_iters: 120,
                ..Default::default()
            },
            ilu: IluOptions::with_fill(1),
            trace_ranks: false,
            partition_family: "kway",
        }
    }
}

/// Result of a parallel NKS run.
#[derive(Debug, Clone)]
pub struct ParallelNksReport {
    /// Residual norm before each step.
    pub residual_history: Vec<f64>,
    /// Linear iterations per step.
    pub linear_iters: Vec<usize>,
    /// Converged?
    pub converged: bool,
    /// Final residual norm.
    pub final_residual: f64,
    /// Per-rank simulated phase breakdowns.
    pub breakdowns: Vec<PhaseBreakdown>,
    /// Simulated parallel time (max over ranks).
    pub sim_time: f64,
    /// Assembled global solution (interlaced layout).
    pub solution: Vec<f64>,
    /// Per-rank telemetry snapshots: measured span trees for
    /// flux/jacobian/ilu/gmres plus nested scatter/allreduce comm spans, and
    /// the simulated phase breakdown ingested under `sim/`.  Merge with
    /// [`fun3d_telemetry::merge`]; export with
    /// [`fun3d_telemetry::chrome_trace`].
    pub telemetry: Vec<Snapshot>,
    /// Structured event stream for the run: a `RunMeta` header, one
    /// synthesized `NewtonStep` per pseudo-timestep (timers are zero — the
    /// per-phase clock here is simulated, not wall), and rank 0's `Scatter`
    /// records.  Feed to `fun3d_telemetry::events::convergence_table` or
    /// write as `fun3d-events/1` JSONL.
    pub events: EventStream,
    /// Per-rank message ledgers (empty ops unless `trace_ranks` was set):
    /// every point-to-point message and collective with its wait/transfer
    /// split, in timeline order.  Feed to [`fun3d_comm::critical_path`].
    pub ledgers: Vec<MessageLedger>,
    /// Per-rank simulated-clock marks: `step_marks[r][0]` at the start of
    /// the Newton loop, then one entry after each pseudo-timestep, so
    /// `marks[i + 1] - marks[i]` is step `i`'s simulated duration on rank
    /// `r`.  Recorded on every run (observation only, no communication).
    pub step_marks: Vec<Vec<f64>>,
}

/// Run the distributed ΨNKS solve on `nranks` message-passing ranks.
pub fn solve_parallel_nks(
    mesh: &TetMesh,
    model: FlowModel,
    owner: &[u32],
    nranks: usize,
    machine: &MachineSpec,
    opts: &ParallelNksOptions,
) -> ParallelNksReport {
    let ncomp = model.ncomp();
    let plans = build_scatter_plans(mesh.nverts(), owner, mesh.edges(), nranks);
    let freestream = model.freestream();

    let world_opts = WorldOptions {
        instrument: true,
        trace_ranks: opts.trace_ranks,
    };
    let outputs = run_world_with(nranks, machine, world_opts, |rank| {
        let me = rank.id();
        let tel = rank.telemetry.clone();
        let solve_span = tel.span("nks");
        let sub = LocalSubdomain::from_plan(mesh, owner, &plans[me], me);
        let nowned = sub.nowned;
        let nloc = sub.nlocal();
        // Local state with ghosts, interlaced.
        let mut q = vec![0.0; nloc * ncomp];
        for v in 0..nloc {
            q[v * ncomp..(v + 1) * ncomp].copy_from_slice(&freestream[..ncomp]);
        }
        let mut res = vec![0.0; nowned * ncomp];
        let mut tag = 0u32;
        let scatter = |rank: &mut Rank, q: &mut Vec<f64>, tag: &mut u32| {
            *tag += 1;
            sub.plan.execute(rank, q, nowned, ncomp, *tag);
        };
        scatter(rank, &mut q, &mut tag);
        {
            let _g = tel.span("flux");
            sub.residual(&model, &q, &mut res, rank, &freestream);
        }
        let norm_local: f64 = res.iter().map(|v| v * v).sum();
        let r0 = rank.allreduce_sum_scalar(norm_local).sqrt();
        let mut rnorm = r0;
        let mut history = vec![r0];
        let mut lin_iters = Vec::new();
        let mut converged = false;
        let mut marks = vec![rank.clock.now()];

        for _step in 0..opts.max_steps {
            if rnorm / r0 <= opts.target_reduction {
                converged = true;
                break;
            }
            let cfl = (opts.cfl0 * (r0 / rnorm).powf(opts.cfl_exponent)).min(opts.cfl_max);
            let d = sub.inverse_timestep_scale(&model, &q);
            let shift: Vec<f64> = d.iter().map(|&v| v / cfl).collect();
            let jac_local = {
                let _g = tel.span("jacobian");
                sub.jacobian(&model, &q, &shift, rank, &freestream)
            };
            // Wire into the distributed-matrix machinery: unknown-level plan.
            let mat = DistributedMatrix {
                // Unknown-level bookkeeping: dist_gmres sizes itself from
                // these lists, so they must count unknowns, not vertices.
                owned_rows: (0..nowned * ncomp).collect(),
                ghost_cols: (0..(nloc - nowned) * ncomp).collect(),
                local: jac_local,
                plan: expand_plan(&sub.plan, ncomp),
            };
            let prec = {
                let _g = tel.span("ilu");
                let diag = mat.diagonal_block();
                IluFactors::factor(&diag, &opts.ilu).expect("subdomain ILU failed")
            };
            let mut rhs = vec![0.0; nowned * ncomp];
            for (o, r) in rhs.iter_mut().zip(&res) {
                *o = -r;
            }
            let mut delta = vec![0.0; nowned * ncomp];
            let lin = {
                let _g = tel.span("gmres");
                dist_gmres(rank, &mat, &prec, &rhs, &mut delta, &opts.krylov)
            };
            tel.counter("linear_iters", lin.iterations as f64);
            lin_iters.push(lin.iterations);
            // Line search matching the sequential driver: back off while the
            // residual grows more than 20%, and fall back to the full step
            // if no short step helps (the timestep is the real globalizer).
            // Every rank sees identical (allreduced) norms, so all ranks
            // take the same branch.
            let q_base = q[..nowned * ncomp].to_vec();
            let mut alpha = 1.0f64;
            let mut full_norm = f64::INFINITY;
            let mut accepted = false;
            for k in 0..4 {
                for i in 0..nowned * ncomp {
                    q[i] = q_base[i] + alpha * delta[i];
                }
                scatter(rank, &mut q, &mut tag);
                {
                    let _g = tel.span("flux");
                    sub.residual(&model, &q, &mut res, rank, &freestream);
                }
                let norm_local: f64 = res.iter().map(|v| v * v).sum();
                let tnorm = rank.allreduce_sum_scalar(norm_local).sqrt();
                if k == 0 {
                    full_norm = tnorm;
                }
                if tnorm.is_finite() && tnorm <= 1.2 * rnorm {
                    rnorm = tnorm;
                    accepted = true;
                    break;
                }
                alpha *= 0.5;
            }
            if !accepted {
                // Full step anyway (mirrors the sequential fallback).
                for i in 0..nowned * ncomp {
                    q[i] = q_base[i] + delta[i];
                }
                scatter(rank, &mut q, &mut tag);
                {
                    let _g = tel.span("flux");
                    sub.residual(&model, &q, &mut res, rank, &freestream);
                }
                let norm_local: f64 = res.iter().map(|v| v * v).sum();
                let check = rank.allreduce_sum_scalar(norm_local).sqrt();
                debug_assert!((check - full_norm).abs() <= 1e-9 * full_norm.max(1.0));
                rnorm = full_norm;
            }
            history.push(rnorm);
            marks.push(rank.clock.now());
        }
        if rnorm / r0 <= opts.target_reduction {
            converged = true;
        }
        tel.counter("steps", lin_iters.len() as f64);
        // Fold the simulated clock into the registry so measured and modeled
        // time share one schema, then close the solve span and snapshot.
        rank.clock.flush_trace();
        rank.clock.ingest_into(&tel);
        rank.ledger.close(rank.clock.now());
        rank.ledger.ingest_into(&tel);
        let ledger = std::mem::take(&mut rank.ledger);
        drop(solve_span);
        (
            sub.verts[..nowned].to_vec(),
            q[..nowned * ncomp].to_vec(),
            history,
            lin_iters,
            converged,
            rank.clock.breakdown(),
            rank.clock.now(),
            tel.snapshot(),
            rank.events.drain(),
            ledger,
            marks,
        )
    });

    // Assemble the report from rank 0's history (identical on all ranks).
    let mut solution = vec![0.0; mesh.nverts() * ncomp];
    let mut breakdowns = Vec::with_capacity(nranks);
    let mut telemetry = Vec::with_capacity(nranks);
    let mut ledgers = Vec::with_capacity(nranks);
    let mut step_marks = Vec::with_capacity(nranks);
    let mut sim_time: f64 = 0.0;
    for (verts, ql, _, _, _, bd, t, snap, _, ledger, marks) in &outputs {
        for (l, &g) in verts.iter().enumerate() {
            solution[g * ncomp..(g + 1) * ncomp].copy_from_slice(&ql[l * ncomp..(l + 1) * ncomp]);
        }
        breakdowns.push(*bd);
        telemetry.push(snap.clone());
        ledgers.push(ledger.clone());
        step_marks.push(marks.clone());
        sim_time = sim_time.max(*t);
    }
    let (_, _, history, lin_iters, converged, _, _, _, rank0_events, _, _) =
        outputs.into_iter().next().unwrap();
    let final_residual = *history.last().unwrap();

    // Synthesize the event stream from the (rank-invariant) history.  The
    // per-step timers are simulated here rather than wall-measured, so the
    // NewtonStep timer fields stay zero; CFL is reconstructed from the SER
    // law the loop above applied.
    let mut events = EventStream::new(Vec::new());
    events.records.push(EventRecord::RunMeta {
        name: "parallel_nks".to_string(),
        meta: vec![
            ("nranks".into(), nranks.to_string()),
            ("nverts".into(), mesh.nverts().to_string()),
            ("nthreads".into(), opts.krylov.par.nthreads().to_string()),
            ("partition".into(), opts.partition_family.to_string()),
        ],
    });
    let r0 = history[0];
    for (i, &iters) in lin_iters.iter().enumerate() {
        let cfl = (opts.cfl0 * (r0 / history[i]).powf(opts.cfl_exponent)).min(opts.cfl_max);
        events.records.push(EventRecord::NewtonStep {
            step: i as u64,
            residual_norm: history[i + 1],
            cfl,
            gmres_iters: iters as u64,
            eta: opts.krylov.rtol,
            t_residual: 0.0,
            t_jacobian: 0.0,
            t_precond: 0.0,
            t_krylov: 0.0,
        });
    }
    events.records.extend(
        rank0_events
            .into_iter()
            .filter(|e| matches!(e, EventRecord::Scatter { .. })),
    );

    ParallelNksReport {
        residual_history: history,
        linear_iters: lin_iters,
        converged,
        final_residual,
        breakdowns,
        sim_time,
        solution,
        telemetry,
        events,
        ledgers,
        step_marks,
    }
}

/// Expand a vertex-level scatter plan to unknown level (ncomp unknowns per
/// vertex, interlaced).
fn expand_plan(plan: &ScatterPlan, ncomp: usize) -> ScatterPlan {
    ScatterPlan {
        neighbors: plan.neighbors.clone(),
        send_indices: plan
            .send_indices
            .iter()
            .map(|idx| {
                idx.iter()
                    .flat_map(|&v| (0..ncomp as u32).map(move |c| v * ncomp as u32 + c))
                    .collect()
            })
            .collect(),
        recv_counts: plan.recv_counts.iter().map(|&c| c * ncomp).collect(),
    }
}

/// Convenience: the sequential reference solution for comparison tests.
pub fn sequential_reference(
    mesh: &TetMesh,
    model: FlowModel,
    owner: &[u32],
    nranks: usize,
    opts: &ParallelNksOptions,
) -> (Vec<f64>, Vec<usize>, bool) {
    let disc = Discretization::new(mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();
    let ncomp = model.ncomp();
    let owned_sets: Vec<Vec<usize>> = (0..nranks)
        .map(|r| {
            (0..mesh.nverts())
                .filter(|&v| owner[v] as usize == r)
                .flat_map(|v| (0..ncomp).map(move |c| v * ncomp + c))
                .collect()
        })
        .collect();
    let seq_opts = fun3d_solver::pseudo::PseudoTransientOptions {
        cfl0: opts.cfl0,
        cfl_exponent: opts.cfl_exponent,
        cfl_max: opts.cfl_max,
        max_steps: opts.max_steps,
        target_reduction: opts.target_reduction,
        krylov: opts.krylov,
        precond: fun3d_solver::pseudo::PrecondSpec::Schwarz {
            owned_sets,
            overlap: 0,
            ilu: opts.ilu,
            restricted: true,
        },
        second_order_switch: None,
        matrix_free: false,
        line_search: false,
        bcsr_block: None,
        forcing: fun3d_solver::pseudo::Forcing::Constant,
        pc_refresh: 1,
    };
    let h = fun3d_solver::pseudo::solve_pseudo_transient(&mut problem, &mut q, &seq_opts);
    let its = h.steps.iter().map(|s| s.linear_iters).collect();
    (q, its, h.converged)
}

/// A `FieldVec` view of a parallel solution for diagnostics.
pub fn solution_field(mesh: &TetMesh, model: &FlowModel, solution: Vec<f64>) -> FieldVec {
    FieldVec::from_vec(
        solution,
        mesh.nverts(),
        model.ncomp(),
        FieldLayout::Interlaced,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_comm::world::run_world;
    use fun3d_mesh::generator::BumpChannelSpec;
    use fun3d_partition::partition_kway;

    fn setup(dims: (usize, usize, usize), nranks: usize) -> (TetMesh, Vec<u32>) {
        let mesh = BumpChannelSpec::with_dims(dims.0, dims.1, dims.2).build();
        let part = partition_kway(&mesh.vertex_graph(), nranks, 3);
        (mesh, part.part)
    }

    #[test]
    fn local_residual_matches_global() {
        let nranks = 3;
        let (mesh, owner) = setup((7, 5, 5), nranks);
        let model = FlowModel::incompressible();
        let ncomp = 4;
        // Global reference at a perturbed state.
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let mut qg = disc.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = qg.get(v);
            let x = mesh.coords()[v];
            for c in 0..ncomp {
                s[c] += 0.02 * ((c + 1) as f64) * (x[0] - 0.3 * x[2]).sin();
            }
            qg.set(v, &s);
        }
        let mut rg = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
        let mut ws = disc.workspace();
        disc.residual(&qg, &mut rg, &mut ws);

        let plans = build_scatter_plans(mesh.nverts(), &owner, mesh.edges(), nranks);
        let freestream = model.freestream();
        let outs = run_world(nranks, &MachineSpec::asci_red(), |rank| {
            let sub = LocalSubdomain::from_plan(&mesh, &owner, &plans[rank.id()], rank.id());
            let mut q = vec![0.0; sub.nlocal() * ncomp];
            for (l, &g) in sub.verts.iter().enumerate() {
                let s = qg.get(g);
                q[l * ncomp..(l + 1) * ncomp].copy_from_slice(&s[..ncomp]);
            }
            let mut res = vec![0.0; sub.nowned * ncomp];
            sub.residual(&model, &q, &mut res, rank, &freestream);
            (sub.verts[..sub.nowned].to_vec(), res)
        });
        for (verts, res) in outs {
            for (l, &g) in verts.iter().enumerate() {
                let want = rg.get(g);
                for c in 0..ncomp {
                    assert!(
                        (res[l * ncomp + c] - want[c]).abs() < 1e-11,
                        "vertex {g} comp {c}: {} vs {}",
                        res[l * ncomp + c],
                        want[c]
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_nks_converges_and_matches_sequential() {
        let nranks = 4;
        let (mesh, owner) = setup((8, 6, 6), nranks);
        let model = FlowModel::incompressible();
        let opts = ParallelNksOptions {
            max_steps: 50,
            ..Default::default()
        };
        let report = solve_parallel_nks(
            &mesh,
            model,
            &owner,
            nranks,
            &MachineSpec::asci_red(),
            &opts,
        );
        assert!(
            report.converged,
            "parallel reduction {:.2e}",
            report.final_residual / report.residual_history[0]
        );
        // Sequential reference with the same block structure converges to
        // the same state.
        let (q_seq, _its, conv) = sequential_reference(&mesh, model, &owner, nranks, &opts);
        assert!(conv);
        let scale = q_seq.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in report.solution.iter().zip(&q_seq) {
            assert!(
                (a - b).abs() / scale < 1e-5,
                "solutions diverged: {a} vs {b}"
            );
        }
        assert!(report.sim_time > 0.0);
        assert_eq!(report.breakdowns.len(), nranks);
    }

    #[test]
    fn telemetry_records_phase_spans_per_rank() {
        let nranks = 2;
        let (mesh, owner) = setup((6, 5, 5), nranks);
        let model = FlowModel::incompressible();
        let opts = ParallelNksOptions {
            max_steps: 3,
            target_reduction: 1e-30, // force all 3 steps
            ..Default::default()
        };
        let report = solve_parallel_nks(
            &mesh,
            model,
            &owner,
            nranks,
            &MachineSpec::asci_red(),
            &opts,
        );
        assert_eq!(report.telemetry.len(), nranks);
        for (rank, snap) in report.telemetry.iter().enumerate() {
            assert_eq!(snap.rank, rank);
            for path in [
                "nks",
                "nks/flux",
                "nks/jacobian",
                "nks/ilu",
                "nks/gmres",
                "nks/comm/scatter",
                "nks/gmres/comm/allreduce",
                "sim/compute",
                "sim/scatter",
            ] {
                assert!(snap.span(path).is_some(), "rank {rank} missing span {path}");
            }
            // Measured child spans fit inside the solve span.
            let nks = snap.span("nks").unwrap().total_s;
            let children: f64 = ["nks/flux", "nks/jacobian", "nks/ilu", "nks/gmres"]
                .iter()
                .map(|p| snap.span(p).unwrap().total_s)
                .sum();
            assert!(children <= nks * 1.0001 + 1e-9, "{children} > {nks}");
            // Counters recorded under the solve span.
            assert!(snap.span("nks").unwrap().counter("linear_iters").unwrap() > 0.0);
            assert_eq!(snap.span("nks").unwrap().counter("steps"), Some(3.0));
            // Simulated spans carry the simulated domain tag.
            assert_eq!(
                snap.span("sim/compute").unwrap().domain,
                fun3d_telemetry::TimeDomain::Simulated
            );
        }
        // Chrome trace over all ranks parses and has per-rank tids.
        let trace = fun3d_telemetry::chrome_trace(&report.telemetry);
        let v = fun3d_telemetry::json::Value::parse(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn event_stream_mirrors_history_and_carries_scatters() {
        let nranks = 2;
        let (mesh, owner) = setup((6, 5, 5), nranks);
        let model = FlowModel::incompressible();
        let opts = ParallelNksOptions {
            max_steps: 3,
            target_reduction: 1e-30, // force all 3 steps
            ..Default::default()
        };
        let report = solve_parallel_nks(
            &mesh,
            model,
            &owner,
            nranks,
            &MachineSpec::asci_red(),
            &opts,
        );
        assert!(matches!(
            &report.events.records[0],
            EventRecord::RunMeta { name, .. } if name == "parallel_nks"
        ));
        let steps = report.events.newton_steps();
        assert_eq!(steps.len(), report.linear_iters.len());
        for (i, s) in steps.iter().enumerate() {
            if let EventRecord::NewtonStep {
                step,
                residual_norm,
                gmres_iters,
                ..
            } = *s
            {
                assert_eq!(*step, i as u64);
                assert_eq!(*residual_norm, report.residual_history[i + 1]);
                assert_eq!(*gmres_iters, report.linear_iters[i] as u64);
            } else {
                unreachable!()
            }
        }
        let scatters = report
            .events
            .records
            .iter()
            .filter(|e| matches!(e, EventRecord::Scatter { .. }))
            .count();
        assert!(scatters > 0, "rank 0 scatter events missing");
        let table = fun3d_telemetry::events::convergence_table(&report.events);
        assert!(table.contains("Convergence (Figure 5)"));
    }

    #[test]
    fn traced_solve_is_bitwise_identical_and_yields_ledgers() {
        let nranks = 3;
        let (mesh, owner) = setup((6, 5, 5), nranks);
        let model = FlowModel::incompressible();
        let base = ParallelNksOptions {
            max_steps: 3,
            target_reduction: 1e-30, // force all 3 steps
            ..Default::default()
        };
        let machine = MachineSpec::asci_red();
        let plain = solve_parallel_nks(&mesh, model, &owner, nranks, &machine, &base);
        let traced_opts = ParallelNksOptions {
            trace_ranks: true,
            ..base.clone()
        };
        let traced = solve_parallel_nks(&mesh, model, &owner, nranks, &machine, &traced_opts);
        // Tracing is pure observation: identical results and clocks.
        assert_eq!(plain.solution, traced.solution);
        assert_eq!(plain.residual_history, traced.residual_history);
        assert_eq!(plain.sim_time, traced.sim_time);
        assert_eq!(plain.step_marks, traced.step_marks);
        // Ledgers fill only when traced.
        assert!(plain.ledgers.iter().all(|l| l.ops().is_empty()));
        assert_eq!(traced.ledgers.len(), nranks);
        for l in &traced.ledgers {
            assert!(l.nsends() > 0, "rank {} sent nothing", l.rank());
            assert!(l.ncollectives() > 0);
        }
        // One mark before the loop plus one per pseudo-timestep, monotone.
        for marks in &traced.step_marks {
            assert_eq!(marks.len(), traced.linear_iters.len() + 1);
            assert!(marks.windows(2).all(|w| w[0] <= w[1]));
        }
        // The critical path covers the whole run and is fully attributed.
        let cp = fun3d_comm::critical_path(&traced.ledgers);
        assert!(cp.total_s > 0.0);
        assert!((cp.accounted_s() - cp.total_s).abs() <= 1e-9 * cp.total_s);
        // Per-rank timeline spans exist; merged trace carries flow edges.
        for (r, snap) in traced.telemetry.iter().enumerate() {
            for phase in ["compute", "scatter", "reduction"] {
                let path = format!("rank{r}/{phase}");
                assert!(snap.span(&path).is_some(), "missing {path}");
            }
        }
        let merged = fun3d_telemetry::merge(&traced.telemetry);
        assert!(!merged.flows.is_empty());
    }

    #[test]
    fn parallel_residual_norm_history_is_rank_invariant() {
        // Running the same problem with different rank counts changes the
        // preconditioner (more blocks) but not the residual evaluation: the
        // initial residual norm must agree exactly.
        let model = FlowModel::incompressible();
        let mut first = None;
        for nranks in [2usize, 4] {
            let (mesh, owner) = setup((7, 5, 5), nranks);
            let opts = ParallelNksOptions {
                max_steps: 1,
                ..Default::default()
            };
            let report = solve_parallel_nks(
                &mesh,
                model,
                &owner,
                nranks,
                &MachineSpec::cray_t3e(),
                &opts,
            );
            let r0 = report.residual_history[0];
            if let Some(f) = first {
                let fd: f64 = f;
                assert!((fd - r0).abs() < 1e-10 * fd, "{fd} vs {r0}");
            }
            first = Some(r0);
        }
    }
}
