//! The Euler discretization as a pseudo-transient Newton–Krylov problem.

use euler::field::FieldVec;
use euler::residual::{Discretization, SpatialOrder, Workspace};
use fun3d_euler as euler;
use fun3d_solver::op::PseudoTransientProblem;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::layout::FieldLayout;
use std::cell::RefCell;

/// Wraps a [`Discretization`] (which borrows the mesh) behind the solver's
/// problem trait. Scratch buffers are reused across calls via interior
/// mutability, so repeated residual evaluations (line search, matrix-free
/// matvecs) do not allocate.
pub struct EulerProblem<'m> {
    disc: Discretization<'m>,
    ws: RefCell<Workspace>,
    qbuf: RefCell<FieldVec>,
    rbuf: RefCell<FieldVec>,
}

impl<'m> EulerProblem<'m> {
    /// Wrap a discretization.
    pub fn new(disc: Discretization<'m>) -> Self {
        let nv = disc.mesh().nverts();
        let ncomp = disc.ncomp();
        let layout = disc.layout();
        let ws = disc.workspace();
        Self {
            disc,
            ws: RefCell::new(ws),
            qbuf: RefCell::new(FieldVec::zeros(nv, ncomp, layout)),
            rbuf: RefCell::new(FieldVec::zeros(nv, ncomp, layout)),
        }
    }

    /// The wrapped discretization.
    pub fn discretization(&self) -> &Discretization<'m> {
        &self.disc
    }

    /// The unknown layout.
    pub fn layout(&self) -> FieldLayout {
        self.disc.layout()
    }

    /// Freestream initial iterate as a flat vector in this layout.
    pub fn initial_state(&self) -> Vec<f64> {
        self.disc.initial_state().into_vec()
    }
}

impl PseudoTransientProblem for EulerProblem<'_> {
    fn n(&self) -> usize {
        self.disc.nunknowns()
    }

    fn residual(&self, q: &[f64], out: &mut [f64]) {
        let mut qb = self.qbuf.borrow_mut();
        let mut rb = self.rbuf.borrow_mut();
        let mut ws = self.ws.borrow_mut();
        qb.as_mut_slice().copy_from_slice(q);
        self.disc.residual(&qb, &mut rb, &mut ws);
        out.copy_from_slice(rb.as_slice());
    }

    fn jacobian(&self, q: &[f64]) -> CsrMatrix {
        let mut qb = self.qbuf.borrow_mut();
        qb.as_mut_slice().copy_from_slice(q);
        self.disc.jacobian(&qb)
    }

    fn inverse_timestep_scale(&self, q: &[f64]) -> Vec<f64> {
        // dtau_i = CFL * V_i / sum(lambda) per vertex, so V_i/dtau_i at
        // CFL = 1 is the wave-speed sum, replicated across components.
        let mut qb = self.qbuf.borrow_mut();
        qb.as_mut_slice().copy_from_slice(q);
        let sums = self.disc.wavespeed_sums(&qb);
        let nv = self.disc.mesh().nverts();
        let ncomp = self.disc.ncomp();
        let mut out = vec![0.0; nv * ncomp];
        for v in 0..nv {
            for c in 0..ncomp {
                let idx = match self.disc.layout() {
                    FieldLayout::Interlaced => v * ncomp + c,
                    FieldLayout::Segregated => c * nv + v,
                };
                out[idx] = sums[v];
            }
        }
        out
    }

    fn set_second_order(&mut self, enable: bool) {
        self.disc.set_order(if enable {
            SpatialOrder::Second
        } else {
            SpatialOrder::First
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler::model::FlowModel;
    use fun3d_mesh::generator::BumpChannelSpec;

    #[test]
    fn trait_methods_are_consistent() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let disc = Discretization::new(
            &mesh,
            FlowModel::incompressible(),
            FieldLayout::Interlaced,
            SpatialOrder::First,
        );
        let p = EulerProblem::new(disc);
        let q = p.initial_state();
        assert_eq!(q.len(), p.n());
        let mut r = vec![0.0; p.n()];
        p.residual(&q, &mut r);
        let jac = p.jacobian(&q);
        assert_eq!(jac.nrows(), p.n());
        let d = p.inverse_timestep_scale(&q);
        assert!(d.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn repeated_residual_calls_agree() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let disc = Discretization::new(
            &mesh,
            FlowModel::compressible(),
            FieldLayout::Segregated,
            SpatialOrder::Second,
        );
        let p = EulerProblem::new(disc);
        let mut q = p.initial_state();
        for (i, v) in q.iter_mut().enumerate() {
            *v += 1e-3 * ((i % 11) as f64);
        }
        let mut r1 = vec![0.0; p.n()];
        let mut r2 = vec![0.0; p.n()];
        p.residual(&q, &mut r1);
        p.residual(&q, &mut r2);
        assert_eq!(r1, r2, "scratch reuse must not leak state");
    }

    #[test]
    fn order_switch_changes_residual() {
        let mesh = BumpChannelSpec::with_dims(6, 4, 4).build();
        let disc = Discretization::new(
            &mesh,
            FlowModel::incompressible(),
            FieldLayout::Interlaced,
            SpatialOrder::First,
        );
        let mut p = EulerProblem::new(disc);
        let mut q = p.initial_state();
        for (i, v) in q.iter_mut().enumerate() {
            *v += 0.01 * (((i * 7) % 13) as f64 / 13.0);
        }
        let mut r1 = vec![0.0; p.n()];
        p.residual(&q, &mut r1);
        p.set_second_order(true);
        let mut r2 = vec![0.0; p.n()];
        p.residual(&q, &mut r2);
        assert_ne!(r1, r2);
    }
}
