//! Fixed-size scaling model — the documented substitution for the paper's
//! dead testbeds (Figures 1–2, Table 3, Table 5 at full machine scale).
//!
//! We cannot run 3072 ASCI Red nodes, but the paper's parallel behaviour is
//! governed by measurable ingredients that we *can* obtain honestly:
//!
//! 1. **Iteration growth** `its(p)` — measured by really running the NKS
//!    solver with `p`-block preconditioning at laptop-affordable block
//!    counts, then fitted with a power law (block-Schwarz theory predicts a
//!    small positive exponent for non-coarse-grid methods).
//! 2. **Communication volume** — measured from real partitions of the mesh
//!    family (cut interfaces), fitted with the surface/volume law
//!    `interface(p, N) = c * p^(1/3) * N^(2/3)`.
//! 3. **Machine parameters** — the published STREAM / latency / bandwidth
//!    figures in [`fun3d_memmodel::machine::MachineSpec`].
//!
//! The model then assembles per-iteration time = compute (roofline) +
//! scatter (latency + volume/bandwidth) + reduction (log tree) + imbalance
//! wait, exactly the taxonomy of Table 3.

use fun3d_memmodel::machine::MachineSpec;

/// Power-law fit `y = y0 * (p / p0)^gamma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Reference value at `p0`.
    pub y0: f64,
    /// Reference abscissa.
    pub p0: f64,
    /// Exponent.
    pub gamma: f64,
}

impl PowerLaw {
    /// Evaluate at `p`.
    pub fn at(&self, p: f64) -> f64 {
        self.y0 * (p / self.p0).powf(self.gamma)
    }

    /// Least-squares fit in log-log space through `(p, y)` samples.
    ///
    /// # Panics
    /// Panics with fewer than two samples or non-positive data.
    pub fn fit(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples");
        assert!(
            samples.iter().all(|&(p, y)| p > 0.0 && y > 0.0),
            "power-law fit needs positive data"
        );
        let n = samples.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(p, y) in samples {
            let lx = p.ln();
            let ly = y.ln();
            sx += lx;
            sy += ly;
            sxx += lx * lx;
            sxy += lx * ly;
        }
        let gamma = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let lny0_at_1 = (sy - gamma * sx) / n;
        let p0 = samples[0].0;
        let y0 = (lny0_at_1 + gamma * p0.ln()).exp();
        Self { y0, p0, gamma }
    }
}

/// The fixed-size problem being scaled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemShape {
    /// Mesh vertices.
    pub nverts: f64,
    /// Mesh edges.
    pub nedges: f64,
    /// Unknowns per vertex.
    pub ncomp: f64,
    /// Nonzeros of the (point) Jacobian.
    pub nnz: f64,
    /// Flops per edge per flux evaluation.
    pub flux_flops_per_edge: f64,
    /// Flux evaluations + matvec-equivalents per linear iteration.
    pub work_per_iteration: f64,
}

impl ProblemShape {
    /// Shape of the paper's 2.8M-vertex Euler case (incompressible).
    pub fn large_euler() -> Self {
        let nverts = 2.8e6;
        let nedges = 7.0 * nverts; // tetrahedral meshes: ~7 edges/vertex
        let ncomp = 4.0;
        // Point nnz: block nnz (verts + 2 edges) * ncomp^2.
        let nnz = (nverts + 2.0 * nedges) * ncomp * ncomp;
        Self {
            nverts,
            nedges,
            ncomp,
            nnz,
            flux_flops_per_edge: 400.0,
            work_per_iteration: 1.0,
        }
    }
}

/// Calibration inputs measured from real reduced-scale runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Time steps (nonlinear iterations) to convergence as a function of
    /// processor count — Table 3's "Its" column.
    pub its: PowerLaw,
    /// Linear (Krylov) iterations per time step.
    pub linear_its_per_step: f64,
    /// Interface law: coefficient `c` in
    /// `interface_vertices(p, N) = c * p^eta * N^(2/3)`.
    pub interface_coeff: f64,
    /// Interface growth exponent `eta` (1/3 for perfectly compact
    /// subdomains; measured higher because subdomains lose compactness at
    /// high `p`).
    pub interface_exponent: f64,
    /// Load imbalance grows as subdomains shrink:
    /// `imbalance(p) = 1 + imbalance_coeff * p^(1/3)`.
    pub imbalance_coeff: f64,
    /// Inner products per linear iteration (GMRES: ~restart/2 + 2).
    pub dots_per_iteration: f64,
    /// Instruction-scheduling efficiency of the flux kernel (it is compute
    /// bound, not bandwidth bound; ~0.25 of peak per the companion paper).
    pub flux_efficiency: f64,
    /// Software cost of packing/unpacking one scatter byte (vintage MPI
    /// stacks spent far more time marshaling irregular ghost data than
    /// moving it; this is what makes the paper's "application level
    /// effective bandwidth" two orders below the wire rate).
    pub scatter_overhead_s_per_byte: f64,
    /// Effective per-stage software latency of a global reduction.
    pub reduce_stage_latency_s: f64,
}

impl Calibration {
    /// Defaults matching the paper's observations, used when no measured
    /// calibration is supplied.
    pub fn paper_defaults() -> Self {
        Self {
            // Table 3: 22 -> 29 time steps over 128 -> 1024 procs.
            its: PowerLaw {
                y0: 22.0,
                p0: 128.0,
                gamma: 0.133,
            },
            linear_its_per_step: 60.0,
            interface_coeff: 2.7,
            interface_exponent: 0.47,
            imbalance_coeff: 0.008,
            dots_per_iteration: 12.0,
            flux_efficiency: 0.13,
            scatter_overhead_s_per_byte: 130e-9,
            reduce_stage_latency_s: 80e-6,
        }
    }
}

/// Model prediction at one processor count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPoint {
    /// Node count.
    pub nprocs: usize,
    /// Vertices owned per processor.
    pub verts_per_proc: f64,
    /// Linear iterations (from the fitted growth law).
    pub its: f64,
    /// Total execution time, seconds.
    pub time: f64,
    /// Aggregate Gflop/s.
    pub gflops: f64,
    /// Percent of time in global reductions.
    pub pct_reductions: f64,
    /// Percent of time in implicit synchronizations (imbalance waits).
    pub pct_implicit_sync: f64,
    /// Percent of time in ghost-point scatters.
    pub pct_scatters: f64,
    /// Nearest-neighbor data sent per iteration, bytes (all ranks).
    pub scatter_bytes_per_it: f64,
    /// Application-level effective bandwidth per node, bytes/s.
    pub effective_bandwidth: f64,
}

/// The fixed-size scaling model.
#[derive(Debug, Clone)]
pub struct FixedSizeModel {
    /// Machine description.
    pub machine: MachineSpec,
    /// Problem shape.
    pub shape: ProblemShape,
    /// Calibration (measured or paper defaults).
    pub cal: Calibration,
}

impl FixedSizeModel {
    /// Predict behaviour at `p` nodes.
    ///
    /// The accounting unit is one *time step* (one nonlinear iteration):
    /// Table 3 reports `Its` in time steps, and the paper's "data sent per
    /// iteration" is per time step including all inner linear work.
    pub fn predict(&self, p: usize) -> ModelPoint {
        let pf = p as f64;
        let m = &self.machine;
        let s = &self.shape;
        let c = &self.cal;

        let steps = c.its.at(pf);
        let lin = c.linear_its_per_step;
        let verts_per_proc = s.nverts / pf;

        // --- Local work per time step on one node ---
        // Flux phase: the code is matrix-free, so every Krylov iteration
        // performs a flux evaluation (the FD matvec), plus ~2 evaluations
        // per step for the residual itself. Compute bound at
        // flux_efficiency of peak — this is why the flux phase is >60% of
        // execution time in the paper.
        let flux_flops = (lin + 2.0) * s.flux_flops_per_edge * s.nedges / pf * s.ncomp / 4.0;
        // One CPU per node in the base configuration (the second CPU is the
        // subject of Table 5), so the flux roofline uses the per-CPU peak.
        let t_flux = flux_flops / (m.peak_flops_per_cpu() * c.flux_efficiency);
        // Solve phase per linear iteration: the ILU triangular solves
        // (~12 B/nnz; the matvec is matrix-free and counted in the flux
        // phase) + BLAS-1 traffic; all bandwidth bound.
        let solve_bytes_per_it =
            12.0 * s.nnz / pf + c.dots_per_iteration * 16.0 * s.nverts * s.ncomp / pf;
        let solve_flops_per_it = 2.0 * s.nnz / pf;
        let t_solve_it = (solve_bytes_per_it / m.stream_bytes_per_s)
            .max(solve_flops_per_it / m.peak_flops_per_cpu());
        let t_compute = t_flux + lin * t_solve_it;

        // --- Communication per time step ---
        // Interface vertices over all parts (surface/volume law with the
        // measured compactness exponent), each carrying ncomp doubles,
        // refreshed twice per linear iteration (matvec + preconditioner).
        let interface =
            c.interface_coeff * pf.powf(c.interface_exponent) * s.nverts.powf(2.0 / 3.0);
        let scatter_bytes_total = 2.0 * lin * interface * s.ncomp * 8.0;
        let scatter_bytes_per_node = scatter_bytes_total / pf;
        // ~6 neighbors per subdomain in 3-D; packing overhead dominates.
        let t_scatter = 2.0 * lin * 6.0 * m.net_latency_s
            + scatter_bytes_per_node * (1.0 / m.net_bytes_per_s + c.scatter_overhead_s_per_byte);
        let t_reduce = if p > 1 {
            lin * c.dots_per_iteration * (pf.log2().ceil()) * c.reduce_stage_latency_s
        } else {
            0.0
        };
        // Imbalance surfaces as wait at the next synchronization; smaller
        // subdomains balance worse.
        let imbalance = 1.0 + c.imbalance_coeff * pf.powf(1.0 / 3.0);
        let t_wait = (imbalance - 1.0) * t_compute;

        let t_step = t_compute + t_scatter + t_reduce + t_wait;
        let time = steps * t_step * s.work_per_iteration;

        let total_flops = steps * (flux_flops + lin * solve_flops_per_it) * pf;
        ModelPoint {
            nprocs: p,
            verts_per_proc,
            its: steps,
            time,
            gflops: total_flops / time / 1e9,
            pct_reductions: 100.0 * t_reduce / t_step,
            pct_implicit_sync: 100.0 * t_wait / t_step,
            pct_scatters: 100.0 * t_scatter / t_step,
            scatter_bytes_per_it: scatter_bytes_total,
            effective_bandwidth: scatter_bytes_per_node / t_scatter,
        }
    }

    /// Predict a whole series.
    pub fn series(&self, procs: &[usize]) -> Vec<ModelPoint> {
        procs.iter().map(|&p| self.predict(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::{efficiency_table, ScalingPoint};

    fn model() -> FixedSizeModel {
        FixedSizeModel {
            machine: MachineSpec::asci_red(),
            shape: ProblemShape::large_euler(),
            cal: Calibration::paper_defaults(),
        }
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let samples: Vec<(f64, f64)> = [8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&p: &f64| (p, 3.0 * p.powf(0.25)))
            .collect();
        let fit = PowerLaw::fit(&samples);
        assert!((fit.gamma - 0.25).abs() < 1e-10);
        assert!((fit.at(128.0) - 3.0 * 128.0f64.powf(0.25)).abs() < 1e-8);
    }

    #[test]
    fn time_decreases_with_processors() {
        let m = model();
        let pts = m.series(&[128, 256, 512, 1024]);
        for w in pts.windows(2) {
            assert!(w[1].time < w[0].time, "{w:?}");
        }
    }

    #[test]
    fn efficiency_degrades_like_the_paper() {
        let m = model();
        let pts = m.series(&[128, 256, 512, 768, 1024]);
        let series: Vec<ScalingPoint> = pts
            .iter()
            .map(|p| ScalingPoint {
                nprocs: p.nprocs,
                its: p.its.round() as usize,
                time: p.time,
            })
            .collect();
        let rows = efficiency_table(&series);
        // Shape checks against Table 3: eta_overall falls to ~0.7 at 1024,
        // eta_impl stays >= 0.9, eta_alg tracks iteration growth.
        let last = rows.last().unwrap();
        assert!(
            last.eta_overall > 0.55 && last.eta_overall < 0.85,
            "{last:?}"
        );
        assert!(last.eta_impl > 0.85, "{last:?}");
        assert!(last.eta_alg < 0.85, "{last:?}");
    }

    #[test]
    fn scatter_share_grows_with_processors() {
        let m = model();
        let p128 = m.predict(128);
        let p1024 = m.predict(1024);
        assert!(
            p1024.pct_scatters > p128.pct_scatters,
            "{} vs {}",
            p1024.pct_scatters,
            p128.pct_scatters
        );
        // Paper: 2.0 GB at 128 procs growing to 5.3 GB at 1024.
        assert!(p1024.scatter_bytes_per_it > 2.0 * p128.scatter_bytes_per_it);
    }

    #[test]
    fn scatter_volume_magnitude_matches_paper() {
        // Paper Table 3: ~2 GB/step at 128 procs, ~5.3 GB at 1024.
        let m = model();
        let gb128 = m.predict(128).scatter_bytes_per_it / 1e9;
        let gb1024 = m.predict(1024).scatter_bytes_per_it / 1e9;
        assert!(gb128 > 1.0 && gb128 < 4.0, "scatter volume {gb128} GB");
        assert!(gb1024 > 3.5 && gb1024 < 9.0, "scatter volume {gb1024} GB");
    }

    #[test]
    fn gflops_scale_sublinearly() {
        let m = model();
        let p256 = m.predict(256);
        let p1024 = m.predict(1024);
        let ratio = p1024.gflops / p256.gflops;
        assert!(ratio > 2.0 && ratio < 4.0, "4x procs -> {ratio}x Gflop/s");
    }

    #[test]
    fn t3e_beats_red_per_node_on_bandwidth() {
        // T3E's stronger memory system gives better per-node solve times.
        let red = model();
        let t3e = FixedSizeModel {
            machine: MachineSpec::cray_t3e(),
            ..model()
        };
        let r = red.predict(512);
        let t = t3e.predict(512);
        assert!(t.time < r.time, "T3E {} vs Red {}", t.time, r.time);
    }

    #[test]
    fn verts_per_proc_matches_figure1_range() {
        // Figure 1: ~22,000 vertices/proc at 128 nodes down to <1,000 at 3072.
        let m = model();
        assert!((m.predict(128).verts_per_proc - 21875.0).abs() < 1.0);
        assert!(m.predict(3072).verts_per_proc < 1000.0);
    }
}
