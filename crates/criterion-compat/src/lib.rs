//! In-tree, std-only stand-in for the subset of `criterion` this workspace's
//! benches use: `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology is deliberately simple — warm up once, time `sample_size`
//! samples of an auto-calibrated batch, report the median — which is enough
//! to compare kernel variants locally and keeps the workspace building with
//! no network access.  Results print as `name  median  (throughput)` lines.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor the harness CLI loosely: any free argument filters benchmark
        // names, `--bench`/`--test` and flag-like arguments are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.sample_size;
        let filter = self.filter.clone();
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
            filter,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let filter = self.filter.clone();
        run_one(&name.into(), self.sample_size, None, filter.as_deref(), f);
        self
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.filter.as_deref(),
            f,
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut samples = Vec::with_capacity(sample_size);
    // Warmup sample (calibrates the batch size), then timed samples.
    let mut b = Bencher {
        iters_per_sample: 1,
        elapsed_s: 0.0,
    };
    f(&mut b);
    b.calibrate();
    for _ in 0..sample_size {
        f(&mut b);
        samples.push(b.elapsed_s / b.iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 / median / 1e6),
        Throughput::Bytes(n) => format!("  {:.1} MB/s", n as f64 / median / 1e6),
    });
    println!(
        "  {name:<40} {}{}",
        fmt_time(median),
        rate.unwrap_or_default()
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    iters_per_sample: u64,
    elapsed_s: f64,
}

impl Bencher {
    /// Grow the batch so one sample takes a measurable amount of time.
    fn calibrate(&mut self) {
        let per_iter = self.elapsed_s / self.iters_per_sample as f64;
        if per_iter > 0.0 {
            // Target ~5 ms per sample, capped to keep total runtime sane.
            let target = (5e-3 / per_iter).ceil() as u64;
            self.iters_per_sample = target.clamp(1, 1_000_000);
        }
    }

    /// Time `routine`, called in a calibrated batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.elapsed_s = t0.elapsed().as_secs_f64();
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = 0.0;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed().as_secs_f64();
        }
        self.elapsed_s = total;
    }
}

/// Declare a group of benchmark functions (both criterion forms accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Elements(100));
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0u64;
        c.benchmark_group("g").bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups >= 2);
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
