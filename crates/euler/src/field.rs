//! Layout-aware field storage (Section 2.1.1).
//!
//! The same physical state can live in memory interlaced
//! (`u1,v1,w1,p1, u2,...`) or segregated (`u1,u2,..., v1,v2,...`).  The flux
//! and Jacobian kernels index through [`FieldVec`] so a single implementation
//! serves both layouts; the *addresses* it generates — and hence the cache
//! behaviour Table 1 measures — differ.

use fun3d_sparse::layout::FieldLayout;

use crate::model::{Comp, MAX_COMP};

/// A per-vertex multicomponent field in one of the two layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldVec {
    data: Vec<f64>,
    nverts: usize,
    ncomp: usize,
    layout: FieldLayout,
}

impl FieldVec {
    /// A zero field.
    pub fn zeros(nverts: usize, ncomp: usize, layout: FieldLayout) -> Self {
        assert!(ncomp <= MAX_COMP);
        Self {
            data: vec![0.0; nverts * ncomp],
            nverts,
            ncomp,
            layout,
        }
    }

    /// A field with every vertex set to `state`.
    pub fn constant(nverts: usize, ncomp: usize, layout: FieldLayout, state: &Comp) -> Self {
        let mut f = Self::zeros(nverts, ncomp, layout);
        for v in 0..nverts {
            f.set(v, state);
        }
        f
    }

    /// Wrap an existing flat vector (must have `nverts * ncomp` entries,
    /// already in `layout` order).
    pub fn from_vec(data: Vec<f64>, nverts: usize, ncomp: usize, layout: FieldLayout) -> Self {
        assert_eq!(data.len(), nverts * ncomp);
        assert!(ncomp <= MAX_COMP);
        Self {
            data,
            nverts,
            ncomp,
            layout,
        }
    }

    /// Number of vertices.
    pub fn nverts(&self) -> usize {
        self.nverts
    }

    /// Components per vertex.
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// The storage layout.
    pub fn layout(&self) -> FieldLayout {
        self.layout
    }

    /// The flat storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Flat index of component `c` at vertex `v`.
    #[inline(always)]
    pub fn idx(&self, v: usize, c: usize) -> usize {
        match self.layout {
            FieldLayout::Interlaced => v * self.ncomp + c,
            FieldLayout::Segregated => c * self.nverts + v,
        }
    }

    /// Read the state at vertex `v` into a fixed buffer.
    #[inline(always)]
    pub fn get(&self, v: usize) -> Comp {
        let mut q = [0.0; MAX_COMP];
        match self.layout {
            FieldLayout::Interlaced => {
                let base = v * self.ncomp;
                q[..self.ncomp].copy_from_slice(&self.data[base..base + self.ncomp]);
            }
            FieldLayout::Segregated => {
                for c in 0..self.ncomp {
                    q[c] = self.data[c * self.nverts + v];
                }
            }
        }
        q
    }

    /// Write the state at vertex `v`.
    #[inline(always)]
    pub fn set(&mut self, v: usize, q: &Comp) {
        match self.layout {
            FieldLayout::Interlaced => {
                let base = v * self.ncomp;
                self.data[base..base + self.ncomp].copy_from_slice(&q[..self.ncomp]);
            }
            FieldLayout::Segregated => {
                for c in 0..self.ncomp {
                    self.data[c * self.nverts + v] = q[c];
                }
            }
        }
    }

    /// Add `q` into the state at vertex `v`.
    #[inline(always)]
    pub fn add(&mut self, v: usize, q: &Comp) {
        match self.layout {
            FieldLayout::Interlaced => {
                let base = v * self.ncomp;
                for c in 0..self.ncomp {
                    self.data[base + c] += q[c];
                }
            }
            FieldLayout::Segregated => {
                for c in 0..self.ncomp {
                    self.data[c * self.nverts + v] += q[c];
                }
            }
        }
    }

    /// Convert to the other layout (new storage, same logical content).
    pub fn to_layout(&self, layout: FieldLayout) -> FieldVec {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = FieldVec::zeros(self.nverts, self.ncomp, layout);
        for v in 0..self.nverts {
            let q = self.get(v);
            out.set(v, &q);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_both_layouts() {
        for layout in [FieldLayout::Interlaced, FieldLayout::Segregated] {
            let mut f = FieldVec::zeros(5, 4, layout);
            let q = [1.0, 2.0, 3.0, 4.0, 0.0];
            f.set(3, &q);
            assert_eq!(f.get(3)[..4], q[..4]);
            assert_eq!(f.get(2)[..4], [0.0; 4]);
        }
    }

    #[test]
    fn layouts_place_data_differently() {
        let mut a = FieldVec::zeros(3, 2, FieldLayout::Interlaced);
        let mut b = FieldVec::zeros(3, 2, FieldLayout::Segregated);
        let q = [7.0, 9.0, 0.0, 0.0, 0.0];
        a.set(1, &q);
        b.set(1, &q);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 7.0, 9.0, 0.0, 0.0]);
        assert_eq!(b.as_slice(), &[0.0, 7.0, 0.0, 0.0, 9.0, 0.0]);
    }

    #[test]
    fn layout_conversion_preserves_content() {
        let mut f = FieldVec::zeros(4, 3, FieldLayout::Interlaced);
        for v in 0..4 {
            f.set(v, &[v as f64, 10.0 + v as f64, 20.0 + v as f64, 0.0, 0.0]);
        }
        let s = f.to_layout(FieldLayout::Segregated);
        for v in 0..4 {
            assert_eq!(f.get(v), s.get(v));
        }
        let back = s.to_layout(FieldLayout::Interlaced);
        assert_eq!(back.as_slice(), f.as_slice());
    }

    #[test]
    fn add_accumulates() {
        let mut f = FieldVec::constant(2, 4, FieldLayout::Segregated, &[1.0, 1.0, 1.0, 1.0, 0.0]);
        f.add(0, &[0.5, -1.0, 2.0, 0.0, 0.0]);
        assert_eq!(f.get(0)[..4], [1.5, 0.0, 3.0, 1.0]);
        assert_eq!(f.get(1)[..4], [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn idx_matches_layout_formulas() {
        let f = FieldVec::zeros(10, 4, FieldLayout::Interlaced);
        assert_eq!(f.idx(3, 2), 14);
        let g = FieldVec::zeros(10, 4, FieldLayout::Segregated);
        assert_eq!(g.idx(3, 2), 23);
    }
}
