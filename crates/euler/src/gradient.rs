//! Green–Gauss nodal gradients for second-order MUSCL reconstruction.
//!
//! `grad q_i = (1/V_i) [ sum_edges n_ij (q_i + q_j)/2 (outward-signed)
//!             + sum_boundary (n_f / 3) q_i ]`
//!
//! The gradient loop is itself an edge loop with the same memory behaviour
//! as the flux kernel; activating second order roughly doubles the flux
//! phase's traffic, which is why the paper treats discretization order as a
//! robustness *and* cost parameter.

use crate::field::FieldVec;
use crate::model::MAX_COMP;
use fun3d_mesh::tet::TetMesh;

/// Per-vertex gradients: `grads[v][c]` is the 3-vector gradient of component
/// `c` at vertex `v`, stored flat as `nverts * ncomp * 3`.
#[derive(Debug, Clone)]
pub struct Gradients {
    data: Vec<f64>,
    ncomp: usize,
}

impl Gradients {
    /// Allocate a zeroed gradient buffer.
    pub fn zeros(nverts: usize, ncomp: usize) -> Self {
        Self {
            data: vec![0.0; nverts * ncomp * 3],
            ncomp,
        }
    }

    /// The gradient 3-vector of component `c` at vertex `v`.
    #[inline(always)]
    pub fn get(&self, v: usize, c: usize) -> [f64; 3] {
        let base = (v * self.ncomp + c) * 3;
        [self.data[base], self.data[base + 1], self.data[base + 2]]
    }

    #[inline(always)]
    fn add(&mut self, v: usize, c: usize, d: [f64; 3]) {
        let base = (v * self.ncomp + c) * 3;
        self.data[base] += d[0];
        self.data[base + 1] += d[1];
        self.data[base + 2] += d[2];
    }

    /// Directional increment `grad q_c(v) . r`.
    #[inline(always)]
    pub fn project(&self, v: usize, c: usize, r: [f64; 3]) -> f64 {
        let g = self.get(v, c);
        g[0] * r[0] + g[1] * r[1] + g[2] * r[2]
    }

    /// Recompute Green–Gauss gradients of `q` on `mesh` into `self`.
    pub fn compute(&mut self, mesh: &TetMesh, q: &FieldVec) {
        let ncomp = self.ncomp;
        assert_eq!(q.ncomp(), ncomp);
        assert_eq!(q.nverts(), mesh.nverts());
        self.data.iter_mut().for_each(|x| *x = 0.0);
        let normals = mesh.edge_normals();
        for (e, &[a, b]) in mesh.edges().iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            let n = normals[e];
            let qa = q.get(a);
            let qb = q.get(b);
            for c in 0..ncomp {
                let avg = 0.5 * (qa[c] + qb[c]);
                self.add(a, c, [n[0] * avg, n[1] * avg, n[2] * avg]);
                self.add(b, c, [-n[0] * avg, -n[1] * avg, -n[2] * avg]);
            }
        }
        for f in mesh.boundary_faces() {
            let n3 = [f.normal[0] / 3.0, f.normal[1] / 3.0, f.normal[2] / 3.0];
            for &v in &f.verts {
                let v = v as usize;
                let qv = q.get(v);
                for c in 0..ncomp {
                    self.add(v, c, [n3[0] * qv[c], n3[1] * qv[c], n3[2] * qv[c]]);
                }
            }
        }
        let vols = mesh.dual_volumes();
        for v in 0..mesh.nverts() {
            let inv = 1.0 / vols[v];
            let base = v * ncomp * 3;
            for k in 0..ncomp * 3 {
                self.data[base + k] *= inv;
            }
        }
    }
}

/// Unlimited kappa = 1/3 MUSCL half-increment (shock-free flows; the paper
/// uses second order without limiting when no shocks are present).
#[inline(always)]
pub fn muscl_increment_unlimited(grad_dot_r: f64, dq_edge: f64) -> f64 {
    let d_plus = dq_edge;
    let d_minus = 2.0 * grad_dot_r - d_plus;
    0.25 * ((1.0 - 1.0 / 3.0) * d_minus + (1.0 + 1.0 / 3.0) * d_plus)
}

/// Van Albada–limited MUSCL extrapolation toward the edge midpoint:
/// given the upwind-projected increment `d_minus = 2 grad_i . r_ij - d_plus`
/// and the edge difference `d_plus = q_j - q_i`, return the limited
/// half-increment to add to `q_i`.
#[inline(always)]
pub fn muscl_increment(grad_dot_r: f64, dq_edge: f64) -> f64 {
    let d_plus = dq_edge;
    let d_minus = 2.0 * grad_dot_r - d_plus;
    let eps = 1e-12;
    let s = (2.0 * d_minus * d_plus + eps) / (d_minus * d_minus + d_plus * d_plus + eps);
    let s = s.max(0.0);
    // kappa = 1/3 scheme, limited by s (van Albada).
    0.25 * s * ((1.0 - s / 3.0) * d_minus + (1.0 + s / 3.0) * d_plus)
}

/// A fixed-size reconstruction of both edge endpoint states.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn reconstruct_edge(
    grads: &Gradients,
    a: usize,
    b: usize,
    r_ab: [f64; 3],
    qa: &[f64; MAX_COMP],
    qb: &[f64; MAX_COMP],
    ncomp: usize,
    limited: bool,
) -> ([f64; MAX_COMP], [f64; MAX_COMP]) {
    let mut ql = *qa;
    let mut qr = *qb;
    for c in 0..ncomp {
        let dq = qb[c] - qa[c];
        if limited {
            ql[c] += muscl_increment(grads.project(a, c, r_ab), dq);
            qr[c] -= muscl_increment(grads.project(b, c, r_ab), dq);
        } else {
            ql[c] += muscl_increment_unlimited(grads.project(a, c, r_ab), dq);
            qr[c] -= muscl_increment_unlimited(grads.project(b, c, r_ab), dq);
        }
    }
    (ql, qr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::BumpChannelSpec;
    use fun3d_sparse::layout::FieldLayout;

    #[test]
    fn gradient_of_constant_field_is_zero() {
        let mesh = BumpChannelSpec::with_dims(6, 5, 4).build();
        let q = FieldVec::constant(
            mesh.nverts(),
            4,
            FieldLayout::Interlaced,
            &[2.0, 1.0, 0.5, -1.0, 0.0],
        );
        let mut g = Gradients::zeros(mesh.nverts(), 4);
        g.compute(&mesh, &q);
        for v in 0..mesh.nverts() {
            for c in 0..4 {
                let gr = g.get(v, c);
                let mag = (gr[0] * gr[0] + gr[1] * gr[1] + gr[2] * gr[2]).sqrt();
                assert!(mag < 1e-10, "v={v} c={c}: {gr:?}");
            }
        }
    }

    #[test]
    fn gradient_of_linear_field_is_exact_in_interior() {
        let mut spec = BumpChannelSpec::with_dims(8, 7, 6);
        spec.jitter = 0.1;
        spec.bump_height = 0.0;
        let mesh = spec.build();
        // q_0(x) = 2x + 3y - z.
        let mut q = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        for (v, p) in mesh.coords().iter().enumerate() {
            q.set(v, &[2.0 * p[0] + 3.0 * p[1] - p[2], 0.0, 0.0, 0.0, 0.0]);
        }
        let mut g = Gradients::zeros(mesh.nverts(), 4);
        g.compute(&mesh, &q);
        // Green-Gauss over closed interior control volumes is exact for
        // linear fields. Boundary vertices use a one-sided closure that is
        // exact too (face value = vertex value is only first-order, so test
        // interior vertices).
        let coords = mesh.coords();
        let interior: Vec<usize> = {
            let mut on_boundary = vec![false; mesh.nverts()];
            for f in mesh.boundary_faces() {
                for &v in &f.verts {
                    on_boundary[v as usize] = true;
                }
            }
            (0..mesh.nverts()).filter(|&v| !on_boundary[v]).collect()
        };
        assert!(!interior.is_empty());
        for &v in &interior {
            let gr = g.get(v, 0);
            let err =
                ((gr[0] - 2.0).powi(2) + (gr[1] - 3.0).powi(2) + (gr[2] + 1.0).powi(2)).sqrt();
            assert!(err < 1e-9, "v={v} at {:?}: grad {gr:?}", coords[v]);
        }
    }

    #[test]
    fn muscl_increment_vanishes_on_flat_data() {
        assert_eq!(muscl_increment(0.0, 0.0), 0.0);
    }

    #[test]
    fn muscl_increment_recovers_half_difference_on_smooth_data() {
        // Smooth (d_minus == d_plus): increment = d/2 exactly (s = 1, kappa
        // terms cancel to (2/3 + 1/3) scaling... verify numerically).
        let d = 0.4;
        let inc = muscl_increment(d, d);
        assert!((inc - 0.5 * d).abs() < 1e-9, "{inc}");
    }

    #[test]
    fn unlimited_increment_is_smooth_at_extrema() {
        // No clipping: the unlimited scheme keeps a linear response.
        let inc = muscl_increment_unlimited(0.5, 0.5);
        assert!((inc - 0.25).abs() < 1e-12);
        // d_minus = 2*0.5 - 0.5 = 0.5; 0.25*(2/3*0.5 + 4/3*0.5) = 0.25.
    }

    #[test]
    fn muscl_limits_at_extrema() {
        // Opposite-sign slopes (local extremum): increment ~ 0.
        let inc = muscl_increment(-0.5, 1.0);
        assert!(inc.abs() < 0.1, "{inc}");
    }

    #[test]
    fn reconstruction_is_exact_for_linear_fields() {
        // If grad is exact and data is linear, ql == value at midpoint.
        let mut g = Gradients::zeros(2, 1);
        // Hand-set gradient of q(x) = 5x at both vertices.
        g.data[0] = 5.0;
        g.data[3] = 5.0;
        let qa = [0.0; MAX_COMP]; // q at x=0
        let mut qb = [0.0; MAX_COMP];
        qb[0] = 5.0; // q at x=1
        let (ql, qr) = reconstruct_edge(&g, 0, 1, [1.0, 0.0, 0.0], &qa, &qb, 1, true);
        assert!((ql[0] - 2.5).abs() < 1e-9, "{}", ql[0]);
        assert!((qr[0] - 2.5).abs() < 1e-9, "{}", qr[0]);
        let (ql, qr) = reconstruct_edge(&g, 0, 1, [1.0, 0.0, 0.0], &qa, &qb, 1, false);
        assert!((ql[0] - 2.5).abs() < 1e-9, "{}", ql[0]);
        assert!((qr[0] - 2.5).abs() < 1e-9, "{}", qr[0]);
    }
}
