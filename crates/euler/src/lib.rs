//! Edge-based finite-volume Euler discretization — the FUN3D analogue.
//!
//! FUN3D solves the Euler / Navier–Stokes equations vertex-centered on
//! unstructured tetrahedral meshes; the paper's experiments use its
//! incompressible and compressible Euler paths (4 and 5 unknowns per vertex).
//! This crate reimplements that discretization:
//!
//! * [`model`] — the two flow models: incompressible Euler in Chorin
//!   artificial-compressibility form and compressible Euler with an ideal
//!   gas, each with analytic flux Jacobians (verified against finite
//!   differences in the tests).
//! * [`field`] — layout-aware state storage: the *interlaced* vs.
//!   *noninterlaced* orderings of Section 2.1.1.
//! * [`gradient`] — Green–Gauss nodal gradients for second-order MUSCL
//!   reconstruction (the "discretization order" robustness parameter of
//!   Section 2.4.1).
//! * [`residual`] — the edge-loop flux kernel (first or second order,
//!   Rusanov dissipation), boundary conditions (inflow / outflow / slip
//!   wall), and the first-order analytic Jacobian used to build the
//!   preconditioner — "the preconditioner matrix is always built out of a
//!   first-order analytical Jacobian matrix".
//!
//! The flux kernel is the instruction-scheduling-bound phase of the paper
//! (over 60% of execution time); its memory reference pattern under the
//! different edge/vertex orderings is what Table 1 and Figure 3 measure.

pub mod field;
pub mod gradient;
pub mod model;
pub mod residual;

pub use field::FieldVec;
pub use model::FlowModel;
pub use residual::{Discretization, SpatialOrder};
