//! Flow models: incompressible (artificial compressibility) and
//! compressible Euler, with fluxes, wave speeds, and analytic Jacobians.
//!
//! States and fluxes use fixed `[f64; 5]` buffers with a runtime component
//! count (4 incompressible, 5 compressible), so the kernels are free of heap
//! allocation.
//!
//! Conventions: face normals are *area-weighted* (not unit); all fluxes and
//! Jacobians are per-face, i.e. already multiplied by the face area.

/// Maximum number of components any model uses.
pub const MAX_COMP: usize = 5;

/// A small state/flux vector.
pub type Comp = [f64; MAX_COMP];

/// A small `ncomp x ncomp` Jacobian in row-major `[f64; 25]`.
pub type CompMat = [f64; MAX_COMP * MAX_COMP];

/// The flow model and its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowModel {
    /// Incompressible Euler in Chorin artificial-compressibility form.
    /// State: `[p, u, v, w]`.  `beta` is the artificial compressibility
    /// parameter (the pseudo-sound-speed squared).
    Incompressible {
        /// Artificial compressibility parameter.
        beta: f64,
    },
    /// Compressible Euler, conservative state `[rho, rho u, rho v, rho w, E]`
    /// with ideal-gas pressure `p = (gamma - 1)(E - rho |u|^2 / 2)`.
    Compressible {
        /// Ratio of specific heats.
        gamma: f64,
    },
}

impl FlowModel {
    /// Default incompressible model (`beta = 10`, a robust mid-range value).
    pub fn incompressible() -> Self {
        FlowModel::Incompressible { beta: 10.0 }
    }

    /// Default compressible model (`gamma = 1.4`, subsonic M6-like regime).
    pub fn compressible() -> Self {
        FlowModel::Compressible { gamma: 1.4 }
    }

    /// Unknowns per vertex: 4 incompressible, 5 compressible (the block
    /// sizes of Table 1's two columns).
    pub fn ncomp(&self) -> usize {
        match self {
            FlowModel::Incompressible { .. } => 4,
            FlowModel::Compressible { .. } => 5,
        }
    }

    /// The freestream state used for initialization and inflow boundaries:
    /// unit streamwise velocity.
    pub fn freestream(&self) -> Comp {
        match self {
            // p = 0 gauge, u = (1, 0, 0).
            FlowModel::Incompressible { .. } => [0.0, 1.0, 0.0, 0.0, 0.0],
            // rho = 1, u = (M, 0, 0) with M = 0.3 subsonic at unit sound
            // speed scaling: p0 chosen so c = 1 => p = rho c^2 / gamma.
            FlowModel::Compressible { gamma } => {
                let rho = 1.0;
                let mach = 0.3;
                let p = rho / gamma; // c = sqrt(gamma p / rho) = 1
                let u = mach;
                let e = p / (gamma - 1.0) + 0.5 * rho * u * u;
                [rho, rho * u, 0.0, 0.0, e]
            }
        }
    }

    /// Convective flux through an area-weighted normal: `F(q) . n`.
    #[inline]
    pub fn flux(&self, q: &Comp, n: [f64; 3]) -> Comp {
        let mut f = [0.0; MAX_COMP];
        match *self {
            FlowModel::Incompressible { beta } => {
                let (p, u, v, w) = (q[0], q[1], q[2], q[3]);
                let theta = u * n[0] + v * n[1] + w * n[2];
                f[0] = beta * theta;
                f[1] = u * theta + p * n[0];
                f[2] = v * theta + p * n[1];
                f[3] = w * theta + p * n[2];
            }
            FlowModel::Compressible { gamma } => {
                let rho = q[0];
                let inv_rho = 1.0 / rho;
                let (u, v, w) = (q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho);
                let e = q[4];
                let p = (gamma - 1.0) * (e - 0.5 * rho * (u * u + v * v + w * w));
                let theta = u * n[0] + v * n[1] + w * n[2];
                f[0] = rho * theta;
                f[1] = q[1] * theta + p * n[0];
                f[2] = q[2] * theta + p * n[1];
                f[3] = q[3] * theta + p * n[2];
                f[4] = (e + p) * theta;
            }
        }
        f
    }

    /// The pressure of a state (gauge pressure for incompressible).
    #[inline]
    pub fn pressure(&self, q: &Comp) -> f64 {
        match *self {
            FlowModel::Incompressible { .. } => q[0],
            FlowModel::Compressible { gamma } => {
                let rho = q[0];
                let ke = 0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / rho;
                (gamma - 1.0) * (q[4] - ke)
            }
        }
    }

    /// Maximum characteristic speed through the (area-weighted) normal —
    /// the Rusanov dissipation coefficient, already scaled by face area.
    #[inline]
    pub fn max_wavespeed(&self, q: &Comp, n: [f64; 3]) -> f64 {
        let area2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
        match *self {
            FlowModel::Incompressible { beta } => {
                let theta = q[1] * n[0] + q[2] * n[1] + q[3] * n[2];
                theta.abs() + (theta * theta + beta * area2).sqrt()
            }
            FlowModel::Compressible { gamma } => {
                let inv_rho = 1.0 / q[0];
                let theta = (q[1] * n[0] + q[2] * n[1] + q[3] * n[2]) * inv_rho;
                let p = self.pressure(q);
                let c = (gamma * p * inv_rho).max(0.0).sqrt();
                theta.abs() + c * area2.sqrt()
            }
        }
    }

    /// Analytic flux Jacobian `A(q) = d(F(q).n)/dq`, row-major `ncomp x
    /// ncomp` in the top-left of the returned buffer.
    pub fn flux_jacobian(&self, q: &Comp, n: [f64; 3]) -> CompMat {
        let mut a = [0.0; MAX_COMP * MAX_COMP];
        let m = MAX_COMP;
        match *self {
            FlowModel::Incompressible { beta } => {
                let (u, v, w) = (q[1], q[2], q[3]);
                let theta = u * n[0] + v * n[1] + w * n[2];
                // Row 0: d(beta theta)/d[p,u,v,w]
                a[1] = beta * n[0];
                a[2] = beta * n[1];
                a[3] = beta * n[2];
                // Row 1: d(u theta + p nx)
                a[m] = n[0];
                a[m + 1] = theta + u * n[0];
                a[m + 2] = u * n[1];
                a[m + 3] = u * n[2];
                // Row 2: d(v theta + p ny)
                a[2 * m] = n[1];
                a[2 * m + 1] = v * n[0];
                a[2 * m + 2] = theta + v * n[1];
                a[2 * m + 3] = v * n[2];
                // Row 3: d(w theta + p nz)
                a[3 * m] = n[2];
                a[3 * m + 1] = w * n[0];
                a[3 * m + 2] = w * n[1];
                a[3 * m + 3] = theta + w * n[2];
            }
            FlowModel::Compressible { gamma } => {
                let g1 = gamma - 1.0;
                let rho = q[0];
                let inv_rho = 1.0 / rho;
                let (u, v, w) = (q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho);
                let e = q[4];
                let q2 = u * u + v * v + w * w;
                let phi2 = 0.5 * g1 * q2;
                let theta = u * n[0] + v * n[1] + w * n[2];
                let p = g1 * (e - 0.5 * rho * q2);
                let h = (e + p) * inv_rho; // total enthalpy
                let vel = [u, v, w];
                // Row 0.
                a[1] = n[0];
                a[2] = n[1];
                a[3] = n[2];
                // Rows 1..3 (momentum i).
                for i in 0..3 {
                    let r = (i + 1) * m;
                    a[r] = phi2 * n[i] - vel[i] * theta;
                    for j in 0..3 {
                        a[r + 1 + j] =
                            vel[i] * n[j] - g1 * vel[j] * n[i] + if i == j { theta } else { 0.0 };
                    }
                    a[r + 4] = g1 * n[i];
                }
                // Row 4 (energy).
                let r = 4 * m;
                a[r] = (phi2 - h) * theta;
                for j in 0..3 {
                    a[r + 1 + j] = h * n[j] - g1 * vel[j] * theta;
                }
                a[r + 4] = gamma * theta;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<FlowModel> {
        vec![FlowModel::incompressible(), FlowModel::compressible()]
    }

    fn test_state(model: &FlowModel) -> Comp {
        match model {
            FlowModel::Incompressible { .. } => [0.3, 0.9, -0.2, 0.15, 0.0],
            FlowModel::Compressible { .. } => {
                // rho=1.1, u=(0.4,-0.1,0.2), p=0.8
                let gamma = 1.4;
                let rho: f64 = 1.1;
                let (u, v, w) = (0.4, -0.1, 0.2);
                let p = 0.8;
                let e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
                [rho, rho * u, rho * v, rho * w, e]
            }
        }
    }

    #[test]
    fn flux_jacobian_matches_finite_differences() {
        let n = [0.3, -0.7, 0.2];
        for model in models() {
            let m = model.ncomp();
            let q0 = test_state(&model);
            let a = model.flux_jacobian(&q0, n);
            let f0 = model.flux(&q0, n);
            let eps = 1e-7;
            for j in 0..m {
                let mut qp = q0;
                qp[j] += eps;
                let fp = model.flux(&qp, n);
                for i in 0..m {
                    let fd = (fp[i] - f0[i]) / eps;
                    let an = a[i * MAX_COMP + j];
                    assert!(
                        (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                        "{model:?} A[{i}][{j}]: analytic {an} vs FD {fd}"
                    );
                }
            }
        }
    }

    #[test]
    fn flux_is_linear_in_normal() {
        for model in models() {
            let q = test_state(&model);
            let n1 = [0.2, 0.5, -0.1];
            let f1 = model.flux(&q, n1);
            let f2 = model.flux(&q, [0.4, 1.0, -0.2]);
            for i in 0..model.ncomp() {
                assert!((f2[i] - 2.0 * f1[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wavespeed_positive_and_scales_with_area() {
        for model in models() {
            let q = test_state(&model);
            let lam1 = model.max_wavespeed(&q, [0.1, 0.2, 0.2]);
            let lam2 = model.max_wavespeed(&q, [0.2, 0.4, 0.4]);
            assert!(lam1 > 0.0);
            assert!((lam2 - 2.0 * lam1).abs() < 1e-12, "{model:?}");
        }
    }

    #[test]
    fn wavespeed_dominates_flux_jacobian_normal_speed() {
        // |theta| <= lambda_max: Rusanov dissipation upper-bounds transport.
        for model in models() {
            let q = test_state(&model);
            let n = [0.5, -0.3, 0.2];
            let lam = model.max_wavespeed(&q, n);
            let theta = match model {
                FlowModel::Incompressible { .. } => q[1] * n[0] + q[2] * n[1] + q[3] * n[2],
                FlowModel::Compressible { .. } => (q[1] * n[0] + q[2] * n[1] + q[3] * n[2]) / q[0],
            };
            assert!(lam >= theta.abs());
        }
    }

    #[test]
    fn compressible_pressure_recovered() {
        let model = FlowModel::compressible();
        let q = test_state(&model);
        assert!((model.pressure(&q) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn freestream_is_physical() {
        let m = FlowModel::compressible();
        let q = m.freestream();
        assert!(q[0] > 0.0);
        assert!(m.pressure(&q) > 0.0);
        let mi = FlowModel::incompressible();
        assert_eq!(mi.freestream()[1], 1.0);
    }

    #[test]
    fn ncomp_matches_dofs_in_paper() {
        // 22,677 vertices -> 90,708 DOFs incompressible; 113,385 compressible.
        assert_eq!(22_677 * FlowModel::incompressible().ncomp(), 90_708);
        assert_eq!(22_677 * FlowModel::compressible().ncomp(), 113_385);
    }
}
