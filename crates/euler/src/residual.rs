//! The edge-based residual and its first-order analytic Jacobian.
//!
//! `R_i(q) = sum_{edges (i,j)} F_rusanov(q_i, q_j, n_ij)
//!          + sum_{boundary faces at i} F_bc(q_i, n_f / 3)`
//!
//! so the steady state satisfies `R(q) = 0` and pseudo-transient
//! continuation integrates `V_i dq_i/dtau = -R_i`.
//!
//! The flux through each dual face is Rusanov (local Lax–Friedrichs):
//! central average plus `lambda_max` dissipation — robust, smooth, and with
//! a compact analytic Jacobian, which is what the preconditioner wants
//! ("the preconditioner matrix is always built out of a first-order
//! analytical Jacobian matrix").  Second-order accuracy comes from limited
//! MUSCL reconstruction of the endpoint states (see [`crate::gradient`]);
//! per the paper the Jacobian stays first-order regardless.

use crate::field::FieldVec;
use crate::gradient::{reconstruct_edge, Gradients};
use crate::model::{Comp, FlowModel, MAX_COMP};
use fun3d_mesh::tet::{BoundaryKind, TetMesh};
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::layout::FieldLayout;
use fun3d_sparse::par::ParCtx;
use fun3d_sparse::triplet::TripletMatrix;

/// Spatial accuracy of the flux evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialOrder {
    /// Pure Rusanov on nodal states.
    First,
    /// Unlimited kappa = 1/3 MUSCL reconstruction — the paper's choice for
    /// shock-free simulations ("in shock-free simulations we use
    /// second-order accuracy throughout").
    Second,
    /// Van Albada–limited MUSCL reconstruction, for flows with (near-)
    /// discontinuities.
    SecondLimited,
}

/// Scratch space reused across residual evaluations.
#[derive(Debug, Clone)]
pub struct Workspace {
    grads: Gradients,
}

/// The spatial discretization on a mesh.
pub struct Discretization<'m> {
    mesh: &'m TetMesh,
    model: FlowModel,
    layout: FieldLayout,
    order: SpatialOrder,
    freestream: Comp,
    /// Optional laminar viscosity: adds an edge-based diffusion of the
    /// velocity/momentum components (a thin-layer Navier-Stokes term; FUN3D
    /// solves "the Euler and Navier-Stokes equations", the paper's
    /// experiments are inviscid so this defaults to off).
    viscosity: Option<f64>,
}

impl<'m> Discretization<'m> {
    /// Create a discretization.
    pub fn new(
        mesh: &'m TetMesh,
        model: FlowModel,
        layout: FieldLayout,
        order: SpatialOrder,
    ) -> Self {
        let freestream = model.freestream();
        Self {
            mesh,
            model,
            layout,
            order,
            freestream,
            viscosity: None,
        }
    }

    /// Enable the laminar viscous term with viscosity `mu`.
    pub fn with_viscosity(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "viscosity must be nonnegative");
        self.viscosity = if mu > 0.0 { Some(mu) } else { None };
        self
    }

    /// The configured viscosity, if any.
    pub fn viscosity(&self) -> Option<f64> {
        self.viscosity
    }

    /// The mesh.
    pub fn mesh(&self) -> &TetMesh {
        self.mesh
    }

    /// The flow model.
    pub fn model(&self) -> &FlowModel {
        &self.model
    }

    /// Unknown layout.
    pub fn layout(&self) -> FieldLayout {
        self.layout
    }

    /// Spatial order currently in effect.
    pub fn order(&self) -> SpatialOrder {
        self.order
    }

    /// Switch spatial order (the first/second-order continuation switch of
    /// Section 2.4.1).
    pub fn set_order(&mut self, order: SpatialOrder) {
        self.order = order;
    }

    /// Components per vertex.
    pub fn ncomp(&self) -> usize {
        self.model.ncomp()
    }

    /// Total unknowns.
    pub fn nunknowns(&self) -> usize {
        self.mesh.nverts() * self.ncomp()
    }

    /// Freestream initial state.
    pub fn initial_state(&self) -> FieldVec {
        FieldVec::constant(
            self.mesh.nverts(),
            self.ncomp(),
            self.layout,
            &self.freestream,
        )
    }

    /// Allocate the reusable workspace.
    pub fn workspace(&self) -> Workspace {
        Workspace {
            grads: Gradients::zeros(self.mesh.nverts(), self.ncomp()),
        }
    }

    /// Evaluate `R(q)` into `res` (both in this discretization's layout).
    pub fn residual(&self, q: &FieldVec, res: &mut FieldVec, ws: &mut Workspace) {
        assert_eq!(q.nverts(), self.mesh.nverts());
        assert_eq!(q.ncomp(), self.ncomp());
        assert_eq!(q.layout(), self.layout);
        res.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
        let second = !matches!(self.order, SpatialOrder::First);
        let limited = matches!(self.order, SpatialOrder::SecondLimited);
        if second {
            ws.grads.compute(self.mesh, q);
        }
        let grads = second.then_some(&ws.grads);
        let nedges = self.mesh.nedges();
        self.flux_pass(q, grads, limited, res, 0..nedges);
        if let Some(mu) = self.viscosity {
            self.viscous_pass(mu, q, res, 0..nedges);
        }
        self.boundary_pass(q, res);
    }

    /// Threaded [`residual`](Self::residual): the edge loops are partitioned
    /// across the team with per-thread *private* residual arrays, gathered
    /// into `res` in ascending thread order afterwards — the paper's
    /// OpenMP private-array scheme (Section 2.5), where the gather is the
    /// ghost-accumulation step.  Gradients and boundary fluxes stay
    /// sequential.  The gather reorders floating-point additions, so the
    /// result matches the sequential kernel to rounding (~1e-15 relative),
    /// deterministically for a fixed thread count.
    pub fn residual_par(&self, q: &FieldVec, res: &mut FieldVec, ws: &mut Workspace, ctx: &ParCtx) {
        if ctx.nthreads() == 1 {
            return self.residual(q, res, ws);
        }
        assert_eq!(q.nverts(), self.mesh.nverts());
        assert_eq!(q.ncomp(), self.ncomp());
        assert_eq!(q.layout(), self.layout);
        res.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
        let second = !matches!(self.order, SpatialOrder::First);
        let limited = matches!(self.order, SpatialOrder::SecondLimited);
        if second {
            ws.grads.compute(self.mesh, q);
        }
        let grads = second.then_some(&ws.grads);
        let nedges = self.mesh.nedges();
        let privates = ctx.map_chunks("residual_flux", nedges, |_, range| {
            let mut local = FieldVec::zeros(self.mesh.nverts(), self.ncomp(), self.layout);
            self.flux_pass(q, grads, limited, &mut local, range.clone());
            if let Some(mu) = self.viscosity {
                self.viscous_pass(mu, q, &mut local, range);
            }
            local
        });
        for private in &privates {
            for (r, p) in res.as_mut_slice().iter_mut().zip(private.as_slice()) {
                *r += p;
            }
        }
        self.boundary_pass(q, res);
    }

    /// Analytic bytes moved by one [`residual`](Self::residual) evaluation
    /// under perfect vertex-state reuse: per edge, two `ncomp`-wide states
    /// read, one 24-byte normal, and two read-modify-write residual
    /// updates; plus one streaming write to zero `res`.  A lower bound in
    /// the spirit of the paper's Eq. 1 edge-loop traffic model (gather
    /// locality decides how far reality sits above it).
    pub fn residual_traffic_bytes(&self) -> f64 {
        let ncomp = self.ncomp() as f64;
        let nedges = self.mesh.nedges() as f64;
        let n = (self.mesh.nverts() as f64) * ncomp;
        nedges * (2.0 * 8.0 * ncomp + 24.0 + 4.0 * 8.0 * ncomp) + 8.0 * n
    }

    /// Rusanov flux accumulation over a range of interior edges — the
    /// kernel of Table 1 / Figure 3.  Contributions are *added* to `res`.
    fn flux_pass(
        &self,
        q: &FieldVec,
        grads: Option<&Gradients>,
        limited: bool,
        res: &mut FieldVec,
        range: std::ops::Range<usize>,
    ) {
        let ncomp = self.ncomp();
        let normals = self.mesh.edge_normals();
        let coords = self.mesh.coords();
        let edges = self.mesh.edges();
        for e in range {
            let [a, b] = edges[e];
            let (a, b) = (a as usize, b as usize);
            let n = normals[e];
            let qa = q.get(a);
            let qb = q.get(b);
            let (ql, qr) = if let Some(g) = grads {
                let r_ab = [
                    coords[b][0] - coords[a][0],
                    coords[b][1] - coords[a][1],
                    coords[b][2] - coords[a][2],
                ];
                reconstruct_edge(g, a, b, r_ab, &qa, &qb, ncomp, limited)
            } else {
                (qa, qb)
            };
            let f = self.rusanov(&ql, &qr, n);
            let mut fneg = [0.0; MAX_COMP];
            for c in 0..ncomp {
                fneg[c] = -f[c];
            }
            res.add(a, &f);
            res.add(b, &fneg);
        }
    }

    /// Viscous (edge-based diffusion) term on the momentum components, over
    /// a range of edges.
    fn viscous_pass(
        &self,
        mu: f64,
        q: &FieldVec,
        res: &mut FieldVec,
        range: std::ops::Range<usize>,
    ) {
        let normals = self.mesh.edge_normals();
        let coords = self.mesh.coords();
        let edges = self.mesh.edges();
        for e in range {
            let [a, b] = edges[e];
            let (a, b) = (a as usize, b as usize);
            let n = normals[e];
            let area = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            let dx = [
                coords[b][0] - coords[a][0],
                coords[b][1] - coords[a][1],
                coords[b][2] - coords[a][2],
            ];
            let dist = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
            let kappa = mu * area / dist;
            let qa = q.get(a);
            let qb = q.get(b);
            let mut fa = [0.0; MAX_COMP];
            for c in 1..4 {
                fa[c] = kappa * (qa[c] - qb[c]);
            }
            let mut fb = [0.0; MAX_COMP];
            for c in 1..4 {
                fb[c] = -fa[c];
            }
            res.add(a, &fa);
            res.add(b, &fb);
        }
    }

    /// Boundary-face fluxes (always sequential: the face count is small and
    /// faces of one vertex may repeat).
    fn boundary_pass(&self, q: &FieldVec, res: &mut FieldVec) {
        for face in self.mesh.boundary_faces() {
            let n3 = [
                face.normal[0] / 3.0,
                face.normal[1] / 3.0,
                face.normal[2] / 3.0,
            ];
            for &v in &face.verts {
                let v = v as usize;
                let qv = q.get(v);
                let f = self.boundary_flux(face.kind, &qv, n3);
                res.add(v, &f);
            }
        }
    }

    /// Integrated pressure force over the solid (wall) boundary — the
    /// aerodynamic quantity a FUN3D user extracts (drag/lift components).
    /// Each boundary face contributes `p_v * n_f / 3` per vertex.
    pub fn wall_forces(&self, q: &FieldVec) -> [f64; 3] {
        let mut f = [0.0f64; 3];
        for face in self.mesh.boundary_faces() {
            if face.kind != fun3d_mesh::tet::BoundaryKind::Wall {
                continue;
            }
            for &v in &face.verts {
                let p = self.model.pressure(&q.get(v as usize));
                f[0] += p * face.normal[0] / 3.0;
                f[1] += p * face.normal[1] / 3.0;
                f[2] += p * face.normal[2] / 3.0;
            }
        }
        f
    }

    /// First-order flux accumulation over a *range* of edges only, with no
    /// boundary terms — the kernel Table 5 parallelizes across threads
    /// (OpenMP analogue) or subdomain processes.  `res` must be zeroed (or
    /// hold a partial sum) on entry; contributions are added.
    pub fn edge_flux_residual(
        &self,
        q: &FieldVec,
        res: &mut FieldVec,
        range: std::ops::Range<usize>,
    ) {
        assert!(range.end <= self.mesh.nedges());
        let ncomp = self.ncomp();
        let normals = self.mesh.edge_normals();
        let edges = self.mesh.edges();
        for e in range {
            let [a, b] = edges[e];
            let (a, b) = (a as usize, b as usize);
            let n = normals[e];
            let qa = q.get(a);
            let qb = q.get(b);
            let f = self.rusanov(&qa, &qb, n);
            let mut fneg = [0.0; MAX_COMP];
            for c in 0..ncomp {
                fneg[c] = -f[c];
            }
            res.add(a, &f);
            res.add(b, &fneg);
        }
    }

    /// Rusanov numerical flux between reconstructed states.
    #[inline]
    fn rusanov(&self, ql: &Comp, qr: &Comp, n: [f64; 3]) -> Comp {
        let ncomp = self.ncomp();
        let fl = self.model.flux(ql, n);
        let fr = self.model.flux(qr, n);
        let lam = self
            .model
            .max_wavespeed(ql, n)
            .max(self.model.max_wavespeed(qr, n));
        let mut f = [0.0; MAX_COMP];
        for c in 0..ncomp {
            f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * lam * (qr[c] - ql[c]);
        }
        f
    }

    /// Boundary flux through a (share of a) face normal.
    #[inline]
    fn boundary_flux(&self, kind: BoundaryKind, q: &Comp, n: [f64; 3]) -> Comp {
        match kind {
            BoundaryKind::Wall => {
                // Slip wall: no through-flow; only the pressure force.
                let p = self.model.pressure(q);
                let mut f = [0.0; MAX_COMP];
                f[1] = p * n[0];
                f[2] = p * n[1];
                f[3] = p * n[2];
                f
            }
            BoundaryKind::Inflow => self.rusanov(q, &self.freestream, n),
            BoundaryKind::Outflow => self.model.flux(q, n),
        }
    }

    /// Global L2 norm of a residual field.
    pub fn residual_norm(&self, res: &FieldVec) -> f64 {
        fun3d_sparse::vec_ops::norm2(res.as_slice())
    }

    /// Per-unknown dual volumes in this layout (for the `V/dtau` diagonal of
    /// pseudo-transient continuation).
    pub fn unknown_volumes(&self) -> Vec<f64> {
        let nv = self.mesh.nverts();
        let ncomp = self.ncomp();
        let vols = self.mesh.dual_volumes();
        let mut out = vec![0.0; nv * ncomp];
        for v in 0..nv {
            for c in 0..ncomp {
                let idx = match self.layout {
                    FieldLayout::Interlaced => v * ncomp + c,
                    FieldLayout::Segregated => c * nv + v,
                };
                out[idx] = vols[v];
            }
        }
        out
    }

    /// Per-vertex sums of face wave speeds at state `q` — the denominator of
    /// the local pseudo-timestep `dtau_i = CFL * V_i / sum lambda`.
    pub fn wavespeed_sums(&self, q: &FieldVec) -> Vec<f64> {
        let mut sums = vec![0.0; self.mesh.nverts()];
        let normals = self.mesh.edge_normals();
        for (e, &[a, b]) in self.mesh.edges().iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            let lam = self
                .model
                .max_wavespeed(&q.get(a), normals[e])
                .max(self.model.max_wavespeed(&q.get(b), normals[e]));
            sums[a] += lam;
            sums[b] += lam;
        }
        for face in self.mesh.boundary_faces() {
            let n3 = [
                face.normal[0] / 3.0,
                face.normal[1] / 3.0,
                face.normal[2] / 3.0,
            ];
            for &v in &face.verts {
                let v = v as usize;
                sums[v] += self.model.max_wavespeed(&q.get(v), n3);
            }
        }
        sums
    }

    /// Assemble the first-order analytic Jacobian `dR/dq` at `q` (Rusanov
    /// with frozen dissipation coefficient), in this discretization's
    /// unknown layout.
    pub fn jacobian(&self, q: &FieldVec) -> CsrMatrix {
        let ncomp = self.ncomp();
        let nv = self.mesh.nverts();
        let n_unknowns = nv * ncomp;
        let idx = |v: usize, c: usize| -> usize {
            match self.layout {
                FieldLayout::Interlaced => v * ncomp + c,
                FieldLayout::Segregated => c * nv + v,
            }
        };
        let mut t = TripletMatrix::with_capacity(
            n_unknowns,
            n_unknowns,
            (self.mesh.nedges() * 4 + nv) * ncomp * ncomp,
        );
        // Full ncomp x ncomp blocks are always stored (PETSc BAIJ semantics):
        // the sparsity pattern must not depend on the linearization state, or
        // pattern-reusing consumers (ILU refactor, BCSR refill) would break.
        let mut push_block = |vi: usize, vj: usize, sign: f64, a: &[f64], extra_diag: f64| {
            for r in 0..ncomp {
                for c in 0..ncomp {
                    let mut val = a[r * MAX_COMP + c];
                    if r == c {
                        val += extra_diag;
                    }
                    t.push(idx(vi, r), idx(vj, c), sign * val);
                }
            }
        };
        let half = 0.5;
        let normals = self.mesh.edge_normals();
        for (e, &[a, b]) in self.mesh.edges().iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            let n = normals[e];
            let qa = q.get(a);
            let qb = q.get(b);
            let lam = self
                .model
                .max_wavespeed(&qa, n)
                .max(self.model.max_wavespeed(&qb, n));
            let ja = self.model.flux_jacobian(&qa, n);
            let jb = self.model.flux_jacobian(&qb, n);
            // dF/dqa = A(qa)/2 + lam/2 I ; dF/dqb = A(qb)/2 - lam/2 I.
            let scaled = |m: &[f64; MAX_COMP * MAX_COMP]| -> [f64; MAX_COMP * MAX_COMP] {
                let mut s = *m;
                for v in s.iter_mut() {
                    *v *= half;
                }
                s
            };
            let ja2 = scaled(&ja);
            let jb2 = scaled(&jb);
            // R_a += F  => rows of a.
            push_block(a, a, 1.0, &ja2, half * lam);
            push_block(a, b, 1.0, &jb2, -half * lam);
            // R_b -= F  => rows of b.
            push_block(b, a, -1.0, &ja2, half * lam);
            push_block(b, b, -1.0, &jb2, -half * lam);
        }
        // Viscous term: exact (linear) Jacobian entries on momentum rows.
        if let Some(mu) = self.viscosity {
            let coords = self.mesh.coords();
            for (e, &[a, b]) in self.mesh.edges().iter().enumerate() {
                let (a, b) = (a as usize, b as usize);
                let n = normals[e];
                let area = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
                let dx = [
                    coords[b][0] - coords[a][0],
                    coords[b][1] - coords[a][1],
                    coords[b][2] - coords[a][2],
                ];
                let dist = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
                let kappa = mu * area / dist;
                for c in 1..4 {
                    t.push(idx(a, c), idx(a, c), kappa);
                    t.push(idx(a, c), idx(b, c), -kappa);
                    t.push(idx(b, c), idx(b, c), kappa);
                    t.push(idx(b, c), idx(a, c), -kappa);
                }
            }
        }
        // Boundary contributions.
        for face in self.mesh.boundary_faces() {
            let n3 = [
                face.normal[0] / 3.0,
                face.normal[1] / 3.0,
                face.normal[2] / 3.0,
            ];
            for &v in &face.verts {
                let v = v as usize;
                let qv = q.get(v);
                match face.kind {
                    BoundaryKind::Wall => {
                        // d(p n)/dq: rank-one n (x) dp/dq on momentum rows.
                        let dp = self.pressure_gradient(&qv);
                        for r in 1..4usize {
                            for c in 0..ncomp {
                                t.push(idx(v, r), idx(v, c), n3[r - 1] * dp[c]);
                            }
                        }
                    }
                    BoundaryKind::Inflow => {
                        // d Rusanov(q, qinf)/dq = A(q)/2 + lam/2 I (frozen).
                        let lam = self
                            .model
                            .max_wavespeed(&qv, n3)
                            .max(self.model.max_wavespeed(&self.freestream, n3));
                        let a = self.model.flux_jacobian(&qv, n3);
                        for r in 0..ncomp {
                            for c in 0..ncomp {
                                let mut val = 0.5 * a[r * MAX_COMP + c];
                                if r == c {
                                    val += 0.5 * lam;
                                }
                                t.push(idx(v, r), idx(v, c), val);
                            }
                        }
                    }
                    BoundaryKind::Outflow => {
                        let a = self.model.flux_jacobian(&qv, n3);
                        for r in 0..ncomp {
                            for c in 0..ncomp {
                                t.push(idx(v, r), idx(v, c), a[r * MAX_COMP + c]);
                            }
                        }
                    }
                }
            }
        }
        // Guarantee a structural diagonal (pseudo-time terms are added to it).
        for v in 0..nv {
            for c in 0..ncomp {
                t.push(idx(v, c), idx(v, c), 0.0);
            }
        }
        t.to_csr()
    }

    /// `dp/dq` for the wall-flux Jacobian.
    fn pressure_gradient(&self, q: &Comp) -> Comp {
        match self.model {
            FlowModel::Incompressible { .. } => {
                let mut d = [0.0; MAX_COMP];
                d[0] = 1.0;
                d
            }
            FlowModel::Compressible { gamma } => {
                let g1 = gamma - 1.0;
                let rho = q[0];
                let (u, v, w) = (q[1] / rho, q[2] / rho, q[3] / rho);
                [
                    0.5 * g1 * (u * u + v * v + w * w),
                    -g1 * u,
                    -g1 * v,
                    -g1 * w,
                    g1,
                ]
            }
        }
    }

    /// Estimated floating-point work of one residual evaluation (for the
    /// machine-model experiments). Calibrated constants: ~110 flops per
    /// edge-flux (first order) for 4 components, scaled by component count;
    /// second order roughly doubles it (gradients + reconstruction).
    pub fn residual_flops(&self) -> f64 {
        let per_edge = 110.0 * (self.ncomp() as f64 / 4.0);
        let base = per_edge * self.mesh.nedges() as f64;
        match self.order {
            SpatialOrder::First => base,
            SpatialOrder::Second | SpatialOrder::SecondLimited => 2.2 * base,
        }
    }

    /// Estimated bytes touched by one residual evaluation: edge geometry
    /// streamed once plus state/residual traffic.
    pub fn residual_bytes(&self) -> f64 {
        let ncomp = self.ncomp() as f64;
        let per_edge = 32.0 + 4.0 * ncomp * 8.0;
        let order_factor = match self.order {
            SpatialOrder::First => 1.0,
            SpatialOrder::Second | SpatialOrder::SecondLimited => 2.0,
        };
        order_factor * per_edge * self.mesh.nedges() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::BumpChannelSpec;

    fn flat_channel(dims: (usize, usize, usize)) -> TetMesh {
        let mut spec = BumpChannelSpec::with_dims(dims.0, dims.1, dims.2);
        spec.bump_height = 0.0;
        spec.jitter = 0.12;
        spec.build()
    }

    fn both_models() -> Vec<FlowModel> {
        vec![FlowModel::incompressible(), FlowModel::compressible()]
    }

    #[test]
    fn freestream_is_discretely_preserved_in_flat_channel() {
        // Uniform x-flow in a flat channel: walls are x-parallel planes so
        // the wall BC (pressure only) matches the exact flux; inflow/outflow
        // reduce to F(q_inf). Residual must vanish identically.
        let mesh = flat_channel((7, 5, 5));
        for model in both_models() {
            for order in [
                SpatialOrder::First,
                SpatialOrder::Second,
                SpatialOrder::SecondLimited,
            ] {
                let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, order);
                let q = disc.initial_state();
                let mut res = FieldVec::zeros(mesh.nverts(), disc.ncomp(), FieldLayout::Interlaced);
                let mut ws = disc.workspace();
                disc.residual(&q, &mut res, &mut ws);
                let norm = disc.residual_norm(&res);
                assert!(norm < 1e-9, "{model:?} {order:?}: |R(q_inf)| = {norm}");
            }
        }
    }

    #[test]
    fn bump_induces_nonzero_residual_at_freestream() {
        let mesh = BumpChannelSpec::with_dims(9, 5, 5).build();
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let q = disc.initial_state();
        let mut res = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut ws = disc.workspace();
        disc.residual(&q, &mut res, &mut ws);
        assert!(
            disc.residual_norm(&res) > 1e-6,
            "the bump must deflect the flow"
        );
    }

    #[test]
    fn residual_is_layout_invariant() {
        let mesh = BumpChannelSpec::with_dims(6, 5, 4).build();
        for model in both_models() {
            let ncomp = model.ncomp();
            let di =
                Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
            let ds =
                Discretization::new(&mesh, model, FieldLayout::Segregated, SpatialOrder::First);
            // A non-trivial state: freestream + smooth perturbation.
            let mut qi = di.initial_state();
            for v in 0..mesh.nverts() {
                let mut s = qi.get(v);
                let x = mesh.coords()[v];
                for c in 0..ncomp {
                    s[c] += 0.01 * ((c + 1) as f64) * (x[0] + 0.5 * x[1]).sin();
                }
                qi.set(v, &s);
            }
            let qs = qi.to_layout(FieldLayout::Segregated);
            let mut ri = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
            let mut rs = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Segregated);
            let mut wi = di.workspace();
            let mut wsws = ds.workspace();
            di.residual(&qi, &mut ri, &mut wi);
            ds.residual(&qs, &mut rs, &mut wsws);
            for v in 0..mesh.nverts() {
                let a = ri.get(v);
                let b = rs.get(v);
                for c in 0..ncomp {
                    assert!(
                        (a[c] - b[c]).abs() < 1e-12,
                        "{model:?} v={v} c={c}: {} vs {}",
                        a[c],
                        b[c]
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_residual_matches_sequential() {
        // The private-array gather reorders additions, so compare to a tight
        // tolerance rather than bitwise — across orders, models, viscosity,
        // and team sizes (including more threads than edges would ever need).
        let mesh = BumpChannelSpec::with_dims(6, 5, 4).build();
        for model in both_models() {
            let ncomp = model.ncomp();
            for order in [
                SpatialOrder::First,
                SpatialOrder::Second,
                SpatialOrder::SecondLimited,
            ] {
                for mu in [0.0, 0.05] {
                    let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, order)
                        .with_viscosity(mu);
                    let mut q = disc.initial_state();
                    for v in 0..mesh.nverts() {
                        let mut s = q.get(v);
                        let x = mesh.coords()[v];
                        for c in 0..ncomp {
                            s[c] += 0.02 * ((c + 1) as f64) * (x[0] - 0.3 * x[2]).cos();
                        }
                        q.set(v, &s);
                    }
                    let mut rs = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
                    let mut ws = disc.workspace();
                    disc.residual(&q, &mut rs, &mut ws);
                    for nthreads in [1usize, 2, 3, 8] {
                        let ctx = ParCtx::new(nthreads);
                        let mut rp = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
                        let mut wp = disc.workspace();
                        disc.residual_par(&q, &mut rp, &mut wp, &ctx);
                        for (a, b) in rs.as_slice().iter().zip(rp.as_slice()) {
                            assert!(
                                (a - b).abs() <= 1e-12 * (1.0 + a.abs()),
                                "{model:?} {order:?} mu={mu} nthreads={nthreads}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn jacobian_matches_finite_differences_near_freestream() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        for model in both_models() {
            let ncomp = model.ncomp();
            let disc =
                Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
            // Small smooth perturbation so the frozen-lambda error is O(perturbation).
            let mut q = disc.initial_state();
            for v in 0..mesh.nverts() {
                let mut s = q.get(v);
                let x = mesh.coords()[v];
                for c in 0..ncomp {
                    s[c] += 1e-3 * ((v % 7) as f64 / 7.0) * ((c + 1) as f64) * (1.0 + x[2]);
                }
                q.set(v, &s);
            }
            let jac = disc.jacobian(&q);
            let n = disc.nunknowns();
            // Random direction.
            let dir: Vec<f64> = (0..n)
                .map(|i| ((i * 31 + 7) % 13) as f64 / 13.0 - 0.5)
                .collect();
            let mut jd = vec![0.0; n];
            jac.spmv(&dir, &mut jd);
            // FD directional derivative.
            let eps = 1e-7;
            let mut ws = disc.workspace();
            let mut qp = q.clone();
            for (i, d) in dir.iter().enumerate() {
                qp.as_mut_slice()[i] += eps * d;
            }
            let mut rp = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
            let mut r0 = FieldVec::zeros(mesh.nverts(), ncomp, FieldLayout::Interlaced);
            disc.residual(&qp, &mut rp, &mut ws);
            disc.residual(&q, &mut r0, &mut ws);
            let mut fd = vec![0.0; n];
            for i in 0..n {
                fd[i] = (rp.as_slice()[i] - r0.as_slice()[i]) / eps;
            }
            let scale = fd.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
            let mut max_rel = 0.0f64;
            for i in 0..n {
                max_rel = max_rel.max((jd[i] - fd[i]).abs() / scale);
            }
            assert!(
                max_rel < 5e-2,
                "{model:?}: Jacobian-vector mismatch {max_rel} (frozen-lambda tolerance)"
            );
        }
    }

    #[test]
    fn second_order_reduces_dissipation_error() {
        // On a smooth non-constant field, the second-order residual should
        // differ from first-order (less dissipation) — sanity check that the
        // order switch does something.
        let mesh = flat_channel((8, 5, 5));
        let model = FlowModel::incompressible();
        let d1 = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let d2 = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::Second);
        let mut q = d1.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = q.get(v);
            let x = mesh.coords()[v];
            s[0] += 0.1 * (x[0]).sin();
            s[1] += 0.05 * (x[2]).cos();
            q.set(v, &s);
        }
        let mut r1 = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut r2 = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut w1 = d1.workspace();
        let mut w2 = d2.workspace();
        d1.residual(&q, &mut r1, &mut w1);
        d2.residual(&q, &mut r2, &mut w2);
        let diff: f64 = r1
            .as_slice()
            .iter()
            .zip(r2.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-8, "order switch must change the stencil");
    }

    #[test]
    fn jacobian_has_block_sparsity() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let q = disc.initial_state();
        let jac = disc.jacobian(&q);
        assert_eq!(jac.nrows(), disc.nunknowns());
        // Interlaced layout: bandwidth ~ ncomp * vertex-graph bandwidth.
        let g = mesh.vertex_graph();
        assert!(jac.bandwidth() <= 4 * (g.bandwidth() + 1));
        // Convertible to BCSR with block size 4.
        let b = fun3d_sparse::bcsr::BcsrMatrix::from_csr(&jac, 4);
        assert_eq!(b.nbrows(), mesh.nverts());
    }

    #[test]
    fn segregated_jacobian_has_wide_bandwidth() {
        let mesh = BumpChannelSpec::with_dims(6, 4, 4).build();
        let model = FlowModel::incompressible();
        let di = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let ds = Discretization::new(&mesh, model, FieldLayout::Segregated, SpatialOrder::First);
        let qi = di.initial_state();
        let qs = ds.initial_state();
        let ji = di.jacobian(&qi);
        let js = ds.jacobian(&qs);
        assert!(
            js.bandwidth() > 2 * ji.bandwidth(),
            "segregated bandwidth {} should dwarf interlaced {}",
            js.bandwidth(),
            ji.bandwidth()
        );
        // Same entries up to permutation: identical Frobenius norms.
        assert!((ji.frobenius_norm() - js.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn volumes_and_wavespeeds_are_positive() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let disc = Discretization::new(
            &mesh,
            FlowModel::compressible(),
            FieldLayout::Interlaced,
            SpatialOrder::First,
        );
        let q = disc.initial_state();
        assert!(disc.unknown_volumes().iter().all(|&v| v > 0.0));
        assert!(disc.wavespeed_sums(&q).iter().all(|&v| v > 0.0));
        assert_eq!(disc.unknown_volumes().len(), disc.nunknowns());
    }

    #[test]
    fn constant_pressure_exerts_zero_net_wall_force() {
        // In a flat channel, the wall normals of opposite walls cancel, so a
        // constant-pressure state exerts no net force.
        let mesh = flat_channel((6, 5, 5));
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let mut q = disc.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = q.get(v);
            s[0] = 2.5; // constant gauge pressure
            q.set(v, &s);
        }
        let f = disc.wall_forces(&q);
        for c in 0..3 {
            assert!(f[c].abs() < 1e-10, "force {c}: {}", f[c]);
        }
    }

    #[test]
    fn bump_generates_vertical_force() {
        // A pressure field that varies with height pushes on the bump.
        let mesh = BumpChannelSpec::with_dims(9, 5, 5).build();
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let mut q = disc.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = q.get(v);
            s[0] = 1.0 - 0.5 * mesh.coords()[v][2];
            q.set(v, &s);
        }
        let f = disc.wall_forces(&q);
        assert!(f[2].abs() > 1e-3, "vertical force expected: {f:?}");
    }

    #[test]
    fn viscosity_damps_shear_perturbations() {
        let mesh = flat_channel((6, 5, 5));
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First)
            .with_viscosity(0.1);
        // A shear: u varies with z; viscosity must create a residual that
        // opposes the variation at interior vertices.
        let mut q = disc.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = q.get(v);
            s[1] = 1.0 + 0.3 * (mesh.coords()[v][2] * 3.0).sin();
            q.set(v, &s);
        }
        let mut r_visc = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut ws = disc.workspace();
        disc.residual(&q, &mut r_visc, &mut ws);
        let disc0 = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let mut r0 = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut ws0 = disc0.workspace();
        disc0.residual(&q, &mut r0, &mut ws0);
        let dnorm: f64 = r_visc
            .as_slice()
            .iter()
            .zip(r0.as_slice())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dnorm > 1e-6, "viscous term must contribute: {dnorm}");
        // And a constant flow is still steady (diffusion of a constant = 0).
        let qc = disc.initial_state();
        let mut rc = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        disc.residual(&qc, &mut rc, &mut ws);
        assert!(disc.residual_norm(&rc) < 1e-9);
    }

    #[test]
    fn viscous_jacobian_matches_fd() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let model = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First)
            .with_viscosity(0.05);
        let mut q = disc.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = q.get(v);
            s[1] += 1e-3 * (v % 5) as f64;
            q.set(v, &s);
        }
        let jac = disc.jacobian(&q);
        let n = disc.nunknowns();
        let dir: Vec<f64> = (0..n)
            .map(|i| ((i * 17 + 3) % 11) as f64 / 11.0 - 0.5)
            .collect();
        let mut jd = vec![0.0; n];
        jac.spmv(&dir, &mut jd);
        let eps = 1e-7;
        let mut ws = disc.workspace();
        let mut qp = q.clone();
        for (i, d) in dir.iter().enumerate() {
            qp.as_mut_slice()[i] += eps * d;
        }
        let mut rp = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut r0 = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        disc.residual(&qp, &mut rp, &mut ws);
        disc.residual(&q, &mut r0, &mut ws);
        let scale = jd.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            let fd = (rp.as_slice()[i] - r0.as_slice()[i]) / eps;
            assert!(
                (jd[i] - fd).abs() / scale < 5e-2,
                "i={i}: {} vs {}",
                jd[i],
                fd
            );
        }
    }

    #[test]
    fn work_estimates_scale_with_order() {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let model = FlowModel::compressible();
        let d1 = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let d2 = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::Second);
        assert!(d2.residual_flops() > 2.0 * d1.residual_flops());
        assert!(d2.residual_bytes() > d1.residual_bytes());
    }
}
