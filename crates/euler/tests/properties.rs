//! Property-based tests for the flow models and flux kernels.

use fun3d_euler::field::FieldVec;
use fun3d_euler::model::{Comp, FlowModel, MAX_COMP};
use fun3d_euler::residual::{Discretization, SpatialOrder};
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_sparse::layout::FieldLayout;
use proptest::prelude::*;

fn incompressible_state() -> impl Strategy<Value = Comp> {
    (-1.0f64..1.0, -1.5f64..1.5, -1.0f64..1.0, -1.0f64..1.0).prop_map(|(p, u, v, w)| {
        let mut q = [0.0; MAX_COMP];
        q[0] = p;
        q[1] = u;
        q[2] = v;
        q[3] = w;
        q
    })
}

fn compressible_state() -> impl Strategy<Value = Comp> {
    (
        0.3f64..2.0,
        -0.8f64..0.8,
        -0.5f64..0.5,
        -0.5f64..0.5,
        0.3f64..2.0,
    )
        .prop_map(|(rho, u, v, w, p)| {
            let gamma = 1.4;
            let e = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w);
            let mut q = [0.0; MAX_COMP];
            q[0] = rho;
            q[1] = rho * u;
            q[2] = rho * v;
            q[3] = rho * w;
            q[4] = e;
            q
        })
}

fn normal() -> impl Strategy<Value = [f64; 3]> {
    ((-1.0f64..1.0), (-1.0f64..1.0), (-1.0f64..1.0))
        .prop_filter("nonzero", |(a, b, c)| a * a + b * b + c * c > 1e-4)
        .prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flux is homogeneous of degree 1 in the (area-weighted) normal.
    #[test]
    fn flux_linear_in_normal_incompressible(q in incompressible_state(), n in normal(), s in 0.1f64..5.0) {
        let m = FlowModel::incompressible();
        let f1 = m.flux(&q, n);
        let f2 = m.flux(&q, [s * n[0], s * n[1], s * n[2]]);
        for c in 0..m.ncomp() {
            prop_assert!((f2[c] - s * f1[c]).abs() < 1e-10 * (1.0 + f1[c].abs()));
        }
    }

    /// Analytic flux Jacobians match finite differences at random states.
    #[test]
    fn compressible_jacobian_matches_fd(q in compressible_state(), n in normal()) {
        let m = FlowModel::compressible();
        let a = m.flux_jacobian(&q, n);
        let f0 = m.flux(&q, n);
        let eps = 1e-7;
        for j in 0..m.ncomp() {
            let mut qp = q;
            qp[j] += eps * (1.0 + q[j].abs());
            let h = qp[j] - q[j];
            let fp = m.flux(&qp, n);
            for i in 0..m.ncomp() {
                let fd = (fp[i] - f0[i]) / h;
                prop_assert!(
                    (fd - a[i * MAX_COMP + j]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "A[{}][{}]: {} vs {}", i, j, a[i * MAX_COMP + j], fd
                );
            }
        }
    }

    /// The Rusanov wave speed dominates the normal transport speed, so the
    /// scheme is dissipative for every admissible state.
    #[test]
    fn wavespeed_dominates(q in compressible_state(), n in normal()) {
        let m = FlowModel::compressible();
        let theta = (q[1] * n[0] + q[2] * n[1] + q[3] * n[2]) / q[0];
        prop_assert!(m.max_wavespeed(&q, n) >= theta.abs() - 1e-12);
    }

    /// Pressure is invariant under velocity reflection (a scalar).
    #[test]
    fn pressure_reflection_invariant(q in compressible_state()) {
        let m = FlowModel::compressible();
        let mut qr = q;
        qr[1] = -q[1];
        qr[2] = -q[2];
        qr[3] = -q[3];
        prop_assert!((m.pressure(&q) - m.pressure(&qr)).abs() < 1e-12);
    }

    /// Residual of a constant state on a *closed* (all-wall would need the
    /// flux to vanish; here we use the actual boundary set) flat channel is
    /// zero for any constant velocity aligned with the channel.
    #[test]
    fn constant_axial_flow_is_steady(u in 0.2f64..2.0) {
        let mut spec = BumpChannelSpec::with_dims(5, 4, 4);
        spec.bump_height = 0.0;
        spec.jitter = 0.1;
        let mesh = spec.build();
        let m = FlowModel::incompressible();
        let disc = Discretization::new(&mesh, m, FieldLayout::Interlaced, SpatialOrder::First);
        // Constant state with axial velocity u; inflow BC compares against
        // the model freestream (u = 1), so scale the whole state: Rusanov of
        // (q, q_inf) is not zero unless q == q_inf. Use interior test: only
        // wall faces are velocity-insensitive, so restrict to u == 1 ... so
        // instead verify the residual equals the boundary mismatch alone:
        // interior edge contributions must cancel exactly.
        let mut q = disc.initial_state();
        for v in 0..mesh.nverts() {
            q.set(v, &[0.0, u, 0.0, 0.0, 0.0]);
        }
        let mut r = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut ws = disc.workspace();
        disc.residual(&q, &mut r, &mut ws);
        // Interior vertices see only interior edges: residual there is 0.
        let mut on_boundary = vec![false; mesh.nverts()];
        for f in mesh.boundary_faces() {
            for &v in &f.verts {
                on_boundary[v as usize] = true;
            }
        }
        for v in 0..mesh.nverts() {
            if !on_boundary[v] {
                let rv = r.get(v);
                for c in 0..4 {
                    prop_assert!(rv[c].abs() < 1e-10, "v={} c={} r={}", v, c, rv[c]);
                }
            }
        }
    }

    /// Interlaced and segregated layouts give identical Jacobian-vector
    /// products (after permutation) at random smooth states.
    #[test]
    fn layout_equivariant_jacobian_action(amp in 0.0f64..0.05, seed in 0u64..100) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        let m = FlowModel::incompressible();
        let di = Discretization::new(&mesh, m, FieldLayout::Interlaced, SpatialOrder::First);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut qi = di.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = qi.get(v);
            for c in 0..4 {
                s[c] += amp * rng.gen_range(-1.0..1.0);
            }
            qi.set(v, &s);
        }
        let ji = di.jacobian(&qi);
        let ds = Discretization::new(&mesh, m, FieldLayout::Segregated, SpatialOrder::First);
        let qs = qi.to_layout(FieldLayout::Segregated);
        let js = ds.jacobian(&qs);
        let n = ji.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) % 7) as f64 - 3.0).collect();
        let mut yi = vec![0.0; n];
        ji.spmv(&x, &mut yi);
        // Permute x into segregated ordering, apply, and compare back.
        let perm = fun3d_sparse::layout::interlaced_to_segregated_perm(mesh.nverts(), 4);
        let mut xs = vec![0.0; n];
        for i in 0..n {
            xs[perm[i]] = x[i];
        }
        let mut ys = vec![0.0; n];
        js.spmv(&xs, &mut ys);
        for i in 0..n {
            prop_assert!((ys[perm[i]] - yi[i]).abs() < 1e-10);
        }
    }
}
