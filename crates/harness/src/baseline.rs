//! Versioned baseline store: the robust summaries of a reference run,
//! serialized as `fun3d-baseline/1` JSON so later runs can be gated against
//! them.
//!
//! The format is hand-rolled over [`fun3d_telemetry::json::Value`], like
//! every other machine-readable artifact in this workspace: an object with
//! `schema`, free-form `meta`, and one entry per experiment mapping metric
//! keys to `{median, mad, n}`.

use crate::stats::Summary;
use fun3d_telemetry::json::Value;

/// Schema tag written to (and required from) every baseline file.
pub const SCHEMA: &str = "fun3d-baseline/1";

/// Stored summary of one metric in the reference run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricBaseline {
    /// Median over the reference repetitions.
    pub median: f64,
    /// Median absolute deviation over the reference repetitions.
    pub mad: f64,
    /// Reference repetition count.
    pub n: usize,
}

impl From<Summary> for MetricBaseline {
    fn from(s: Summary) -> Self {
        Self {
            median: s.median,
            mad: s.mad,
            n: s.n,
        }
    }
}

/// All stored metrics of one experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentBaseline {
    /// Experiment name (registry key).
    pub name: String,
    /// Metric key -> stored summary, in report order.
    pub metrics: Vec<(String, MetricBaseline)>,
}

impl ExperimentBaseline {
    /// Stored summary for a metric key.
    pub fn metric(&self, key: &str) -> Option<MetricBaseline> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, m)| *m)
    }
}

/// A whole baseline file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Baseline {
    /// Free-form context (suite name, scale, host STREAM figure...).
    pub meta: Vec<(String, String)>,
    /// Per-experiment stored summaries.
    pub experiments: Vec<ExperimentBaseline>,
}

impl Baseline {
    /// Stored baseline for an experiment name.
    pub fn experiment(&self, name: &str) -> Option<&ExperimentBaseline> {
        self.experiments.iter().find(|e| e.name == name)
    }

    /// Serialize to the `fun3d-baseline/1` JSON value.
    pub fn to_json(&self) -> Value {
        let meta = Value::Obj(
            self.meta
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        let experiments = Value::Obj(
            self.experiments
                .iter()
                .map(|e| {
                    let metrics = Value::Obj(
                        e.metrics
                            .iter()
                            .map(|(k, m)| {
                                (
                                    k.clone(),
                                    Value::Obj(vec![
                                        ("median".into(), Value::Num(m.median)),
                                        ("mad".into(), Value::Num(m.mad)),
                                        ("n".into(), Value::Num(m.n as f64)),
                                    ]),
                                )
                            })
                            .collect(),
                    );
                    (e.name.clone(), metrics)
                })
                .collect(),
        );
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("meta".into(), meta),
            ("experiments".into(), experiments),
        ])
    }

    /// Parse from a `fun3d-baseline/1` JSON string.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = Value::parse(s).map_err(|e| format!("baseline parse error: {e:?}"))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported baseline schema {schema:?} (want {SCHEMA})"
            ));
        }
        let mut out = Baseline::default();
        if let Some(meta) = v.get("meta").and_then(Value::as_obj) {
            for (k, mv) in meta {
                if let Some(s) = mv.as_str() {
                    out.meta.push((k.clone(), s.to_string()));
                }
            }
        }
        let exps = v
            .get("experiments")
            .and_then(Value::as_obj)
            .ok_or("missing experiments object")?;
        for (name, metrics) in exps {
            let mut e = ExperimentBaseline {
                name: name.clone(),
                metrics: Vec::new(),
            };
            let fields = metrics
                .as_obj()
                .ok_or_else(|| format!("experiment {name}: metrics must be an object"))?;
            for (key, mv) in fields {
                let num = |field: &str| -> Result<f64, String> {
                    mv.get(field)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("experiment {name}, metric {key}: missing {field}"))
                };
                e.metrics.push((
                    key.clone(),
                    MetricBaseline {
                        median: num("median")?,
                        mad: num("mad")?,
                        n: num("n")? as usize,
                    },
                ));
            }
            out.experiments.push(e);
        }
        Ok(out)
    }

    /// Write to `path` (pretty enough: one compact JSON document).
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }

    /// Read from `path`.
    pub fn load(path: &str) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json_str(&s).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            meta: vec![("suite".into(), "quick".into())],
            experiments: vec![ExperimentBaseline {
                name: "spmv".into(),
                metrics: vec![
                    (
                        "time_csr_s".into(),
                        MetricBaseline {
                            median: 1.5e-3,
                            mad: 2.0e-5,
                            n: 5,
                        },
                    ),
                    (
                        "blocking_speedup".into(),
                        MetricBaseline {
                            median: 2.2,
                            mad: 0.01,
                            n: 5,
                        },
                    ),
                ],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let b = sample();
        let s = b.to_json().render();
        let back = Baseline::from_json_str(&s).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn schema_tag_is_enforced() {
        let s = sample()
            .to_json()
            .render()
            .replace(SCHEMA, "fun3d-baseline/99");
        let err = Baseline::from_json_str(&s).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
        assert!(Baseline::from_json_str("{}").is_err());
    }

    #[test]
    fn lookups_resolve() {
        let b = sample();
        let e = b.experiment("spmv").unwrap();
        assert_eq!(e.metric("blocking_speedup").unwrap().median, 2.2);
        assert!(e.metric("nonesuch").is_none());
        assert!(b.experiment("nonesuch").is_none());
    }

    #[test]
    fn file_round_trip() {
        let b = sample();
        let path = std::env::temp_dir().join("fun3d_baseline_test.json");
        let path = path.to_str().unwrap();
        b.save(path).unwrap();
        let back = Baseline::load(path).unwrap();
        std::fs::remove_file(path).ok();
        assert_eq!(b, back);
    }
}
