//! `fun3d-bench`: the experiment-orchestration driver.
//!
//! ```text
//! fun3d-bench list [--json]
//! fun3d-bench run --suite quick [--reps n] [--scale f] [--threads n] [--profile]
//!     [--ranks n] [--trace-ranks] [--metrics] [--verbose]
//!     [--baseline b.json] [--save-baseline b.json]
//!     [--markdown report.md] [--json report.json]
//!     [--events-dir dir] [--tol-rel f] [--tol-mad-k f] [--tol-abs f]
//! ```
//!
//! Exit status: 0 when no experiment regressed against the baseline (or no
//! baseline was given), 1 when at least one did, 2 on usage errors.

use fun3d_bench::{print_table, runners, BenchArgs};
use fun3d_harness::baseline::Baseline;
use fun3d_harness::compare::Verdict;
use fun3d_harness::gate::{run_suite, GateConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fun3d-bench list [--json]\n       fun3d-bench run --suite <smoke|quick|full|EXPERIMENT> \
         [--reps n] [--scale f] [--threads n] [--profile] [--ranks n] [--trace-ranks] [--metrics] [--verbose]\n           [--baseline b.json] [--save-baseline b.json] \
         [--markdown out.md] [--json out.json]\n           [--events-dir dir] \
         [--tol-rel f] [--tol-mad-k f] [--tol-abs f]"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    match command.as_str() {
        "list" => list(&argv[1..]),
        "run" => run(&argv[1..]),
        _ => usage(),
    }
}

fn list(argv: &[String]) {
    let json = match argv {
        [] => false,
        [flag] if flag == "--json" => true,
        _ => usage(),
    };
    if json {
        // Machine-readable registry: one object per experiment, stable keys.
        use fun3d_telemetry::json::Value;
        let items: Vec<Value> = runners::all()
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("name".into(), Value::Str(e.name().into())),
                    ("default_scale".into(), Value::Num(e.default_scale())),
                    ("description".into(), Value::Str(e.description().into())),
                    ("blackbox".into(), Value::Bool(e.supports_blackbox())),
                ])
            })
            .collect();
        println!("{}", Value::Arr(items).render());
        return;
    }
    print_table(
        "Registered experiments",
        &["name", "scale", "blackbox", "description"],
        &runners::list_rows(),
    );
    println!("\nNamed suites: smoke (CI, seconds), quick (developer default), full (everything).");
}

fn run(argv: &[String]) {
    // Shared flags first (--scale/--reps/--suite/--quiet/--json/...), then
    // the driver-only flags from the leftovers.
    let (args, rest) = BenchArgs::parse_known(1.0, argv);
    let suite_name = args.suite.clone().unwrap_or_else(|| "quick".into());
    // A repeated value flag (`--threads 2 --threads 4`) would silently
    // last-win; name the mistake and the suite instead.
    if let Some(msg) = args.duplicate_error(&suite_name) {
        eprintln!("{msg}");
        usage();
    }
    let mut cfg = GateConfig {
        suite: suite_name,
        // Treat explicitly-passed shared flags as overrides for every entry.
        reps: argv.iter().any(|a| a == "--reps").then_some(args.reps),
        scale: argv.iter().any(|a| a == "--scale").then_some(args.scale),
        steps: argv.iter().any(|a| a == "--steps").then_some(args.steps),
        threads: argv
            .iter()
            .any(|a| a == "--threads")
            .then_some(args.threads),
        profile: argv.iter().any(|a| a == "--profile").then_some(true),
        ranks: argv.iter().any(|a| a == "--ranks").then_some(args.ranks),
        trace_ranks: argv.iter().any(|a| a == "--trace-ranks").then_some(true),
        metrics: argv.iter().any(|a| a == "--metrics").then_some(true),
        verbose: false,
        ..Default::default()
    };
    let mut baseline_path: Option<String> = None;
    let mut save_baseline: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut i = 0;
    let value = |rest: &[String], i: usize, flag: &str| -> String {
        rest.get(i)
            .unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                usage()
            })
            .clone()
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline_path = Some(value(&rest, i, "--baseline"));
            }
            "--save-baseline" => {
                i += 1;
                save_baseline = Some(value(&rest, i, "--save-baseline"));
            }
            "--markdown" => {
                i += 1;
                markdown = Some(value(&rest, i, "--markdown"));
            }
            "--tol-rel" => {
                i += 1;
                cfg.tol.rel = value(&rest, i, "--tol-rel").parse().unwrap_or_else(|_| {
                    eprintln!("--tol-rel expects a number");
                    usage()
                });
            }
            "--tol-mad-k" => {
                i += 1;
                cfg.tol.mad_k = value(&rest, i, "--tol-mad-k").parse().unwrap_or_else(|_| {
                    eprintln!("--tol-mad-k expects a number");
                    usage()
                });
            }
            "--tol-abs" => {
                i += 1;
                cfg.tol.abs_floor = value(&rest, i, "--tol-abs").parse().unwrap_or_else(|_| {
                    eprintln!("--tol-abs expects a number");
                    usage()
                });
            }
            "--events-dir" => {
                i += 1;
                cfg.events_dir = Some(value(&rest, i, "--events-dir"));
            }
            "--verbose" => cfg.verbose = true,
            other => {
                eprintln!(
                    "unknown argument: {other} (while configuring suite {:?})",
                    cfg.suite
                );
                usage();
            }
        }
        i += 1;
    }

    let baseline = baseline_path.as_deref().map(|p| {
        Baseline::load(p).unwrap_or_else(|e| {
            eprintln!("failed to load baseline {p}: {e}");
            std::process::exit(2);
        })
    });

    println!(
        "fun3d-bench: suite `{}`{}",
        cfg.suite,
        baseline_path
            .as_deref()
            .map(|p| format!(", gating against {p}"))
            .unwrap_or_default()
    );
    let outcome = run_suite(&cfg, baseline.as_ref()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!(
        "calibrated host STREAM triad: {:.0} MB/s",
        outcome.calibration.stream.triad / 1e6
    );

    // Per-experiment verdict table.
    let rows: Vec<Vec<String>> = outcome
        .outcomes
        .iter()
        .map(|o| {
            let count = |v: Verdict| o.comparisons.iter().filter(|c| c.verdict == v).count();
            vec![
                o.run.name.clone(),
                format!("{}x{}", o.entry.reps, o.entry.scale),
                o.comparisons.len().to_string(),
                count(Verdict::Regressed).to_string(),
                count(Verdict::Improved).to_string(),
                count(Verdict::UnknownMetric).to_string(),
                o.verdict.label().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Suite `{}` verdicts", outcome.suite),
        &[
            "experiment",
            "reps x scale",
            "metrics",
            "regr",
            "impr",
            "unknown",
            "verdict",
        ],
        &rows,
    );

    // Flagged metrics in detail.
    for o in &outcome.outcomes {
        let flagged: Vec<Vec<String>> = o
            .comparisons
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::Improved))
            .map(|c| {
                vec![
                    c.key.clone(),
                    format!("{:.4e}", c.baseline.map(|b| b.median).unwrap_or(f64::NAN)),
                    format!("{:.4e}", c.current.median),
                    format!("{:+.4e}", c.delta),
                    format!("{:.4e}", c.threshold),
                    c.verdict.label().to_string(),
                ]
            })
            .collect();
        if !flagged.is_empty() {
            print_table(
                &format!("{}: flagged metrics", o.run.name),
                &[
                    "metric",
                    "baseline",
                    "current",
                    "delta",
                    "threshold",
                    "verdict",
                ],
                &flagged,
            );
        }
    }

    // Model-vs-measured columns (calibrated host machine).
    for o in &outcome.outcomes {
        if o.models.is_empty() {
            continue;
        }
        let rows: Vec<Vec<String>> = o
            .models
            .iter()
            .map(|m| {
                vec![
                    m.metric.clone(),
                    format!("{:.4e}", m.predicted),
                    m.measured.map_or("-".into(), |x| format!("{x:.4e}")),
                    m.ratio().map_or("-".into(), |r| format!("{r:.2}")),
                ]
            })
            .collect();
        print_table(
            &format!("{}: model vs measured (calibrated host)", o.run.name),
            &["metric", "model", "measured", "measured/model"],
            &rows,
        );
    }

    if let Some(path) = &save_baseline {
        outcome.to_baseline().save(path).unwrap_or_else(|e| {
            eprintln!("failed to save baseline {path}: {e}");
            std::process::exit(2);
        });
        println!("\nsaved baseline to {path}");
    }
    if let Some(path) = &markdown {
        std::fs::write(path, outcome.to_markdown()).unwrap_or_else(|e| {
            eprintln!("failed to write markdown {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote markdown report to {path}");
    }
    if let Some(path) = &args.json {
        std::fs::write(path, outcome.to_json().render()).unwrap_or_else(|e| {
            eprintln!("failed to write json {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote gate report to {path}");
    }

    let verdict = outcome.verdict();
    println!("\noverall: {}", verdict.label());
    if verdict == Verdict::Regressed {
        std::process::exit(1);
    }
}
