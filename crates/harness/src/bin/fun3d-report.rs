//! `fun3d-report`: inspect and diff `fun3d-perf/1` runs.
//!
//! ```text
//! fun3d-report show <report.json> [--events stream.jsonl]
//! fun3d-report <report.json>                  # implicit show
//! fun3d-report profile <report.json> [<other.json>]
//! fun3d-report comm <report.json> [<other.json>]
//! fun3d-report serve <report.json>
//! fun3d-report live <report.json> [<other.json>]
//! fun3d-report diff <a.json> <b.json> [--tol-rel f] [--tol-mad-k f] [--tol-abs f]
//! ```
//!
//! `show` renders the run: metrics, the Table 3-style phase breakdown with
//! p50/p95/p99 tail latencies and modeled cache/TLB counters, a per-region
//! load-imbalance summary when the run was profiled, the Figure 5-style
//! convergence table from the event stream (autodiscovered as the sibling
//! `<stem>.events.jsonl` unless `--events` names one), scatter traffic, and
//! checkpoints.
//!
//! `profile` renders the thread-profile view of a `--profile` run: per
//! parallel region the max/mean per-thread busy time, imbalance factor, and
//! join-wait (the paper's Table 3 implementation-efficiency terms), plus
//! achieved GB/s and %-of-STREAM per byte-counted span (a live Table 2).
//! Naming a second report appends a region-by-region A/B comparison —
//! intended for diffing two `--threads` settings of one experiment.
//!
//! `comm` renders the communication view of a `--trace-ranks` run: the
//! per-rank compute / exchange / wait table with the laggard rank flagged,
//! the neighbor byte-volume matrix, the critical-path breakdown, and the
//! η = η_alg · η_impl decomposition. Naming a second report appends a
//! per-rank wait-fraction A/B comparison.
//!
//! `serve` renders the serving view of a `serve` run: the open-loop rate
//! sweep (offered vs achieved throughput with p50/p95/p99 latencies and
//! per-rate rejects), the saturation knee, and the cache / admission
//! summary.
//!
//! `live` renders the `fun3d-metrics/1` time-series sidecar of a
//! `--metrics` run (autodiscovered as `<stem>.metrics.jsonl`): one
//! sparkline trend row per series (queue depth, throughput, windowed
//! p50/p99, SLO burn), the health-state timeline, and — with a second
//! report — a noise-aware per-series A/B diff using the gate's polarity
//! heuristics.
//!
//! `diff` judges run B against run A with the gate's noise-aware verdicts.
//! Exit status: 0 with no regressions, 1 when any metric regressed, 2 on
//! usage or I/O errors.

use fun3d_harness::compare::Tolerance;
use fun3d_harness::report_cli::{
    render_comm, render_diff, render_live, render_profile, render_serve, render_show, LoadedRun,
};

fn usage() -> ! {
    eprintln!(
        "usage: fun3d-report [show] <report.json> [--events stream.jsonl]\n       \
         fun3d-report profile <report.json> [<other.json>]\n       \
         fun3d-report comm <report.json> [<other.json>]\n       \
         fun3d-report serve <report.json>\n       \
         fun3d-report live <report.json> [<other.json>]\n       \
         fun3d-report diff <a.json> <b.json> [--tol-rel f] [--tol-mad-k f] [--tol-abs f]"
    );
    std::process::exit(2);
}

fn load_or_die(report: &str, events: Option<&str>) -> LoadedRun {
    LoadedRun::load(report, events).unwrap_or_else(|e| {
        eprintln!("failed to load {report}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    match command.as_str() {
        "diff" => diff(&argv[1..]),
        "show" => show(&argv[1..]),
        "profile" => profile(&argv[1..]),
        "comm" => comm(&argv[1..]),
        "serve" => serve(&argv[1..]),
        "live" => live(&argv[1..]),
        _ => show(&argv),
    }
}

fn live(argv: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    for arg in argv {
        if arg.starts_with("--") {
            eprintln!("unknown argument: {arg}");
            usage();
        }
        paths.push(arg);
    }
    let (report, other) = match paths.as_slice() {
        [r] => (*r, None),
        [r, o] => (*r, Some(*o)),
        _ => usage(),
    };
    let run = load_or_die(report, None);
    let other = other.map(|o| load_or_die(o, None));
    print!("{}", render_live(&run, other.as_ref()));
}

fn serve(argv: &[String]) {
    let [report] = argv else { usage() };
    if report.starts_with("--") {
        eprintln!("unknown argument: {report}");
        usage();
    }
    let run = load_or_die(report, None);
    print!("{}", render_serve(&run));
}

fn comm(argv: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    for arg in argv {
        if arg.starts_with("--") {
            eprintln!("unknown argument: {arg}");
            usage();
        }
        paths.push(arg);
    }
    let (report, other) = match paths.as_slice() {
        [r] => (*r, None),
        [r, o] => (*r, Some(*o)),
        _ => usage(),
    };
    let run = load_or_die(report, None);
    let other = other.map(|o| load_or_die(o, None));
    print!("{}", render_comm(&run, other.as_ref()));
}

fn profile(argv: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    for arg in argv {
        if arg.starts_with("--") {
            eprintln!("unknown argument: {arg}");
            usage();
        }
        paths.push(arg);
    }
    let (report, other) = match paths.as_slice() {
        [r] => (*r, None),
        [r, o] => (*r, Some(*o)),
        _ => usage(),
    };
    let run = load_or_die(report, None);
    let other = other.map(|o| load_or_die(o, None));
    print!("{}", render_profile(&run, other.as_ref()));
}

fn show(argv: &[String]) {
    let mut report: Option<&String> = None;
    let mut events: Option<&String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--events" => {
                i += 1;
                events = Some(argv.get(i).unwrap_or_else(|| usage()));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument: {other}");
                usage();
            }
            _ if report.is_none() => report = Some(&argv[i]),
            other => {
                eprintln!("unexpected extra argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    let Some(report) = report else { usage() };
    let run = load_or_die(report, events.map(String::as_str));
    print!("{}", render_show(&run));
}

fn diff(argv: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    let mut tol = Tolerance::default();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> f64 {
        argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} expects a number");
            usage()
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--tol-rel" => {
                i += 1;
                tol.rel = value(argv, i, "--tol-rel");
            }
            "--tol-mad-k" => {
                i += 1;
                tol.mad_k = value(argv, i, "--tol-mad-k");
            }
            "--tol-abs" => {
                i += 1;
                tol.abs_floor = value(argv, i, "--tol-abs");
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument: {other}");
                usage();
            }
            _ => paths.push(&argv[i]),
        }
        i += 1;
    }
    let [a, b] = paths.as_slice() else { usage() };
    let a = load_or_die(a, None);
    let b = load_or_die(b, None);
    let d = render_diff(&a, &b, &tol);
    print!("{}", d.text);
    if d.regressions > 0 {
        std::process::exit(1);
    }
}
