//! `fun3d-report`: inspect, diff, and diagnose `fun3d-perf/1` runs.
//!
//! ```text
//! fun3d-report show <report.json> [--events stream.jsonl]
//! fun3d-report <report.json>                  # implicit show
//! fun3d-report profile <report.json> [<other.json>]
//! fun3d-report comm <report.json> [<other.json>]
//! fun3d-report serve <report.json>
//! fun3d-report live <report.json> [<other.json>]
//! fun3d-report diff <a.json> <b.json> [--tol-rel f] [--tol-mad-k f] [--tol-abs f]
//! fun3d-report explain [<report.json>] [<other.json>] [--blackbox dump.jsonl]
//! ```
//!
//! Every subcommand funnels its arguments through one shared loader
//! (`SubArgs`): positional report paths, an `--events` stream override for
//! the first report, `--blackbox` for a flight-recorder dump, and the
//! `--tol-*` tolerance knobs — with sibling `<stem>.events.jsonl` /
//! `<stem>.metrics.jsonl` autodiscovery on every load.
//!
//! `show` renders the run: metrics, the Table 3-style phase breakdown with
//! p50/p95/p99 tail latencies and modeled cache/TLB counters, a per-region
//! load-imbalance summary when the run was profiled, the Figure 5-style
//! convergence table from the event stream, scatter traffic, and
//! checkpoints.
//!
//! `profile` renders the thread-profile view of a `--profile` run: per
//! parallel region the max/mean per-thread busy time, imbalance factor, and
//! join-wait (the paper's Table 3 implementation-efficiency terms), plus
//! achieved GB/s and %-of-STREAM per byte-counted span (a live Table 2).
//! Naming a second report appends a region-by-region A/B comparison.
//!
//! `comm` renders the communication view of a `--trace-ranks` run: the
//! per-rank compute / exchange / wait table with the laggard rank flagged,
//! the neighbor byte-volume matrix, the critical-path breakdown, and the
//! η = η_alg · η_impl decomposition. Naming a second report appends a
//! per-rank wait-fraction A/B comparison.
//!
//! `serve` renders the serving view of a `serve` run: the open-loop rate
//! sweep, the saturation knee, and the cache / admission summary.
//!
//! `live` renders the `fun3d-metrics/1` time-series sidecar of a
//! `--metrics` run: sparkline trend rows, the health-state timeline, and —
//! with a second report — a noise-aware per-series A/B diff.
//!
//! `diff` judges run B against run A with the gate's noise-aware verdicts.
//!
//! `explain` is the diagnosis pass: it joins the report, profiler roofline
//! rows, rank-trace critical path, histogram tails, anomaly events, and a
//! `--blackbox` flight-recorder dump into a ranked list of bottleneck
//! hypotheses (bandwidth-bound / imbalance-bound / comm-wait-bound /
//! latency-bound / anomaly-terminated) with evidence lines; with a second
//! report it attributes the regression to the phase and cause that moved.
//! `--blackbox` alone (no report) renders the dump a panicked run left.
//!
//! Exit status: 0 on success (for `diff`, no regressions), 1 when a diff
//! regressed, 2 on usage or I/O errors.

use fun3d_harness::compare::Tolerance;
use fun3d_harness::report_cli::{
    render_comm, render_diff, render_explain, render_live, render_profile, render_serve,
    render_show, LoadedRun,
};
use fun3d_telemetry::blackbox::BlackboxDump;

fn usage() -> ! {
    eprintln!(
        "usage: fun3d-report [show] <report.json> [--events stream.jsonl]\n       \
         fun3d-report profile <report.json> [<other.json>]\n       \
         fun3d-report comm <report.json> [<other.json>]\n       \
         fun3d-report serve <report.json>\n       \
         fun3d-report live <report.json> [<other.json>]\n       \
         fun3d-report diff <a.json> <b.json> [--tol-rel f] [--tol-mad-k f] [--tol-abs f]\n       \
         fun3d-report explain [<report.json>] [<other.json>] [--blackbox dump.jsonl]"
    );
    std::process::exit(2);
}

/// The argument shape every subcommand shares: positional report paths plus
/// the flags that select sidecar files and tolerances.
struct SubArgs {
    paths: Vec<String>,
    events: Option<String>,
    blackbox: Option<String>,
    tol: Tolerance,
}

impl SubArgs {
    fn parse(argv: &[String]) -> Self {
        let mut out = Self {
            paths: Vec::new(),
            events: None,
            blackbox: None,
            tol: Tolerance::default(),
        };
        let value = |argv: &[String], i: usize, flag: &str| -> String {
            argv.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} expects a value");
                    usage()
                })
                .clone()
        };
        let num = |argv: &[String], i: usize, flag: &str| -> f64 {
            value(argv, i, flag).parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number");
                usage()
            })
        };
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--events" => {
                    i += 1;
                    out.events = Some(value(argv, i, "--events"));
                }
                "--blackbox" => {
                    i += 1;
                    out.blackbox = Some(value(argv, i, "--blackbox"));
                }
                "--tol-rel" => {
                    i += 1;
                    out.tol.rel = num(argv, i, "--tol-rel");
                }
                "--tol-mad-k" => {
                    i += 1;
                    out.tol.mad_k = num(argv, i, "--tol-mad-k");
                }
                "--tol-abs" => {
                    i += 1;
                    out.tol.abs_floor = num(argv, i, "--tol-abs");
                }
                other if other.starts_with("--") => {
                    eprintln!("unknown argument: {other}");
                    usage();
                }
                _ => out.paths.push(argv[i].clone()),
            }
            i += 1;
        }
        out
    }

    /// Load the first path (with the `--events` override) and, when a
    /// second path was named, that one too.  Any other arity is a usage
    /// error.
    fn load_one_or_two(&self) -> (LoadedRun, Option<LoadedRun>) {
        match self.paths.as_slice() {
            [r] => (load_or_die(r, self.events.as_deref()), None),
            [r, o] => (
                load_or_die(r, self.events.as_deref()),
                Some(load_or_die(o, None)),
            ),
            _ => usage(),
        }
    }

    /// Load exactly one report; a second path is a usage error.
    fn load_exactly_one(&self) -> LoadedRun {
        match self.load_one_or_two() {
            (run, None) => run,
            _ => usage(),
        }
    }

    /// Read and parse the `--blackbox` dump when one was named.
    fn load_blackbox(&self) -> Option<BlackboxDump> {
        self.blackbox.as_deref().map(|p| {
            fun3d_telemetry::blackbox::read_dump(p).unwrap_or_else(|e| {
                eprintln!("failed to load blackbox dump {p}: {e}");
                std::process::exit(2);
            })
        })
    }
}

fn load_or_die(report: &str, events: Option<&str>) -> LoadedRun {
    LoadedRun::load(report, events).unwrap_or_else(|e| {
        eprintln!("failed to load {report}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    match command.as_str() {
        "diff" => diff(&SubArgs::parse(&argv[1..])),
        "show" => show(&SubArgs::parse(&argv[1..])),
        "profile" => {
            let (run, other) = SubArgs::parse(&argv[1..]).load_one_or_two();
            print!("{}", render_profile(&run, other.as_ref()));
        }
        "comm" => {
            let (run, other) = SubArgs::parse(&argv[1..]).load_one_or_two();
            print!("{}", render_comm(&run, other.as_ref()));
        }
        "serve" => {
            let run = SubArgs::parse(&argv[1..]).load_exactly_one();
            print!("{}", render_serve(&run));
        }
        "live" => {
            let (run, other) = SubArgs::parse(&argv[1..]).load_one_or_two();
            print!("{}", render_live(&run, other.as_ref()));
        }
        "explain" => explain(&SubArgs::parse(&argv[1..])),
        _ => show(&SubArgs::parse(&argv)),
    }
}

fn show(sub: &SubArgs) {
    let run = sub.load_exactly_one();
    print!("{}", render_show(&run));
}

fn explain(sub: &SubArgs) {
    let blackbox = sub.load_blackbox();
    let (run, other) = match sub.paths.as_slice() {
        // A panicked run leaves only the dump behind; diagnose it alone.
        [] if blackbox.is_some() => (None, None),
        _ => {
            let (run, other) = sub.load_one_or_two();
            (Some(run), other)
        }
    };
    print!(
        "{}",
        render_explain(run.as_ref(), other.as_ref(), blackbox.as_ref())
    );
}

fn diff(sub: &SubArgs) {
    let (a, b) = match sub.load_one_or_two() {
        (a, Some(b)) => (a, b),
        _ => usage(),
    };
    let d = render_diff(&a, &b, &sub.tol);
    print!("{}", d.text);
    if d.regressions > 0 {
        std::process::exit(1);
    }
}
