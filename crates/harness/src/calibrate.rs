//! Machine calibration: measure this host's STREAM bandwidth and build a
//! [`MachineSpec`] around it, so the analytic models predict *this* machine
//! instead of a 1999 testbed.
//!
//! The paper's methodology (Section 2.2) prices every memory-bound phase at
//! the machine's sustainable bandwidth; the harness does the same, then
//! reports model-vs-measured deltas per experiment.

use fun3d_memmodel::machine::MachineSpec;
use fun3d_memmodel::stream::{run_stream, StreamResult};

/// The calibration outcome: the raw STREAM measurement and the machine spec
/// built from it.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Measured STREAM numbers.
    pub stream: StreamResult,
    /// Host machine model with the measured triad bandwidth.
    pub machine: MachineSpec,
}

/// Run STREAM (`n` doubles per array, a few reps) and wrap the result.
/// `n` is clamped to at least 64k elements so the arrays exceed any L2.
pub fn calibrate_host(n: usize, reps: usize) -> Calibration {
    let stream = run_stream(n.max(64 * 1024), reps.max(1));
    let machine = MachineSpec::calibrated_host(stream.triad);
    Calibration { stream, machine }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_feeds_measured_bandwidth_into_the_spec() {
        let cal = calibrate_host(64 * 1024, 1);
        assert!(cal.stream.triad > 0.0);
        assert_eq!(cal.machine.stream_bytes_per_s, cal.stream.triad);
        assert_eq!(cal.machine.name, "calibrated host");
    }

    #[test]
    fn with_stream_bandwidth_overrides_only_bandwidth() {
        let m = MachineSpec::asci_red().with_stream_bandwidth(123.0);
        assert_eq!(m.stream_bytes_per_s, 123.0);
        assert_eq!(m.name, "ASCI Red");
        assert_eq!(m.max_nodes, MachineSpec::asci_red().max_nodes);
    }
}
