//! Noise-aware comparison of a current run against a stored baseline.
//!
//! A metric only counts as a regression when it moves in the *bad* direction
//! by more than a threshold combining a relative band, a robust noise band
//! (MAD-scaled), and an absolute floor — so a 2% jitter on a 1 ms kernel
//! never gates, while a reproducible 2x slowdown always does.

use crate::baseline::{ExperimentBaseline, MetricBaseline};
use crate::stats::{Summary, MAD_TO_SIGMA};

/// Comparison tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band: changes below `rel * |baseline median|` pass.
    pub rel: f64,
    /// Noise band: changes below `mad_k * 1.4826 * max(base MAD, cur MAD)`
    /// pass (the factor converts MAD to a sigma estimate).
    pub mad_k: f64,
    /// Absolute floor below which changes are never flagged — protects
    /// sub-microsecond timings where relative noise is huge.
    pub abs_floor: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            rel: 0.2,
            mad_k: 6.0,
            abs_floor: 1e-4,
        }
    }
}

impl Tolerance {
    /// The change magnitude that separates pass from fail for a metric with
    /// the given baseline and current spreads.
    pub fn threshold(&self, base: &MetricBaseline, current: &Summary) -> f64 {
        let noise = self.mad_k * MAD_TO_SIGMA * base.mad.max(current.mad);
        (self.rel * base.median.abs())
            .max(noise)
            .max(self.abs_floor)
    }
}

/// Outcome of one metric (or one experiment) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Pass,
    /// Worse than baseline by more than the threshold.
    Regressed,
    /// Better than baseline by more than the threshold.
    Improved,
    /// The metric exists on only one side (renamed, added, or removed).
    UnknownMetric,
}

impl Verdict {
    /// Short token for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::UnknownMetric => "unknown-metric",
        }
    }
}

/// Metric polarity: does a larger value mean better performance?
///
/// Rates, speedups, and efficiencies improve upward; times, misses, byte
/// counts, and iteration counts improve downward.  The heuristic keys off
/// the naming conventions used across the workspace's reports.
pub fn higher_is_better(key: &str) -> bool {
    [
        "bytes_per_s",
        "bandwidth",
        "gbps",
        "gflops",
        "mflops",
        "speedup",
        "eta",
        "ratio",
        "solves_per_s",
        "throughput",
        "hit_rate",
        "batch_len",
        "confidence",
    ]
    .iter()
    .any(|tag| key.contains(tag))
}

/// One metric's comparison against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricComparison {
    /// Metric key.
    pub key: String,
    /// Baseline stored summary (`None` for unknown metrics).
    pub baseline: Option<MetricBaseline>,
    /// Current robust summary.
    pub current: Summary,
    /// Signed change, current median - baseline median.
    pub delta: f64,
    /// Threshold the change was judged against.
    pub threshold: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compare one experiment's current summaries against its baseline entry.
///
/// `baseline = None` (experiment absent from the file) yields
/// `UnknownMetric` for every metric, which does not gate.
pub fn compare_experiment(
    current: &[(String, Summary)],
    baseline: Option<&ExperimentBaseline>,
    tol: &Tolerance,
) -> Vec<MetricComparison> {
    current
        .iter()
        .map(|(key, cur)| {
            let base = baseline.and_then(|b| b.metric(key));
            match base {
                None => MetricComparison {
                    key: key.clone(),
                    baseline: None,
                    current: *cur,
                    delta: 0.0,
                    threshold: 0.0,
                    verdict: Verdict::UnknownMetric,
                },
                Some(b) => {
                    let delta = cur.median - b.median;
                    let threshold = tol.threshold(&b, cur);
                    let worse = if higher_is_better(key) { -delta } else { delta };
                    let verdict = if worse > threshold {
                        Verdict::Regressed
                    } else if -worse > threshold {
                        Verdict::Improved
                    } else {
                        Verdict::Pass
                    };
                    MetricComparison {
                        key: key.clone(),
                        baseline: Some(b),
                        current: *cur,
                        delta,
                        threshold,
                        verdict,
                    }
                }
            }
        })
        .collect()
}

/// The experiment-level verdict: `Regressed` dominates, then `Improved`,
/// then `Pass`; all-unknown yields `UnknownMetric`.
pub fn overall(comparisons: &[MetricComparison]) -> Verdict {
    let mut saw_known = false;
    let mut improved = false;
    for c in comparisons {
        match c.verdict {
            Verdict::Regressed => return Verdict::Regressed,
            Verdict::Improved => {
                improved = true;
                saw_known = true;
            }
            Verdict::Pass => saw_known = true,
            Verdict::UnknownMetric => {}
        }
    }
    if !saw_known {
        Verdict::UnknownMetric
    } else if improved {
        Verdict::Improved
    } else {
        Verdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(median: f64, mad: f64, n: usize) -> Summary {
        Summary {
            n,
            median,
            mad,
            min: median - mad,
            max: median + mad,
        }
    }

    fn base(median: f64, mad: f64) -> ExperimentBaseline {
        ExperimentBaseline {
            name: "x".into(),
            metrics: vec![("time_s".into(), MetricBaseline { median, mad, n: 5 })],
        }
    }

    #[test]
    fn polarity_heuristic() {
        assert!(higher_is_better("triad_bytes_per_s"));
        assert!(higher_is_better("gflops_p128"));
        assert!(higher_is_better("omp_speedup"));
        assert!(higher_is_better("eta_overall_p1024"));
        // Serving metrics: throughput and cache hit rate improve upward;
        // tail latency, rejects, and setup cost improve downward.
        assert!(higher_is_better("rate2:solves_per_s"));
        assert!(higher_is_better("serve:hit_rate"));
        assert!(!higher_is_better("rate2:p99_s"));
        assert!(!higher_is_better("serve:rejected_total"));
        assert!(!higher_is_better("serve:setup_per_solve_s"));
        // Live-telemetry metrics: SLO burn, health-state code (0 ok ..
        // 2 saturated), and queue-wait fraction all improve downward.
        assert!(!higher_is_better("rate2:burn"));
        assert!(!higher_is_better("rate2:health_state"));
        assert!(!higher_is_better("serve:queue_wait_frac"));
        // Profile-derived columns: achieved bandwidth improves upward,
        // load imbalance (1.0 = balanced) improves downward.
        assert!(higher_is_better("spmv/csr:gbps"));
        assert!(!higher_is_better("spmv_csr:imbalance"));
        // Micro-kernel tier metrics: achieved bandwidth, tier speedups,
        // structure hit rate, and batch length improve upward; per-tier
        // times and template counts improve downward.
        assert!(higher_is_better("spmv_bcsr:gbps"));
        assert!(higher_is_better("bilu_sweep:gbps"));
        assert!(higher_is_better("blockspec/spmv_b5_batched:gbps"));
        assert!(higher_is_better("spmv_b5:batched_speedup"));
        assert!(higher_is_better("b5:hit_rate"));
        assert!(higher_is_better("b5:mean_batch_len"));
        assert!(!higher_is_better("b5:ntemplates"));
        assert!(!higher_is_better("spmv_b5:batched_s"));
        assert!(!higher_is_better("time_csr_s"));
        assert!(!higher_is_better("tlb_misses_row0"));
        assert!(!higher_is_better("linear_its"));
        // Diagnosis metrics: solver anomaly counts improve downward (zero
        // is healthy); the `explain` confidence score is reported-only —
        // it never gates — but reads as higher-is-better.
        assert!(!higher_is_better("anomaly:count"));
        assert!(higher_is_better("explain:confidence"));
    }

    #[test]
    fn p95_tail_metric_gates_as_lower_is_better() {
        // Span tail metrics are keyed `{path}:p95_s`; a fatter tail must
        // regress even when the median metric is unchanged.
        let b = ExperimentBaseline {
            name: "spmv".into(),
            metrics: vec![(
                "spmv/csr:p95_s".into(),
                MetricBaseline {
                    median: 1e-3,
                    mad: 0.0,
                    n: 5,
                },
            )],
        };
        assert!(!higher_is_better("spmv/csr:p95_s"));
        let tol = Tolerance::default();
        let cur = vec![("spmv/csr:p95_s".to_string(), summary(2e-3, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Regressed);
        let cur = vec![("spmv/csr:p95_s".to_string(), summary(4e-4, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Improved);
    }

    #[test]
    fn within_relative_band_passes() {
        let b = base(1.0, 0.0);
        let tol = Tolerance::default(); // rel 0.2
        let cur = vec![("time_s".to_string(), summary(1.15, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Pass);
    }

    #[test]
    fn beyond_relative_band_regresses_lower_is_better() {
        let b = base(1.0, 0.0);
        let tol = Tolerance::default();
        let cur = vec![("time_s".to_string(), summary(1.5, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Regressed);
        // Same magnitude downward is an improvement.
        let cur = vec![("time_s".to_string(), summary(0.5, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Improved);
    }

    #[test]
    fn polarity_flips_verdict_for_rates() {
        let b = ExperimentBaseline {
            name: "stream".into(),
            metrics: vec![(
                "triad_bytes_per_s".into(),
                MetricBaseline {
                    median: 10e9,
                    mad: 0.0,
                    n: 5,
                },
            )],
        };
        let tol = Tolerance::default();
        // Bandwidth halves: that's a regression even though the value fell.
        let cur = vec![("triad_bytes_per_s".to_string(), summary(5e9, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Regressed);
        let cur = vec![("triad_bytes_per_s".to_string(), summary(20e9, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Improved);
    }

    #[test]
    fn noisy_metric_gets_wider_band() {
        // 40% change, but the baseline MAD is 10% of the median: the noise
        // band (6 * 1.4826 * 0.1 ≈ 0.89) swallows it.
        let b = base(1.0, 0.1);
        let tol = Tolerance::default();
        let cur = vec![("time_s".to_string(), summary(1.4, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Pass);
    }

    #[test]
    fn abs_floor_protects_tiny_timings() {
        let b = base(1e-6, 0.0);
        let tol = Tolerance::default(); // abs_floor 1e-4
                                        // 50x slower in relative terms, but still below the absolute floor.
        let cur = vec![("time_s".to_string(), summary(5e-5, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Pass);
    }

    #[test]
    fn exact_boundary_is_a_pass() {
        // worse == threshold must not regress (strict inequality).
        let b = base(1.0, 0.0);
        let tol = Tolerance {
            rel: 0.2,
            mad_k: 0.0,
            abs_floor: 0.0,
        };
        let cur = vec![("time_s".to_string(), summary(1.2, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Pass);
        let cur = vec![("time_s".to_string(), summary(1.2 + 1e-9, 0.0, 3))];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn unknown_metric_and_overall_rollup() {
        let b = base(1.0, 0.0);
        let tol = Tolerance::default();
        let cur = vec![
            ("time_s".to_string(), summary(1.0, 0.0, 3)),
            ("brand_new".to_string(), summary(7.0, 0.0, 3)),
        ];
        let cmp = compare_experiment(&cur, Some(&b), &tol);
        assert_eq!(cmp[1].verdict, Verdict::UnknownMetric);
        assert_eq!(overall(&cmp), Verdict::Pass);
        // Missing experiment entirely: all unknown.
        let cmp = compare_experiment(&cur, None, &tol);
        assert!(cmp.iter().all(|c| c.verdict == Verdict::UnknownMetric));
        assert_eq!(overall(&cmp), Verdict::UnknownMetric);
        // Any regression dominates.
        let cur = vec![
            ("time_s".to_string(), summary(9.0, 0.0, 3)),
            ("brand_new".to_string(), summary(7.0, 0.0, 3)),
        ];
        assert_eq!(
            overall(&compare_experiment(&cur, Some(&b), &tol)),
            Verdict::Regressed
        );
    }
}
