//! Suite orchestration: registry -> calibrated machine -> runs -> robust
//! stats -> baseline comparison -> verdicts.  The `fun3d-bench` driver is a
//! thin CLI over this module.

use crate::baseline::{Baseline, ExperimentBaseline};
use crate::calibrate::{calibrate_host, Calibration};
use crate::compare::{compare_experiment, overall, MetricComparison, Tolerance, Verdict};
use crate::run::{run_experiment, ExperimentRun};
use crate::suite::{suite, SuiteEntry};
use fun3d_bench::{runners, BenchArgs};
use fun3d_telemetry::json::Value;

/// What to run and how to judge it.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Suite name (or single experiment name).
    pub suite: String,
    /// Override every entry's repetition count.
    pub reps: Option<usize>,
    /// Override every entry's mesh scale.
    pub scale: Option<f64>,
    /// Override every entry's measured-step count (`--steps`); the `serve`
    /// experiment reads it as the number of swept arrival rates.
    pub steps: Option<usize>,
    /// Override the thread-team size for every entry (`--threads`); `None`
    /// keeps each run's `BenchArgs` default (`FUN3D_THREADS` or 1).
    pub threads: Option<usize>,
    /// Force per-thread region profiling on or off for every entry
    /// (`--profile`); `None` keeps each run's `BenchArgs` default
    /// (`FUN3D_PROFILE` or off).
    pub profile: Option<bool>,
    /// Override the simulated rank-count cap for every entry (`--ranks`);
    /// `None` keeps each runner's default sweep.
    pub ranks: Option<usize>,
    /// Force per-rank tracing on or off for every entry (`--trace-ranks`);
    /// `None` keeps each run's `BenchArgs` default (`FUN3D_TRACE_RANKS` or
    /// off).
    pub trace_ranks: Option<bool>,
    /// Force live serving telemetry on or off for every entry
    /// (`--metrics`); `None` keeps each run's `BenchArgs` default
    /// (`FUN3D_METRICS` or off).  Only runners that serve requests react.
    pub metrics: Option<bool>,
    /// Comparison tolerances.
    pub tol: Tolerance,
    /// Show per-experiment tables and commentary while running.
    pub verbose: bool,
    /// STREAM array length for calibration (doubles per array).
    pub calibrate_n: usize,
    /// When set, write each experiment's representative report to
    /// `<dir>/<name>.json` and its event stream to
    /// `<dir>/<name>.events.jsonl` (the inputs `fun3d-report` inspects).
    pub events_dir: Option<String>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            suite: "quick".into(),
            reps: None,
            scale: None,
            steps: None,
            threads: None,
            profile: None,
            ranks: None,
            trace_ranks: None,
            metrics: None,
            tol: Tolerance::default(),
            verbose: false,
            calibrate_n: 2 * 1024 * 1024,
            events_dir: None,
        }
    }
}

/// A model-vs-measured line: the machine model's prediction for one metric
/// alongside the measured median.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelLine {
    /// Metric key.
    pub metric: String,
    /// Model prediction (calibrated host machine).
    pub predicted: f64,
    /// Measured median, when the metric exists in the run.
    pub measured: Option<f64>,
}

impl ModelLine {
    /// measured / predicted, when both sides exist and predicted != 0.
    pub fn ratio(&self) -> Option<f64> {
        self.measured
            .filter(|_| self.predicted != 0.0)
            .map(|m| m / self.predicted)
    }
}

/// One experiment's full outcome.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The schedule entry that produced it.
    pub entry: SuiteEntry,
    /// Reports and per-metric summaries.
    pub run: ExperimentRun,
    /// Per-metric baseline comparisons (empty baseline -> all unknown).
    pub comparisons: Vec<MetricComparison>,
    /// Experiment-level verdict.
    pub verdict: Verdict,
    /// Model-vs-measured lines from [`fun3d_bench::Experiment::model`].
    pub models: Vec<ModelLine>,
}

/// A whole gated suite run.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Suite name.
    pub suite: String,
    /// The host calibration used for model columns.
    pub calibration: Calibration,
    /// Per-experiment outcomes, in schedule order.
    pub outcomes: Vec<ExperimentOutcome>,
}

impl SuiteOutcome {
    /// The run-level verdict: any regression dominates.
    pub fn verdict(&self) -> Verdict {
        if self
            .outcomes
            .iter()
            .any(|o| o.verdict == Verdict::Regressed)
        {
            Verdict::Regressed
        } else if self.outcomes.iter().any(|o| o.verdict == Verdict::Improved) {
            Verdict::Improved
        } else if self
            .outcomes
            .iter()
            .all(|o| o.verdict == Verdict::UnknownMetric)
        {
            Verdict::UnknownMetric
        } else {
            Verdict::Pass
        }
    }

    /// Convert this run's summaries into a saveable baseline.
    pub fn to_baseline(&self) -> Baseline {
        Baseline {
            meta: vec![
                ("suite".into(), self.suite.clone()),
                (
                    "stream_triad_bytes_per_s".into(),
                    format!("{:.0}", self.calibration.stream.triad),
                ),
            ],
            experiments: self
                .outcomes
                .iter()
                .map(|o| ExperimentBaseline {
                    name: o.run.name.clone(),
                    metrics: o
                        .run
                        .summaries
                        .iter()
                        .map(|(k, s)| (k.clone(), (*s).into()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Machine-readable summary of the gated run.
    pub fn to_json(&self) -> Value {
        let outcomes = self
            .outcomes
            .iter()
            .map(|o| {
                let metrics = o
                    .comparisons
                    .iter()
                    .map(|c| {
                        let mut fields = vec![
                            ("median".into(), Value::Num(c.current.median)),
                            ("mad".into(), Value::Num(c.current.mad)),
                            ("n".into(), Value::Num(c.current.n as f64)),
                            ("verdict".into(), Value::Str(c.verdict.label().into())),
                        ];
                        if let Some(b) = c.baseline {
                            fields.push(("baseline_median".into(), Value::Num(b.median)));
                            fields.push(("delta".into(), Value::Num(c.delta)));
                            fields.push(("threshold".into(), Value::Num(c.threshold)));
                        }
                        (c.key.clone(), Value::Obj(fields))
                    })
                    .collect();
                let models = o
                    .models
                    .iter()
                    .map(|m| {
                        Value::Obj(vec![
                            ("metric".into(), Value::Str(m.metric.clone())),
                            ("predicted".into(), Value::Num(m.predicted)),
                            (
                                "measured".into(),
                                m.measured.map_or(Value::Null, Value::Num),
                            ),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("name".into(), Value::Str(o.run.name.clone())),
                    ("verdict".into(), Value::Str(o.verdict.label().into())),
                    ("metrics".into(), Value::Obj(metrics)),
                    ("model_vs_measured".into(), Value::Arr(models)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("fun3d-gate/1".into())),
            ("suite".into(), Value::Str(self.suite.clone())),
            (
                "stream_triad_bytes_per_s".into(),
                Value::Num(self.calibration.stream.triad),
            ),
            ("verdict".into(), Value::Str(self.verdict().label().into())),
            ("experiments".into(), Value::Arr(outcomes)),
        ])
    }

    /// Markdown report: verdict table plus model-vs-measured sections.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# fun3d-bench: suite `{}` — {}\n\n",
            self.suite,
            self.verdict().label()
        ));
        out.push_str(&format!(
            "Calibrated host STREAM triad: {:.0} MB/s\n\n",
            self.calibration.stream.triad / 1e6
        ));
        out.push_str("| experiment | verdict | regressed | improved | unknown | metrics |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for o in &self.outcomes {
            let count = |v: Verdict| o.comparisons.iter().filter(|c| c.verdict == v).count();
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                o.run.name,
                o.verdict.label(),
                count(Verdict::Regressed),
                count(Verdict::Improved),
                count(Verdict::UnknownMetric),
                o.comparisons.len()
            ));
        }
        for o in &self.outcomes {
            let flagged: Vec<&MetricComparison> = o
                .comparisons
                .iter()
                .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::Improved))
                .collect();
            if !flagged.is_empty() {
                out.push_str(&format!("\n## {}: flagged metrics\n\n", o.run.name));
                out.push_str("| metric | baseline | current | delta | threshold | verdict |\n");
                out.push_str("|---|---|---|---|---|---|\n");
                for c in flagged {
                    out.push_str(&format!(
                        "| {} | {:.4e} | {:.4e} | {:+.4e} | {:.4e} | {} |\n",
                        c.key,
                        c.baseline.map(|b| b.median).unwrap_or(f64::NAN),
                        c.current.median,
                        c.delta,
                        c.threshold,
                        c.verdict.label()
                    ));
                }
            }
            if !o.models.is_empty() {
                out.push_str(&format!("\n## {}: model vs measured\n\n", o.run.name));
                out.push_str("| metric | model | measured | measured/model |\n");
                out.push_str("|---|---|---|---|\n");
                for m in &o.models {
                    out.push_str(&format!(
                        "| {} | {:.4e} | {} | {} |\n",
                        m.metric,
                        m.predicted,
                        m.measured.map_or("-".to_string(), |x| format!("{x:.4e}")),
                        m.ratio().map_or("-".to_string(), |r| format!("{r:.2}")),
                    ));
                }
            }
        }
        out
    }
}

/// Run a suite against an optional baseline.
///
/// Returns `Err` only for unknown suite/experiment names; individual
/// experiment panics are not caught.
pub fn run_suite(cfg: &GateConfig, baseline: Option<&Baseline>) -> Result<SuiteOutcome, String> {
    let entries = suite(&cfg.suite).ok_or_else(|| {
        format!(
            "unknown suite or experiment {:?} (named suites: smoke, quick, full; see `fun3d-bench list`)",
            cfg.suite
        )
    })?;
    let calibration = calibrate_host(cfg.calibrate_n, 2);
    let mut outcomes = Vec::new();
    for entry in entries {
        let exp = runners::find(entry.name).expect("suites only reference registered names");
        let defaults = BenchArgs::defaults(entry.scale);
        let args = BenchArgs {
            scale: cfg.scale.unwrap_or(entry.scale),
            steps: cfg.steps.unwrap_or(entry.steps),
            reps: cfg.reps.unwrap_or(entry.reps),
            quiet: !cfg.verbose,
            threads: cfg.threads.unwrap_or(defaults.threads),
            profile: cfg.profile.unwrap_or(defaults.profile),
            ranks: cfg.ranks.unwrap_or(defaults.ranks),
            trace_ranks: cfg.trace_ranks.unwrap_or(defaults.trace_ranks),
            metrics: cfg.metrics.unwrap_or(defaults.metrics),
            ..defaults
        };
        let run = run_experiment(exp.as_ref(), &args, entry.warmup);
        if let Some(dir) = &cfg.events_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating events dir {dir} failed: {e}"));
            let json_path = format!("{dir}/{}.json", entry.name);
            run.representative()
                .write_json(&json_path)
                .unwrap_or_else(|e| panic!("writing {json_path} failed: {e}"));
            let ev_path = format!("{dir}/{}.events.jsonl", entry.name);
            run.representative_events()
                .write_jsonl(&ev_path)
                .unwrap_or_else(|e| panic!("writing {ev_path} failed: {e}"));
            let metrics = run.representative_metrics();
            if !metrics.is_empty() {
                let m_path = format!("{dir}/{}.metrics.jsonl", entry.name);
                metrics
                    .write_jsonl(&m_path)
                    .unwrap_or_else(|e| panic!("writing {m_path} failed: {e}"));
            }
        }
        let comparisons = compare_experiment(
            &run.summaries,
            baseline.and_then(|b| b.experiment(entry.name)),
            &cfg.tol,
        );
        let verdict = if baseline.is_some() {
            overall(&comparisons)
        } else {
            // No baseline: nothing to gate against.
            Verdict::UnknownMetric
        };
        let models = exp
            .model(run.representative(), &calibration.machine)
            .into_iter()
            .map(|e| ModelLine {
                measured: run
                    .summaries
                    .iter()
                    .find(|(k, _)| *k == e.metric)
                    .map(|(_, s)| s.median),
                metric: e.metric,
                predicted: e.predicted,
            })
            .collect();
        outcomes.push(ExperimentOutcome {
            entry,
            run,
            comparisons,
            verdict,
            models,
        });
    }
    Ok(SuiteOutcome {
        suite: cfg.suite.clone(),
        calibration,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_suite_is_an_error() {
        let cfg = GateConfig {
            suite: "nonesuch".into(),
            ..Default::default()
        };
        assert!(run_suite(&cfg, None).is_err());
    }
}
