//! Experiment orchestration and perf-regression gating for the PETSc-FUN3D
//! reproduction.
//!
//! The workspace's benchmarks are library calls (`fun3d_bench::runners`)
//! behind the [`fun3d_bench::Experiment`] trait; this crate schedules them
//! in suites with warmup and repetitions ([`run`]), reduces the per-rep
//! `fun3d-perf/1` reports with robust statistics ([`stats`]), stores and
//! compares versioned baselines with noise-aware verdicts ([`baseline`],
//! [`compare`]), and calibrates the analytic machine model against the
//! host's measured STREAM bandwidth ([`calibrate`]).  The `fun3d-bench`
//! binary is the CLI over [`gate`].
//!
//! Pipeline: registry -> runs -> stats -> baseline gate.

pub mod baseline;
pub mod calibrate;
pub mod compare;
pub mod gate;
pub mod report_cli;
pub mod run;
pub mod stats;
pub mod suite;
