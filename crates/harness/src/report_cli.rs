//! Run inspection behind the `fun3d-report` binary: render one
//! `fun3d-perf/1` report (plus its `fun3d-events/1` stream) as human-readable
//! tables, or diff two reports with the same noise-aware verdicts the gate
//! uses.
//!
//! `show` answers "what did this run do": a Figure 5-style convergence table
//! from the event stream, a Table 3-style phase breakdown from the span
//! tree (with p50/p95/p99 tail latencies and modeled cache/TLB counters),
//! scatter traffic, and checkpoints.  `diff` answers "what changed": every
//! metric of run B judged against run A as a single-sample baseline.

use crate::baseline::{ExperimentBaseline, MetricBaseline};
use crate::compare::{compare_experiment, Tolerance, Verdict};
use crate::stats::Summary;
use fun3d_telemetry::events::{convergence_table, EventRecord, EventStream};
use fun3d_telemetry::report::PerfReport;

/// A report plus the event stream that rode along with it.
#[derive(Debug, Clone)]
pub struct LoadedRun {
    /// Path the report was loaded from (for headings).
    pub path: String,
    /// The parsed report.
    pub report: PerfReport,
    /// The run's event stream; empty when none was found.
    pub events: EventStream,
}

/// The sibling event-stream path the gate writes next to a report:
/// `runs/table1.json` -> `runs/table1.events.jsonl`.
pub fn sibling_events_path(report_path: &str) -> String {
    let stem = report_path.strip_suffix(".json").unwrap_or(report_path);
    format!("{stem}.events.jsonl")
}

impl LoadedRun {
    /// Load a report and its event stream.  `events_path = None`
    /// autodiscovers the sibling `<stem>.events.jsonl`; a missing sibling is
    /// fine (empty stream), but an explicitly named file must parse.
    pub fn load(report_path: &str, events_path: Option<&str>) -> std::io::Result<Self> {
        let report = PerfReport::read_json(report_path)?;
        let events = match events_path {
            Some(p) => EventStream::read_jsonl(p)?,
            None => {
                let sibling = sibling_events_path(report_path);
                if std::path::Path::new(&sibling).exists() {
                    EventStream::read_jsonl(&sibling)?
                } else {
                    EventStream::default()
                }
            }
        };
        Ok(Self {
            path: report_path.to_string(),
            report,
            events,
        })
    }
}

/// Scalar metrics plus the derived span tail metrics, deduplicated — the
/// metric set `diff` judges.  Raw `--json` reports from the bench bins have
/// not been through the harness, so their `{path}:p95_s` entries exist only
/// in span histograms; fold them in here so both flavors diff identically.
pub fn effective_metrics(report: &PerfReport) -> Vec<(String, f64)> {
    let mut out = report.metrics.clone();
    for (key, v) in report.tail_metrics() {
        if !out.iter().any(|(k, _)| *k == key) {
            out.push((key, v));
        }
    }
    out
}

fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_opt_s(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.2e}"))
}

fn render_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |out: &mut String, cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        out.push_str(&format!("| {} |\n", padded.join(" | ")));
    };
    line(
        out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    out.push_str(&format!(
        "|{}|\n",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    for row in rows {
        line(out, row);
    }
}

/// Render one run as the full inspection view.
pub fn render_show(run: &LoadedRun) -> String {
    let r = &run.report;
    let mut out = String::new();
    out.push_str(&format!("# fun3d-report: {} ({})\n", r.name, run.path));
    if !r.meta.is_empty() {
        let pairs: Vec<String> = r.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!("meta: {}\n", pairs.join(", ")));
    }

    if !r.metrics.is_empty() {
        out.push_str("\n## Metrics\n\n");
        let rows: Vec<Vec<String>> = r
            .metrics
            .iter()
            .map(|(k, v)| vec![k.clone(), fmt_sig(*v)])
            .collect();
        render_table(&mut out, &["metric", "value"], &rows);
    }

    if !r.spans.is_empty() {
        // The paper's Table 3 reports per-phase percentages of execution
        // time; the denominator here is the top-level spans (children nest
        // inside them, so summing every row would double-count).
        let total: f64 = r
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_s)
            .sum();
        out.push_str("\n## Phase breakdown (Table 3)\n\n");
        let rows: Vec<Vec<String>> = r
            .spans
            .iter()
            .map(|s| {
                let counters: Vec<String> = s
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={}", fmt_sig(*v)))
                    .collect();
                vec![
                    s.path.clone(),
                    s.domain.tag().to_string(),
                    s.calls.to_string(),
                    format!("{:.4e}", s.total_s),
                    if total > 0.0 && !s.path.contains('/') {
                        format!("{:.1}", 100.0 * s.total_s / total)
                    } else {
                        "-".to_string()
                    },
                    fmt_opt_s(s.p50()),
                    fmt_opt_s(s.p95()),
                    fmt_opt_s(s.p99()),
                    counters.join(" "),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &[
                "span", "domain", "calls", "total_s", "%", "p50_s", "p95_s", "p99_s", "counters",
            ],
            &rows,
        );
    }

    if !run.events.newton_steps().is_empty() {
        out.push('\n');
        out.push_str(&convergence_table(&run.events));
    }

    let (mut n_scatter, mut bytes, mut t_scatter) = (0u64, 0u64, 0.0f64);
    let mut checkpoints = Vec::new();
    for ev in &run.events.records {
        match ev {
            EventRecord::Scatter { bytes: b, t, .. } => {
                n_scatter += 1;
                bytes += b;
                t_scatter += t;
            }
            EventRecord::Checkpoint { step, path } => {
                checkpoints.push(format!("  step {step}: {path}"));
            }
            _ => {}
        }
    }
    if n_scatter > 0 {
        out.push_str(&format!(
            "\n## Ghost scatters\n\n{n_scatter} scatters, {bytes} bytes total, {:.3e} s total\n",
            t_scatter
        ));
    }
    if !checkpoints.is_empty() {
        out.push_str("\n## Checkpoints\n\n");
        out.push_str(&checkpoints.join("\n"));
        out.push('\n');
    }
    out
}

/// One metric's row in a diff plus the count of regressions.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Rendered text.
    pub text: String,
    /// Metrics judged `Regressed` (run B worse than run A).
    pub regressions: usize,
}

/// Diff run `b` against run `a` (`a` is the baseline side).  Single runs
/// have no spread, so the verdicts come entirely from the tolerance's
/// relative band and absolute floor.
pub fn render_diff(a: &LoadedRun, b: &LoadedRun, tol: &Tolerance) -> DiffOutcome {
    let base = ExperimentBaseline {
        name: a.report.name.clone(),
        metrics: effective_metrics(&a.report)
            .into_iter()
            .map(|(k, v)| {
                (
                    k,
                    MetricBaseline {
                        median: v,
                        mad: 0.0,
                        n: 1,
                    },
                )
            })
            .collect(),
    };
    let current: Vec<(String, Summary)> = effective_metrics(&b.report)
        .into_iter()
        .map(|(k, v)| {
            (
                k,
                Summary {
                    n: 1,
                    median: v,
                    mad: 0.0,
                    min: v,
                    max: v,
                },
            )
        })
        .collect();
    let comparisons = compare_experiment(&current, Some(&base), tol);

    let mut out = String::new();
    out.push_str(&format!(
        "# fun3d-report diff: {} (A) vs {} (B)\n\n",
        a.path, b.path
    ));
    // Label threaded runs so a cross-thread-count diff is legible at a
    // glance (nthreads comes from the shared --threads/FUN3D_THREADS flag).
    if a.report.meta("nthreads").is_some() || b.report.meta("nthreads").is_some() {
        out.push_str(&format!(
            "threads: A={} B={}\n\n",
            a.report.meta("nthreads").unwrap_or("1"),
            b.report.meta("nthreads").unwrap_or("1"),
        ));
    }
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.key.clone(),
                c.baseline
                    .map_or("-".to_string(), |bl| format!("{:.4e}", bl.median)),
                format!("{:.4e}", c.current.median),
                format!("{:+.4e}", c.delta),
                c.verdict.label().to_string(),
            ]
        })
        .collect();
    render_table(&mut out, &["metric", "A", "B", "delta", "verdict"], &rows);

    // Span-level deltas for paths both runs profiled.
    let span_rows: Vec<Vec<String>> = b
        .report
        .spans
        .iter()
        .filter_map(|sb| {
            a.report.span(&sb.path).map(|sa| {
                vec![
                    sb.path.clone(),
                    format!("{:.4e}", sa.total_s),
                    format!("{:.4e}", sb.total_s),
                    format!("{:+.4e}", sb.total_s - sa.total_s),
                    fmt_opt_s(sa.p95()),
                    fmt_opt_s(sb.p95()),
                ]
            })
        })
        .collect();
    if !span_rows.is_empty() {
        out.push_str("\n## Span deltas\n\n");
        render_table(
            &mut out,
            &[
                "span",
                "A total_s",
                "B total_s",
                "delta",
                "A p95_s",
                "B p95_s",
            ],
            &span_rows,
        );
    }

    let regressions = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .count();
    let improved = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Improved)
        .count();
    out.push_str(&format!(
        "\nregressions: {regressions}  improved: {improved}  metrics: {}\n",
        comparisons.len()
    ));
    DiffOutcome {
        text: out,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_telemetry::events::EventSink;
    use fun3d_telemetry::Registry;

    fn sample_run(time_s: f64) -> LoadedRun {
        let tel = Registry::enabled(0);
        for _ in 0..4 {
            let _g = tel.span("nks");
        }
        let mut report = PerfReport::new("unit")
            .with_meta("scale", "0.1")
            .with_snapshot(&tel.snapshot());
        report.push_metric("time_s", time_s);
        let sink = EventSink::enabled();
        sink.emit(EventRecord::RunMeta {
            name: "unit".into(),
            meta: vec![],
        });
        for step in 0..3u64 {
            sink.emit(EventRecord::NewtonStep {
                step,
                residual_norm: 1.0 / (step + 1) as f64,
                cfl: 5.0 * (step + 1) as f64,
                gmres_iters: 7,
                eta: 1e-2,
                t_residual: 0.1,
                t_jacobian: 0.2,
                t_precond: 0.05,
                t_krylov: 0.3,
            });
        }
        sink.emit(EventRecord::Scatter {
            bytes: 1024,
            neighbors: 3,
            t: 1e-5,
        });
        sink.emit(EventRecord::Checkpoint {
            step: 2,
            path: "ck.txt".into(),
        });
        LoadedRun {
            path: "unit.json".into(),
            report,
            events: EventStream::new(sink.drain()),
        }
    }

    #[test]
    fn show_renders_all_sections() {
        let run = sample_run(1.0);
        let text = render_show(&run);
        assert!(text.contains("# fun3d-report: unit"));
        assert!(text.contains("## Metrics"));
        assert!(text.contains("## Phase breakdown (Table 3)"));
        assert!(text.contains("Convergence (Figure 5)"));
        assert!(text.contains("## Ghost scatters"));
        assert!(text.contains("## Checkpoints"));
        assert!(text.contains("p95_s"));
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let run = sample_run(1.0);
        let d = render_diff(&run, &run, &Tolerance::default());
        assert_eq!(d.regressions, 0);
        assert!(d.text.contains("regressions: 0"));
        assert!(d.text.contains("## Span deltas"));
    }

    #[test]
    fn slower_run_regresses() {
        let a = sample_run(1.0);
        let b = sample_run(2.0);
        let d = render_diff(&a, &b, &Tolerance::default());
        assert!(d.regressions >= 1, "{}", d.text);
        assert!(d.text.contains("REGRESSED"));
    }

    #[test]
    fn effective_metrics_fold_in_span_tails_once() {
        let run = sample_run(1.0);
        let m = effective_metrics(&run.report);
        assert_eq!(m.iter().filter(|(k, _)| k == "nks:p95_s").count(), 1);
        // Already-present keys are not duplicated.
        let mut r2 = run.report.clone();
        let tails = r2.tail_metrics();
        for (k, v) in tails {
            r2.push_metric(k, v);
        }
        let m2 = effective_metrics(&r2);
        assert_eq!(m2.iter().filter(|(k, _)| k == "nks:p95_s").count(), 1);
    }

    #[test]
    fn load_autodiscovers_sibling_events() {
        let dir = std::env::temp_dir();
        let rp = dir.join("fun3d_report_cli_test.json");
        let rp = rp.to_str().unwrap().to_string();
        let run = sample_run(1.0);
        run.report.write_json(&rp).unwrap();
        run.events.write_jsonl(&sibling_events_path(&rp)).unwrap();
        let loaded = LoadedRun::load(&rp, None).unwrap();
        assert_eq!(loaded.events, run.events);
        std::fs::remove_file(&rp).ok();
        std::fs::remove_file(sibling_events_path(&rp)).ok();
        // Without the sibling the stream is empty, not an error.
        let rp2 = dir.join("fun3d_report_cli_test2.json");
        let rp2 = rp2.to_str().unwrap().to_string();
        run.report.write_json(&rp2).unwrap();
        let loaded = LoadedRun::load(&rp2, None).unwrap();
        assert!(loaded.events.is_empty());
        std::fs::remove_file(&rp2).ok();
    }
}
