//! Run inspection behind the `fun3d-report` binary: render one
//! `fun3d-perf/1` report (plus its `fun3d-events/1` stream) as human-readable
//! tables, or diff two reports with the same noise-aware verdicts the gate
//! uses.
//!
//! `show` answers "what did this run do": a Figure 5-style convergence table
//! from the event stream, a Table 3-style phase breakdown from the span
//! tree (with p50/p95/p99 tail latencies and modeled cache/TLB counters),
//! scatter traffic, and checkpoints.  `diff` answers "what changed": every
//! metric of run B judged against run A as a single-sample baseline.
//! `live` answers "how did it behave over time": the `fun3d-metrics/1`
//! sidecar rendered as terminal sparkline tables with SLO burn and health
//! transitions, and a noise-aware per-series A/B diff.

use crate::baseline::{ExperimentBaseline, MetricBaseline};
use crate::compare::{compare_experiment, higher_is_better, Tolerance, Verdict};
use crate::stats::{summarize, Summary};
use fun3d_telemetry::blackbox::{BlackboxDump, FlightRecord};
use fun3d_telemetry::events::{convergence_table, EventRecord, EventStream};
use fun3d_telemetry::metrics::SeriesSet;
use fun3d_telemetry::report::PerfReport;

/// A report plus the event stream and live-metrics time series that rode
/// along with it.
#[derive(Debug, Clone)]
pub struct LoadedRun {
    /// Path the report was loaded from (for headings).
    pub path: String,
    /// The parsed report.
    pub report: PerfReport,
    /// The run's event stream; empty when none was found.
    pub events: EventStream,
    /// The run's `fun3d-metrics/1` time series; empty when none was found.
    pub metrics: SeriesSet,
}

/// The sibling event-stream path the gate writes next to a report:
/// `runs/table1.json` -> `runs/table1.events.jsonl`.
pub fn sibling_events_path(report_path: &str) -> String {
    let stem = report_path.strip_suffix(".json").unwrap_or(report_path);
    format!("{stem}.events.jsonl")
}

/// The sibling metrics path the serve bin and the gate write next to a
/// report: `runs/serve.json` -> `runs/serve.metrics.jsonl`.
pub fn sibling_metrics_path(report_path: &str) -> String {
    let stem = report_path.strip_suffix(".json").unwrap_or(report_path);
    format!("{stem}.metrics.jsonl")
}

impl LoadedRun {
    /// Load a report plus its event stream and metrics sidecar.
    /// `events_path = None` autodiscovers the sibling `<stem>.events.jsonl`;
    /// a missing sibling is fine (empty stream), but an explicitly named
    /// file must parse.  The metrics sidecar `<stem>.metrics.jsonl` is
    /// always autodiscovered the same way.
    pub fn load(report_path: &str, events_path: Option<&str>) -> std::io::Result<Self> {
        let report = PerfReport::read_json(report_path)?;
        let events = match events_path {
            Some(p) => EventStream::read_jsonl(p)?,
            None => {
                let sibling = sibling_events_path(report_path);
                if std::path::Path::new(&sibling).exists() {
                    EventStream::read_jsonl(&sibling)?
                } else {
                    EventStream::default()
                }
            }
        };
        let metrics_sibling = sibling_metrics_path(report_path);
        let metrics = if std::path::Path::new(&metrics_sibling).exists() {
            SeriesSet::read_jsonl(&metrics_sibling)?
        } else {
            SeriesSet::default()
        };
        Ok(Self {
            path: report_path.to_string(),
            report,
            events,
            metrics,
        })
    }
}

/// Scalar metrics plus the derived span tail metrics, deduplicated — the
/// metric set `diff` judges.  Raw `--json` reports from the bench bins have
/// not been through the harness, so their `{path}:p95_s` entries exist only
/// in span histograms; fold them in here so both flavors diff identically.
pub fn effective_metrics(report: &PerfReport) -> Vec<(String, f64)> {
    let mut out = report.metrics.clone();
    let derived = report
        .tail_metrics()
        .into_iter()
        .chain(report.region_metrics())
        .chain(report.bandwidth_metrics());
    for (key, v) in derived {
        if !out.iter().any(|(k, _)| *k == key) {
            out.push((key, v));
        }
    }
    out
}

fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_opt_s(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.2e}"))
}

fn render_table(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |out: &mut String, cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        out.push_str(&format!("| {} |\n", padded.join(" | ")));
    };
    line(
        out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    out.push_str(&format!(
        "|{}|\n",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    for row in rows {
        line(out, row);
    }
}

/// Render one run as the full inspection view.
pub fn render_show(run: &LoadedRun) -> String {
    let r = &run.report;
    let mut out = String::new();
    out.push_str(&format!("# fun3d-report: {} ({})\n", r.name, run.path));
    if !r.meta.is_empty() {
        let pairs: Vec<String> = r.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!("meta: {}\n", pairs.join(", ")));
    }
    // Label multi-rank runs the way threaded runs are labelled (nranks and
    // partition family arrived with the rank-trace schema; older reports
    // simply lack the keys).
    if let Some(n) = r.meta("nranks") {
        out.push_str(&format!(
            "ranks: {n} (partition: {})\n",
            r.meta("partition").unwrap_or("unknown")
        ));
    }

    if !r.metrics.is_empty() {
        out.push_str("\n## Metrics\n\n");
        let rows: Vec<Vec<String>> = r
            .metrics
            .iter()
            .map(|(k, v)| vec![k.clone(), fmt_sig(*v)])
            .collect();
        render_table(&mut out, &["metric", "value"], &rows);
    }

    if !r.spans.is_empty() {
        // The paper's Table 3 reports per-phase percentages of execution
        // time; the denominator here is the top-level spans (children nest
        // inside them, so summing every row would double-count).
        let total: f64 = r
            .spans
            .iter()
            .filter(|s| !s.path.contains('/'))
            .map(|s| s.total_s)
            .sum();
        out.push_str("\n## Phase breakdown (Table 3)\n\n");
        let rows: Vec<Vec<String>> = r
            .spans
            .iter()
            .map(|s| {
                let counters: Vec<String> = s
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={}", fmt_sig(*v)))
                    .collect();
                vec![
                    s.path.clone(),
                    s.domain.tag().to_string(),
                    s.calls.to_string(),
                    format!("{:.4e}", s.total_s),
                    if total > 0.0 && !s.path.contains('/') {
                        format!("{:.1}", 100.0 * s.total_s / total)
                    } else {
                        "-".to_string()
                    },
                    fmt_opt_s(s.p50()),
                    fmt_opt_s(s.p95()),
                    fmt_opt_s(s.p99()),
                    counters.join(" "),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &[
                "span", "domain", "calls", "total_s", "%", "p50_s", "p95_s", "p99_s", "counters",
            ],
            &rows,
        );
    }

    // Thread-profile summary: one line per parallel region when the run
    // recorded them (`--profile`).  Pre-profile reports simply have no
    // `par/` spans, so this section is a graceful no-op for them.
    let regions = region_spans(r);
    if !regions.is_empty() {
        let nthr = r.meta("nthreads").unwrap_or("?");
        out.push_str(&format!("\n## Parallel regions ({nthr} threads)\n\n"));
        for s in &regions {
            let label = s.path.strip_prefix("par/").unwrap_or(&s.path);
            out.push_str(&format!(
                "{label}: {} thread(s) x {} calls, imbalance {:.2}, busy max/mean {:.3e}/{:.3e} s, join wait {:.3e} s\n",
                s.counter("nthreads").map_or(0, |v| v as u64),
                s.calls,
                s.counter("imbalance").unwrap_or(1.0),
                s.counter("busy_max_s").unwrap_or(0.0),
                s.counter("busy_mean_s").unwrap_or(0.0),
                s.counter("join_wait_s").unwrap_or(0.0),
            ));
        }
    }

    if !run.events.newton_steps().is_empty() {
        out.push('\n');
        out.push_str(&convergence_table(&run.events));
    }

    let (mut n_scatter, mut bytes, mut t_scatter) = (0u64, 0u64, 0.0f64);
    let mut checkpoints = Vec::new();
    for ev in &run.events.records {
        match ev {
            EventRecord::Scatter { bytes: b, t, .. } => {
                n_scatter += 1;
                bytes += b;
                t_scatter += t;
            }
            EventRecord::Checkpoint { step, path } => {
                checkpoints.push(format!("  step {step}: {path}"));
            }
            _ => {}
        }
    }
    if n_scatter > 0 {
        out.push_str(&format!(
            "\n## Ghost scatters\n\n{n_scatter} scatters, {bytes} bytes total, {:.3e} s total\n",
            t_scatter
        ));
    }
    if !checkpoints.is_empty() {
        out.push_str("\n## Checkpoints\n\n");
        out.push_str(&checkpoints.join("\n"));
        out.push('\n');
    }
    out
}

/// The parallel-region spans of a report (`par/{label}` paths carrying an
/// `imbalance` counter), in span order.
fn region_spans(r: &PerfReport) -> Vec<&fun3d_telemetry::SpanRow> {
    r.spans
        .iter()
        .filter(|s| s.path.starts_with("par/") && s.counter("imbalance").is_some())
        .collect()
}

/// Spans carrying an analytic `bytes` traffic counter and nonzero time —
/// the rows of the achieved-bandwidth (roofline) table.
fn bandwidth_spans(r: &PerfReport) -> Vec<&fun3d_telemetry::SpanRow> {
    r.spans
        .iter()
        .filter(|s| s.counter("bytes").is_some() && s.total_s > 0.0)
        .collect()
}

/// Spans recording a repeated-block-structure analysis (a `hit_rate`
/// counter alongside `templates`/`batches`): the micro-kernel batching
/// telemetry the `blockspec` experiment and the BCSR assembly path emit.
fn structure_spans(r: &PerfReport) -> Vec<&fun3d_telemetry::SpanRow> {
    r.spans
        .iter()
        .filter(|s| s.counter("hit_rate").is_some() && s.counter("templates").is_some())
        .collect()
}

/// Region label for A/B matching: the `par/` prefix and the `@n{k}`
/// team-size disambiguator both stripped.
fn region_label(path: &str) -> &str {
    let stem = path.strip_prefix("par/").unwrap_or(path);
    stem.split("@n").next().unwrap_or(stem)
}

/// Render the profiling view of one run: a Table 3-style load-imbalance
/// breakdown per parallel region (max/mean per-thread busy time, imbalance
/// factor, join-wait) and a Table 2-style roofline table per byte-counted
/// span (achieved GB/s, % of the run's measured STREAM triad).  With a
/// second run, appends an A/B comparison per region — the intended use is
/// diffing two `--threads` settings of the same experiment.
pub fn render_profile(run: &LoadedRun, other: Option<&LoadedRun>) -> String {
    let r = &run.report;
    let mut out = String::new();
    out.push_str(&format!(
        "# fun3d-report profile: {} ({})\n",
        r.name, run.path
    ));

    let regions = region_spans(r);
    let bw = bandwidth_spans(r);
    let structure = structure_spans(r);
    if regions.is_empty() && bw.is_empty() && structure.is_empty() {
        out.push_str(
            "\nno profile data in this report: rerun with --profile (or FUN3D_PROFILE=1)\n\
             to record per-thread region timings and byte-traffic counters.\n",
        );
        return out;
    }

    if !regions.is_empty() {
        out.push_str("\n## Parallel regions: load imbalance (Table 3)\n\n");
        let rows: Vec<Vec<String>> = regions
            .iter()
            .map(|s| {
                let busy: Vec<String> = s
                    .counters
                    .iter()
                    .filter(|(k, _)| k.starts_with("busy_t"))
                    .map(|(k, v)| format!("{}={:.2e}", k.trim_end_matches("_s"), v))
                    .collect();
                vec![
                    region_label(&s.path).to_string(),
                    s.counter("nthreads").map_or(0, |v| v as u64).to_string(),
                    s.calls.to_string(),
                    format!("{:.3e}", s.total_s),
                    format!("{:.3e}", s.counter("busy_max_s").unwrap_or(0.0)),
                    format!("{:.3e}", s.counter("busy_mean_s").unwrap_or(0.0)),
                    format!("{:.2}", s.counter("imbalance").unwrap_or(1.0)),
                    format!("{:.3e}", s.counter("join_wait_s").unwrap_or(0.0)),
                    busy.join(" "),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &[
                "region",
                "nthr",
                "calls",
                "wall_s",
                "busy max_s",
                "busy mean_s",
                "imbal",
                "join wait_s",
                "per-thread busy",
            ],
            &rows,
        );
    }

    if !bw.is_empty() {
        out.push_str("\n## Achieved bandwidth (Table 2)\n\n");
        let stream = r.metric("stream_triad_bytes_per_s");
        let rows: Vec<Vec<String>> = bw
            .iter()
            .map(|s| {
                let gbps = s.counter("bytes").unwrap_or(0.0) / s.total_s / 1e9;
                vec![
                    s.path.clone(),
                    s.calls.to_string(),
                    format!("{:.3e}", s.total_s),
                    format!("{:.3e}", s.counter("bytes").unwrap_or(0.0)),
                    format!("{gbps:.2}"),
                    stream.map_or("-".to_string(), |t| {
                        format!("{:.0}%", 100.0 * gbps * 1e9 / t)
                    }),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &["span", "calls", "total_s", "bytes", "GB/s", "% of STREAM"],
            &rows,
        );
        match stream {
            Some(t) => out.push_str(&format!(
                "\nSTREAM triad measured alongside this run: {:.2} GB/s (the roofline).\n",
                t / 1e9
            )),
            None => out.push_str(
                "\nno stream_triad_bytes_per_s metric in this report; % of STREAM omitted.\n",
            ),
        }
    }

    if !structure.is_empty() {
        out.push_str("\n## Repeated block structure (micro-kernel batching)\n\n");
        let rows: Vec<Vec<String>> = structure
            .iter()
            .map(|s| {
                vec![
                    s.path.clone(),
                    format!("{:.0}", s.counter("templates").unwrap_or(0.0)),
                    format!("{:.0}", s.counter("batches").unwrap_or(0.0)),
                    format!("{:.1}%", 100.0 * s.counter("hit_rate").unwrap_or(0.0)),
                    format!("{:.1}", s.counter("mean_batch_len").unwrap_or(0.0)),
                    format!("{:.0}", s.counter("max_batch_len").unwrap_or(0.0)),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &[
                "structure",
                "templates",
                "batches",
                "template hit rate",
                "mean batch",
                "max batch",
            ],
            &rows,
        );
        out.push_str(
            "\nhit rate = fraction of block rows sharing a structure template with at\n\
             least one other row; those rows stream through the batched kernel without\n\
             per-row index loads.\n",
        );
    }

    if let Some(o) = other {
        let ro = &o.report;
        out.push_str(&format!("\n## Region A/B: {} vs {}\n\n", run.path, o.path));
        let others = region_spans(ro);
        let rows: Vec<Vec<String>> = regions
            .iter()
            .filter_map(|sa| {
                let sb = others
                    .iter()
                    .find(|s| region_label(&s.path) == region_label(&sa.path))?;
                let (ca, cb) = (sa.calls.max(1) as f64, sb.calls.max(1) as f64);
                let (wa, wb) = (sa.total_s / ca, sb.total_s / cb);
                Some(vec![
                    region_label(&sa.path).to_string(),
                    sa.counter("nthreads").map_or(0, |v| v as u64).to_string(),
                    sb.counter("nthreads").map_or(0, |v| v as u64).to_string(),
                    format!("{wa:.3e}"),
                    format!("{wb:.3e}"),
                    if wb > 0.0 {
                        format!("{:.2}x", wa / wb)
                    } else {
                        "-".to_string()
                    },
                    format!("{:.2}", sa.counter("imbalance").unwrap_or(1.0)),
                    format!("{:.2}", sb.counter("imbalance").unwrap_or(1.0)),
                ])
            })
            .collect();
        if rows.is_empty() {
            out.push_str("no region labels in common between the two runs.\n");
        } else {
            render_table(
                &mut out,
                &[
                    "region",
                    "A nthr",
                    "B nthr",
                    "A wall/call_s",
                    "B wall/call_s",
                    "A/B speedup",
                    "A imbal",
                    "B imbal",
                ],
                &rows,
            );
        }
    }
    out
}

/// One rank's aggregated phase times, parsed from the `rank{N}/{phase}`
/// simulated-time spans the rank tracer records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct RankPhases {
    compute: f64,
    scatter: f64,
    reduction: f64,
    wait: f64,
    bytes_sent: f64,
    msgs_sent: f64,
}

impl RankPhases {
    fn exchange(&self) -> f64 {
        self.scatter + self.reduction
    }
    fn total(&self) -> f64 {
        self.compute + self.scatter + self.reduction + self.wait
    }
    fn wait_frac(&self) -> f64 {
        self.wait / self.total().max(f64::MIN_POSITIVE)
    }
}

/// Per-rank phase rows of a report, indexed by rank id (empty when the run
/// was not traced with `--trace-ranks`).
fn rank_phase_rows(r: &PerfReport) -> Vec<RankPhases> {
    let mut rows: Vec<RankPhases> = Vec::new();
    for s in &r.spans {
        let Some(rest) = s.path.strip_prefix("rank") else {
            continue;
        };
        let Some((num, phase)) = rest.split_once('/') else {
            continue;
        };
        let Ok(rank) = num.parse::<usize>() else {
            continue;
        };
        if rank >= rows.len() {
            rows.resize(rank + 1, RankPhases::default());
        }
        let row = &mut rows[rank];
        match phase {
            "compute" => row.compute += s.total_s,
            "scatter" => {
                row.scatter += s.total_s;
                row.bytes_sent += s.counter("bytes_sent").unwrap_or(0.0);
                row.msgs_sent += s.counter("msgs_sent").unwrap_or(0.0);
            }
            "reduction" => row.reduction += s.total_s,
            "wait" => row.wait += s.total_s,
            _ => {}
        }
    }
    rows
}

/// Point-to-point byte volume matrix `m[src][dst]` from the per-neighbor
/// `to{peer}_bytes` counters on each rank's scatter span.
fn neighbor_bytes(r: &PerfReport, nranks: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; nranks]; nranks];
    for s in &r.spans {
        let Some(rest) = s.path.strip_prefix("rank") else {
            continue;
        };
        let Some((num, "scatter")) = rest.split_once('/') else {
            continue;
        };
        let Ok(rank) = num.parse::<usize>() else {
            continue;
        };
        if rank >= nranks {
            continue;
        }
        for (k, v) in &s.counters {
            let peer = k
                .strip_prefix("to")
                .and_then(|k| k.strip_suffix("_bytes"))
                .and_then(|p| p.parse::<usize>().ok());
            if let Some(peer) = peer {
                if peer < nranks {
                    m[rank][peer] += *v;
                }
            }
        }
    }
    m
}

/// Render the communication view of one run: per-rank compute / exchange /
/// wait table with the laggard rank flagged, the neighbor byte-volume
/// matrix, the critical-path breakdown, and the η decomposition — the
/// paper's Table 3 story told from a single traced run.  With a second run,
/// appends a per-rank wait-fraction A/B comparison.
pub fn render_comm(run: &LoadedRun, other: Option<&LoadedRun>) -> String {
    let r = &run.report;
    let mut out = String::new();
    out.push_str(&format!("# fun3d-report comm: {} ({})\n", r.name, run.path));
    if let Some(n) = r.meta("nranks") {
        out.push_str(&format!(
            "ranks: {n} (partition: {})\n",
            r.meta("partition").unwrap_or("unknown")
        ));
    }

    let rows = rank_phase_rows(r);
    if rows.is_empty() {
        out.push_str(
            "\nno per-rank trace in this report: rerun with --trace-ranks (or\n\
             FUN3D_TRACE_RANKS=1) to record rank timelines and message ledgers.\n",
        );
        return out;
    }
    let nranks = rows.len();

    // The laggard is the rank with the most compute time: everyone else
    // waits for it at the next synchronization point.
    let laggard = rows
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.compute.partial_cmp(&b.1.compute).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    out.push_str("\n## Per-rank phases (simulated time)\n\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                i.to_string(),
                format!("{:.4e}", p.compute),
                format!("{:.4e}", p.exchange()),
                format!("{:.4e}", p.wait),
                format!("{:.4e}", p.total()),
                format!("{:.1}", 100.0 * p.wait_frac()),
                format!("{:.3e}", p.bytes_sent),
                if i == laggard { "<- laggard" } else { "" }.to_string(),
            ]
        })
        .collect();
    render_table(
        &mut out,
        &[
            "rank",
            "compute_s",
            "exchange_s",
            "wait_s",
            "total_s",
            "wait %",
            "bytes sent",
            "",
        ],
        &table,
    );
    if let Some(wall) = r.metric("time_s") {
        let busiest = rows.iter().map(RankPhases::total).fold(0.0f64, f64::max);
        out.push_str(&format!(
            "\nwall (sim): {wall:.4e} s; busiest rank accounts for {busiest:.4e} s ({:.1}%)\n",
            100.0 * busiest / wall.max(f64::MIN_POSITIVE)
        ));
    }

    let m = neighbor_bytes(r, nranks);
    if m.iter().flatten().any(|&v| v > 0.0) {
        out.push_str("\n## Neighbor volume (bytes, src rank -> dst rank)\n\n");
        let mut headers: Vec<String> = vec!["src\\dst".into()];
        headers.extend((0..nranks).map(|i| i.to_string()));
        let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
        let table: Vec<Vec<String>> = m
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut cells = vec![i.to_string()];
                cells.extend(row.iter().map(|&v| {
                    if v > 0.0 {
                        format!("{v:.2e}")
                    } else {
                        "-".to_string()
                    }
                }));
                cells
            })
            .collect();
        render_table(&mut out, &headers, &table);
    }

    if let (Some(total), Some(compute), Some(exchange), Some(wait)) = (
        r.metric("cp:total_s"),
        r.metric("cp:compute_s"),
        r.metric("cp:exchange_s"),
        r.metric("cp:wait_s"),
    ) {
        out.push_str("\n## Critical path\n\n");
        let pct = |v: f64| 100.0 * v / total.max(f64::MIN_POSITIVE);
        let table = vec![
            vec![
                "compute".to_string(),
                format!("{compute:.4e}"),
                format!("{:.1}", pct(compute)),
            ],
            vec![
                "exchange".to_string(),
                format!("{exchange:.4e}"),
                format!("{:.1}", pct(exchange)),
            ],
            vec![
                "wait".to_string(),
                format!("{wait:.4e}"),
                format!("{:.1}", pct(wait)),
            ],
            vec![
                "total".to_string(),
                format!("{total:.4e}"),
                "100.0".to_string(),
            ],
        ];
        render_table(&mut out, &["phase", "time_s", "%"], &table);
        if let Some(hops) = r.metric("cp:hops") {
            out.push_str(&format!("{hops:.0} hops along the path\n"));
        }
    }

    let etas: Vec<(&str, Option<f64>)> = vec![
        ("eta_overall", r.metric("eta_overall")),
        ("eta_alg", r.metric("eta_alg")),
        ("eta_impl", r.metric("eta_impl")),
        ("comm:bytes_per_iter", r.metric("comm:bytes_per_iter")),
        ("rank:scatter:wait_frac", r.metric("rank:scatter:wait_frac")),
        (
            "rank:reduction:wait_frac",
            r.metric("rank:reduction:wait_frac"),
        ),
    ];
    if etas.iter().any(|(_, v)| v.is_some()) {
        out.push_str("\n## Efficiency and gate metrics\n\n");
        let table: Vec<Vec<String>> = etas
            .iter()
            .filter_map(|(k, v)| v.map(|v| vec![k.to_string(), fmt_sig(v)]))
            .collect();
        render_table(&mut out, &["metric", "value"], &table);
    }

    if let Some(o) = other {
        let rows_b = rank_phase_rows(&o.report);
        out.push_str(&format!(
            "\n## Per-rank wait A/B: {} vs {}\n\n",
            run.path, o.path
        ));
        if rows_b.is_empty() {
            out.push_str("run B carries no per-rank trace.\n");
        } else {
            let table: Vec<Vec<String>> = rows
                .iter()
                .enumerate()
                .filter_map(|(i, pa)| {
                    let pb = rows_b.get(i)?;
                    Some(vec![
                        i.to_string(),
                        format!("{:.1}", 100.0 * pa.wait_frac()),
                        format!("{:.1}", 100.0 * pb.wait_frac()),
                        format!("{:+.1}", 100.0 * (pb.wait_frac() - pa.wait_frac())),
                    ])
                })
                .collect();
            render_table(&mut out, &["rank", "A wait %", "B wait %", "delta"], &table);
        }
    }
    out
}

/// One metric's row in a diff plus the count of regressions.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Rendered text.
    pub text: String,
    /// Metrics judged `Regressed` (run B worse than run A).
    pub regressions: usize,
}

/// Diff run `b` against run `a` (`a` is the baseline side).  Single runs
/// have no spread, so the verdicts come entirely from the tolerance's
/// relative band and absolute floor.
pub fn render_diff(a: &LoadedRun, b: &LoadedRun, tol: &Tolerance) -> DiffOutcome {
    let base = ExperimentBaseline {
        name: a.report.name.clone(),
        metrics: effective_metrics(&a.report)
            .into_iter()
            .map(|(k, v)| {
                (
                    k,
                    MetricBaseline {
                        median: v,
                        mad: 0.0,
                        n: 1,
                    },
                )
            })
            .collect(),
    };
    let current: Vec<(String, Summary)> = effective_metrics(&b.report)
        .into_iter()
        .map(|(k, v)| {
            (
                k,
                Summary {
                    n: 1,
                    median: v,
                    mad: 0.0,
                    min: v,
                    max: v,
                },
            )
        })
        .collect();
    let comparisons = compare_experiment(&current, Some(&base), tol);

    let mut out = String::new();
    out.push_str(&format!(
        "# fun3d-report diff: {} (A) vs {} (B)\n\n",
        a.path, b.path
    ));
    // Label threaded runs so a cross-thread-count diff is legible at a
    // glance (nthreads comes from the shared --threads/FUN3D_THREADS flag).
    if a.report.meta("nthreads").is_some() || b.report.meta("nthreads").is_some() {
        out.push_str(&format!(
            "threads: A={} B={}\n\n",
            a.report.meta("nthreads").unwrap_or("1"),
            b.report.meta("nthreads").unwrap_or("1"),
        ));
    }
    // Same treatment for rank counts, so a cross-rank-count diff is labelled.
    if a.report.meta("nranks").is_some() || b.report.meta("nranks").is_some() {
        out.push_str(&format!(
            "ranks: A={} B={} (partition: A={} B={})\n\n",
            a.report.meta("nranks").unwrap_or("1"),
            b.report.meta("nranks").unwrap_or("1"),
            a.report.meta("partition").unwrap_or("-"),
            b.report.meta("partition").unwrap_or("-"),
        ));
    }
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.key.clone(),
                c.baseline
                    .map_or("-".to_string(), |bl| format!("{:.4e}", bl.median)),
                format!("{:.4e}", c.current.median),
                format!("{:+.4e}", c.delta),
                c.verdict.label().to_string(),
            ]
        })
        .collect();
    render_table(&mut out, &["metric", "A", "B", "delta", "verdict"], &rows);

    // Span-level deltas for paths both runs profiled.
    let span_rows: Vec<Vec<String>> = b
        .report
        .spans
        .iter()
        .filter_map(|sb| {
            a.report.span(&sb.path).map(|sa| {
                vec![
                    sb.path.clone(),
                    format!("{:.4e}", sa.total_s),
                    format!("{:.4e}", sb.total_s),
                    format!("{:+.4e}", sb.total_s - sa.total_s),
                    fmt_opt_s(sa.p95()),
                    fmt_opt_s(sb.p95()),
                ]
            })
        })
        .collect();
    if !span_rows.is_empty() {
        out.push_str("\n## Span deltas\n\n");
        render_table(
            &mut out,
            &[
                "span",
                "A total_s",
                "B total_s",
                "delta",
                "A p95_s",
                "B p95_s",
            ],
            &span_rows,
        );
    }

    let regressions = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .count();
    let improved = comparisons
        .iter()
        .filter(|c| c.verdict == Verdict::Improved)
        .count();
    out.push_str(&format!(
        "\nregressions: {regressions}  improved: {improved}  metrics: {}\n",
        comparisons.len()
    ));
    DiffOutcome {
        text: out,
        regressions,
    }
}

/// Render the serving view of a `serve` run: the open-loop rate sweep
/// (offered vs achieved solves/s with the histogram tail latencies and
/// per-rate rejects), the detected saturation knee, and the cache /
/// admission summary.  Reports without `rate{i}:` metrics get the headline
/// line plus a note, so the command degrades gracefully on other runs.
pub fn render_serve(run: &LoadedRun) -> String {
    let r = &run.report;
    let mut out = String::new();
    out.push_str(&format!(
        "# fun3d-report serve: {} ({})\n",
        r.name, run.path
    ));
    out.push_str(&format!(
        "workers: {}  queue depth: {}  max batch: {}  vertices: {}\n",
        r.meta("workers").unwrap_or("?"),
        r.meta("queue_depth").unwrap_or("?"),
        r.meta("max_batch").unwrap_or("?"),
        r.meta("nverts").unwrap_or("?"),
    ));

    let mut rows = Vec::new();
    let mut i = 0;
    while let Some(achieved) = r.metric(&format!("rate{i}:solves_per_s")) {
        let offered = r
            .meta(&format!("rate{i}:offered_per_s"))
            .unwrap_or("-")
            .to_string();
        // A rate whose latency histogram stayed empty (every arrival shed
        // or rejected) has no quantile metrics; say "n/a" rather than
        // dropping or blanking the row so the sweep stays visibly complete.
        let q = |name: &str| {
            r.metric(&format!("rate{i}:{name}"))
                .map_or("n/a".to_string(), |x| format!("{x:.2e}"))
        };
        rows.push(vec![
            i.to_string(),
            offered,
            format!("{achieved:.2}"),
            q("p50_s"),
            q("p95_s"),
            q("p99_s"),
            r.metric(&format!("rate{i}:rejected"))
                .map_or("-".to_string(), |v| format!("{v:.0}")),
            r.metric(&format!("rate{i}:burn"))
                .map_or("-".to_string(), |v| format!("{v:.2}")),
            r.metric(&format!("rate{i}:health_state"))
                .map_or("-".to_string(), |v| health_label(v).to_string()),
        ]);
        i += 1;
    }
    if rows.is_empty() {
        out.push_str("\nno rate-sweep metrics found (not a `serve` report?)\n");
        return out;
    }
    out.push_str("\n## Open-loop rate sweep\n\n");
    render_table(
        &mut out,
        &[
            "rate",
            "offered/s",
            "achieved/s",
            "p50_s",
            "p95_s",
            "p99_s",
            "rejected",
            "burn",
            "health",
        ],
        &rows,
    );

    out.push_str("\n## Serving summary\n\n");
    let line = |out: &mut String, label: &str, key: &str, fmt: &dyn Fn(f64) -> String| {
        if let Some(v) = r.metric(key) {
            out.push_str(&format!("{label}: {}\n", fmt(v)));
        }
    };
    line(
        &mut out,
        "calibrated capacity",
        "serve:capacity_solves_per_s",
        &|v| format!("{v:.2} solves/s"),
    );
    line(
        &mut out,
        "peak throughput",
        "serve:peak_solves_per_s",
        &|v| format!("{v:.2} solves/s"),
    );
    line(
        &mut out,
        "saturation knee",
        "serve:knee_solves_per_s",
        &|v| format!("{v:.2} solves/s sustained"),
    );
    line(&mut out, "cache hit rate", "serve:hit_rate", &|v| {
        format!("{:.1}%", 100.0 * v)
    });
    line(
        &mut out,
        "rejected arrivals",
        "serve:rejected_total",
        &|v| format!("{v:.0}"),
    );
    line(
        &mut out,
        "direct-path identity",
        "serve:identity_match_ratio",
        &|v| {
            if v >= 1.0 {
                "all results bitwise identical".to_string()
            } else {
                format!("MISMATCH: only {:.1}% identical", 100.0 * v)
            }
        },
    );
    line(
        &mut out,
        "setup per solve",
        "serve:setup_per_solve_s",
        &|v| format!("{v:.3e} s (amortized)"),
    );
    line(&mut out, "cold family build", "serve:cold_build_s", &|v| {
        format!("{v:.3e} s")
    });
    line(
        &mut out,
        "queue-wait fraction",
        "serve:queue_wait_frac",
        &|v| format!("{:.1}% of end-to-end latency", 100.0 * v),
    );
    out
}

/// Health-state code (0/1/2, the serve engine's `HealthState::code`) to its
/// label.  Unknown codes read as saturated — fail loud, not quiet.
fn health_label(code: f64) -> &'static str {
    match code as i64 {
        0 => "ok",
        1 => "degraded",
        _ => "saturated",
    }
}

/// Downsample to at most `width` buckets (mean per bucket) and render as an
/// eight-level Unicode sparkline.  A flat series renders as a run of
/// low blocks rather than collapsing to the empty string, so "constant"
/// and "absent" stay visually distinct.
fn sparkline(values: &[f64], width: usize) -> String {
    const LEVELS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if values.is_empty() {
        return String::new();
    }
    let nbins = values.len().min(width.max(1));
    let mut bins = vec![(0.0f64, 0usize); nbins];
    for (i, v) in values.iter().enumerate() {
        let b = (i * nbins / values.len()).min(nbins - 1);
        bins[b].0 += v;
        bins[b].1 += 1;
    }
    let means: Vec<f64> = bins
        .iter()
        .map(|(sum, n)| sum / (*n).max(1) as f64)
        .collect();
    let (lo, hi) = means
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    means
        .iter()
        .map(|&v| {
            if hi > lo {
                let idx = (((v - lo) / (hi - lo)) * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            } else {
                LEVELS[0]
            }
        })
        .collect()
}

/// Robust per-series summaries of a metrics set, in series order — the
/// shape `compare_experiment` consumes, so the live A/B diff reuses the
/// gate's noise-aware verdicts and polarity heuristics verbatim.
fn series_summaries(set: &SeriesSet) -> Vec<(String, Summary)> {
    set.series()
        .iter()
        .filter_map(|s| summarize(&s.values()).map(|sum| (s.name().to_string(), sum)))
        .collect()
}

/// Render the live-telemetry view of a run: every `fun3d-metrics/1` time
/// series as a sparkline trend row with min/max/last, the health-state
/// timeline and SLO burn summary when the collector sampled them, and —
/// with a second run — a noise-aware per-series A/B diff (run B judged
/// against run A with the gate's polarity-aware verdicts).
pub fn render_live(run: &LoadedRun, other: Option<&LoadedRun>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# fun3d-report live: {} ({})\n",
        run.report.name, run.path
    ));
    if run.metrics.is_empty() {
        out.push_str(
            "\nno live metrics beside this report: rerun with --metrics (or\n\
             FUN3D_METRICS=1) so the collector writes the <stem>.metrics.jsonl\n\
             time series this view renders.\n",
        );
        return out;
    }
    if let (Some(t), Some(b)) = (
        run.report.meta("slo_target_s"),
        run.report.meta("slo_budget_frac"),
    ) {
        out.push_str(&format!(
            "SLO: latency objective {t} s, error budget {b} of requests\n"
        ));
    }

    out.push_str("\n## Time series\n\n");
    let rows: Vec<Vec<String>> = run
        .metrics
        .series()
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let vals = s.values();
            let (lo, hi) = vals
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                    (l.min(v), h.max(v))
                });
            vec![
                s.name().to_string(),
                sparkline(&vals, 40),
                fmt_sig(lo),
                fmt_sig(hi),
                fmt_sig(*vals.last().unwrap()),
                s.len().to_string(),
            ]
        })
        .collect();
    render_table(
        &mut out,
        &["series", "trend", "min", "max", "last", "n"],
        &rows,
    );

    if let Some(hs) = run.metrics.get("health_state") {
        out.push_str("\n## Health timeline\n\n");
        let mut prev: Option<f64> = None;
        for (t, v) in hs.points() {
            if prev != Some(v) {
                out.push_str(&format!("  {t:.3}s: {}\n", health_label(v)));
                prev = Some(v);
            }
        }
        if let Some(burn) = run.metrics.get("slo_burn") {
            let vals = burn.values();
            let peak = vals.iter().fold(0.0f64, |m, &v| m.max(v));
            let over = vals.iter().filter(|&&v| v > 1.0).count();
            out.push_str(&format!(
                "\npeak burn {peak:.2}x budget; {over} of {} samples above 1.0\n",
                vals.len()
            ));
        }
    }

    if let Some(o) = other {
        out.push_str(&format!("\n## Series A/B: {} vs {}\n\n", run.path, o.path));
        if o.metrics.is_empty() {
            out.push_str("run B carries no live metrics.\n");
            return out;
        }
        let base = ExperimentBaseline {
            name: run.report.name.clone(),
            metrics: series_summaries(&run.metrics)
                .into_iter()
                .map(|(k, s)| {
                    (
                        k,
                        MetricBaseline {
                            median: s.median,
                            mad: s.mad,
                            n: s.n,
                        },
                    )
                })
                .collect(),
        };
        let current = series_summaries(&o.metrics);
        let comparisons = compare_experiment(&current, Some(&base), &Tolerance::default());
        let rows: Vec<Vec<String>> = comparisons
            .iter()
            .map(|c| {
                vec![
                    c.key.clone(),
                    c.baseline
                        .map_or("-".to_string(), |bl| format!("{:.4e}", bl.median)),
                    format!("{:.4e}", c.current.median),
                    format!("{:+.4e}", c.delta),
                    c.verdict.label().to_string(),
                ]
            })
            .collect();
        render_table(
            &mut out,
            &["series", "A median", "B median", "delta", "verdict"],
            &rows,
        );
    }
    out
}

/// One ranked bottleneck hypothesis produced by [`render_explain`]: a cause
/// tag, a confidence score in [0, 1], and the evidence lines behind it.
#[derive(Debug, Clone)]
struct Hypothesis {
    cause: &'static str,
    confidence: f64,
    evidence: Vec<String>,
}

/// Anomaly-terminated: the solver's health monitor tripped (anomaly events
/// in the stream, an `anomaly:count` metric, or a flight-recorder dump
/// taken for a non-manual reason).  A run that died is diagnosed as such
/// before any performance cause is entertained.
fn anomaly_hypothesis(run: &LoadedRun, blackbox: Option<&BlackboxDump>) -> Option<Hypothesis> {
    // Repeated anomalies (one per table row, say) collapse to one line
    // with a count — the diagnosis is the kind, not the repetition.
    let mut evidence: Vec<String> = Vec::new();
    let mut counts: Vec<(String, usize)> = Vec::new();
    for e in &run.events.records {
        if let EventRecord::Anomaly {
            kind,
            step,
            residual_norm,
            detail,
        } = e
        {
            let line = format!(
                "solver anomaly `{kind}` at step {step} (residual {residual_norm:.3e}): {detail}"
            );
            match counts.iter_mut().find(|(l, _)| *l == line) {
                Some((_, n)) => *n += 1,
                None => counts.push((line, 1)),
            }
        }
    }
    for (line, n) in counts {
        if n > 1 {
            evidence.push(format!("{line} (x{n})"));
        } else {
            evidence.push(line);
        }
    }
    if let Some(n) = run.report.metric("anomaly:count") {
        if n > 0.0 {
            evidence.push(format!("anomaly:count = {n:.0} in the perf report"));
        }
    }
    if let Some(bb) = blackbox {
        if bb.reason != "manual" {
            evidence.push(format!(
                "flight-recorder dump taken (reason `{}`)",
                bb.reason
            ));
        }
    }
    (!evidence.is_empty()).then_some(Hypothesis {
        cause: "anomaly-terminated",
        confidence: 0.97,
        evidence,
    })
}

/// Bandwidth-bound: byte-counted spans achieving a large fraction of the
/// measured STREAM triad, weighted by the share of runtime they cover.  The
/// memmodel delta is the span's measured time against the time its modeled
/// traffic would take at the full STREAM rate.
fn bandwidth_hypothesis(run: &LoadedRun) -> Option<Hypothesis> {
    let r = &run.report;
    let bw = bandwidth_spans(r);
    if bw.is_empty() {
        return None;
    }
    let stream = r.metric("stream_triad_bytes_per_s").filter(|t| *t > 0.0);
    let roots: f64 = r
        .spans
        .iter()
        .filter(|s| !s.path.contains('/'))
        .map(|s| s.total_s)
        .sum();
    let bw_time: f64 = bw.iter().map(|s| s.total_s).sum();
    let share = if roots > 0.0 {
        (bw_time / roots).min(1.0)
    } else {
        1.0
    };
    let mut evidence = Vec::new();
    let mut best_pct: f64 = 0.0;
    for s in &bw {
        let bytes = s.counter("bytes").unwrap_or(0.0);
        let gbps = bytes / s.total_s / 1e9;
        match stream {
            Some(t) => {
                let pct = gbps * 1e9 / t;
                best_pct = best_pct.max(pct);
                evidence.push(format!(
                    "{}: {:.2} GB/s = {:.0}% of STREAM triad ({:.2} GB/s roofline)",
                    s.path,
                    gbps,
                    100.0 * pct,
                    t / 1e9
                ));
                let predicted = bytes / t;
                evidence.push(format!(
                    "  memmodel: {predicted:.3e} s predicted from {bytes:.3e} modeled bytes \
                     at STREAM rate; measured {:.3e} s ({:.2}x model)",
                    s.total_s,
                    s.total_s / predicted.max(f64::MIN_POSITIVE)
                ));
            }
            None => evidence.push(format!(
                "{}: {gbps:.2} GB/s achieved (no stream_triad_bytes_per_s anchor in report)",
                s.path
            )),
        }
    }
    // Traffic-dominated runtime is bandwidth-bound almost by construction;
    // how close the kernels run to the roofline refines the score.  Capped
    // below the anomaly score: a dead run outranks a fast one.
    let pct_term = stream.map_or(0.5, |_| best_pct.min(1.0));
    Some(Hypothesis {
        cause: "bandwidth-bound",
        confidence: (share * (0.5 + 0.5 * pct_term)).min(0.95),
        evidence,
    })
}

/// Imbalance-bound: parallel regions whose slowest thread holds the rest
/// hostage.  `1 - 1/imbalance` is the fraction of the region's wall time
/// that perfect balance would recover.
fn imbalance_hypothesis(run: &LoadedRun) -> Option<Hypothesis> {
    let regions = region_spans(&run.report);
    if regions.is_empty() {
        return None;
    }
    let mut worst: f64 = 1.0;
    let mut evidence = Vec::new();
    for s in &regions {
        let imbal = s.counter("imbalance").unwrap_or(1.0);
        worst = worst.max(imbal);
        evidence.push(format!(
            "{}: imbalance {imbal:.2} (busy max {:.3e} s vs mean {:.3e} s), join wait {:.3e} s",
            region_label(&s.path),
            s.counter("busy_max_s").unwrap_or(0.0),
            s.counter("busy_mean_s").unwrap_or(0.0),
            s.counter("join_wait_s").unwrap_or(0.0)
        ));
    }
    Some(Hypothesis {
        cause: "imbalance-bound",
        confidence: (1.0 - 1.0 / worst.max(1.0)).clamp(0.0, 1.0),
        evidence,
    })
}

/// Comm-wait-bound: critical-path wait share, per-rank wait fractions, and
/// the queue-wait fraction of a serving run.
fn comm_wait_hypothesis(run: &LoadedRun) -> Option<Hypothesis> {
    let r = &run.report;
    let mut evidence = Vec::new();
    let mut frac: f64 = 0.0;
    if let (Some(total), Some(wait)) = (r.metric("cp:total_s"), r.metric("cp:wait_s")) {
        if total > 0.0 {
            frac = frac.max(wait / total);
            evidence.push(format!(
                "critical path: {wait:.3e} s of {total:.3e} s spent waiting ({:.1}%)",
                100.0 * wait / total
            ));
        }
    }
    let rows = rank_phase_rows(r);
    if let Some((i, p)) = rows
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.wait_frac().total_cmp(&b.1.wait_frac()))
    {
        frac = frac.max(p.wait_frac());
        evidence.push(format!(
            "rank {i}: {:.1}% of its time waiting ({:.3e} s of {:.3e} s)",
            100.0 * p.wait_frac(),
            p.wait,
            p.total()
        ));
    }
    for key in [
        "rank:scatter:wait_frac",
        "rank:reduction:wait_frac",
        "serve:queue_wait_frac",
    ] {
        if let Some(v) = r.metric(key) {
            frac = frac.max(v);
            evidence.push(format!("{key} = {v:.3}"));
        }
    }
    (!evidence.is_empty()).then_some(Hypothesis {
        cause: "comm-wait-bound",
        confidence: frac.clamp(0.0, 1.0),
        evidence,
    })
}

/// Latency-bound: a span histogram with a fat tail (p99 far above p50)
/// points at per-call jitter rather than a structural throughput limit.
/// Capped below the structural causes — a tail alone is weak evidence.
fn latency_hypothesis(run: &LoadedRun) -> Option<Hypothesis> {
    let mut worst: Option<(&str, f64, f64)> = None;
    for s in &run.report.spans {
        if let (Some(p50), Some(p99)) = (s.p50(), s.p99()) {
            if p50 > 0.0 && p99 > 0.0 {
                let fatter = match worst {
                    Some((_, w50, w99)) => p99 / p50 > w99 / w50,
                    None => true,
                };
                if fatter {
                    worst = Some((&s.path, p50, p99));
                }
            }
        }
    }
    let (path, p50, p99) = worst?;
    let ratio = p99 / p50;
    Some(Hypothesis {
        cause: "latency-bound",
        confidence: ((1.0 - 1.0 / ratio).clamp(0.0, 1.0)) * 0.45,
        evidence: vec![format!(
            "{path}: p99 {p99:.3e} s vs p50 {p50:.3e} s ({ratio:.1}x tail)"
        )],
    })
}

/// The cause family a regressed metric key points at, for A/B attribution.
fn metric_cause(key: &str) -> &'static str {
    if key.contains("gbps") || key.contains("bytes_per_s") || key.contains("bandwidth") {
        "bandwidth"
    } else if key.contains("imbalance") || key.contains("join_wait") {
        "imbalance"
    } else if key.contains("wait") || key.starts_with("cp:") {
        "comm-wait"
    } else if key.contains("p99") || key.contains("p95") {
        "latency tail"
    } else {
        "time"
    }
}

/// Attribute a regression between two runs to the phase and cause that
/// moved: judge run B against run A metric by metric (polarity-aware, the
/// gate's verdicts), group the regressed keys by their span-path phase, and
/// rank phases by their worst relative degradation.
fn render_attribution(a: &LoadedRun, b: &LoadedRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n## A/B attribution: {} (A) vs {} (B)\n\n",
        a.path, b.path
    ));
    let base = ExperimentBaseline {
        name: a.report.name.clone(),
        metrics: effective_metrics(&a.report)
            .into_iter()
            .map(|(k, v)| {
                (
                    k,
                    MetricBaseline {
                        median: v,
                        mad: 0.0,
                        n: 1,
                    },
                )
            })
            .collect(),
    };
    let current: Vec<(String, Summary)> = effective_metrics(&b.report)
        .into_iter()
        .map(|(k, v)| {
            (
                k,
                Summary {
                    n: 1,
                    median: v,
                    mad: 0.0,
                    min: v,
                    max: v,
                },
            )
        })
        .collect();
    let comparisons = compare_experiment(&current, Some(&base), &Tolerance::default());

    // Worst regressed mover per phase (the span path of `path:metric` keys;
    // bare keys are run-level).  Causes are ranked separately from movers:
    // a bandwidth drop is more diagnostic than the time/tail metrics it
    // inflates, even when those move further in relative terms.
    struct PhaseRow {
        phase: String,
        line: String,
        rel: f64,
        cause_rank: usize,
    }
    let cause_rank = |cause: &str| {
        [
            "bandwidth",
            "imbalance",
            "comm-wait",
            "latency tail",
            "time",
        ]
        .iter()
        .position(|c| *c == cause)
        .unwrap_or(usize::MAX)
    };
    let mut phases: Vec<PhaseRow> = Vec::new();
    for c in &comparisons {
        if c.verdict != Verdict::Regressed {
            continue;
        }
        let Some(bl) = c.baseline else { continue };
        let worse = if higher_is_better(&c.key) {
            -c.delta
        } else {
            c.delta
        };
        let rel = worse / bl.median.abs().max(f64::MIN_POSITIVE);
        let phase = match c.key.rsplit_once(':') {
            Some((p, _)) if !p.is_empty() => p.to_string(),
            _ => "run-level".to_string(),
        };
        let rank = cause_rank(metric_cause(&c.key));
        let line = format!(
            "`{}` {:.4e} -> {:.4e} ({:+.0}%, cause: {})",
            c.key,
            bl.median,
            c.current.median,
            100.0 * rel * if higher_is_better(&c.key) { -1.0 } else { 1.0 },
            metric_cause(&c.key)
        );
        match phases.iter_mut().find(|r| r.phase == phase) {
            Some(entry) => {
                if rel > entry.rel {
                    entry.line = line;
                    entry.rel = rel;
                }
                entry.cause_rank = entry.cause_rank.min(rank);
            }
            None => phases.push(PhaseRow {
                phase,
                line,
                rel,
                cause_rank: rank,
            }),
        }
    }
    if phases.is_empty() {
        out.push_str(
            "no metric regressed beyond tolerance: A and B are statistically the same run.\n",
        );
        return out;
    }
    // Span phases outrank the run-level bucket regardless of magnitude:
    // only a named phase can answer "where did the time go", so run-level
    // metrics are a fallback when nothing phase-scoped moved.
    phases.sort_by(|x, y| {
        (x.phase == "run-level")
            .cmp(&(y.phase == "run-level"))
            .then(y.rel.total_cmp(&x.rel))
    });
    for row in &phases {
        out.push_str(&format!(
            "regressed phase: {} — worst mover {}\n",
            row.phase, row.line
        ));
    }
    let top = &phases[0];
    let cause = [
        "bandwidth",
        "imbalance",
        "comm-wait",
        "latency tail",
        "time",
    ]
    .get(top.cause_rank)
    .copied()
    .unwrap_or("time");
    out.push_str(&format!(
        "\nregression attributed to phase `{}` (cause: {cause})\n",
        top.phase
    ));

    // Span-tree corroboration: the span whose total time grew the most.
    let mut grown: Option<(String, f64, f64)> = None;
    for sb in &b.report.spans {
        if let Some(sa) = a.report.span(&sb.path) {
            if sa.total_s > 0.0 {
                let rel = (sb.total_s - sa.total_s) / sa.total_s;
                if rel > 0.05 && grown.as_ref().is_none_or(|g| rel > g.2) {
                    grown = Some((sb.path.clone(), sa.total_s, rel));
                }
            }
        }
    }
    if let Some((path, was, rel)) = grown {
        out.push_str(&format!(
            "span `{path}` grew {was:.3e} s -> {:.3e} s ({:+.0}%)\n",
            was * (1.0 + rel),
            100.0 * rel
        ));
    }
    out
}

/// Render a parsed flight-recorder dump: the dump header plus each thread
/// ring's accounting and most recent records.
pub fn render_blackbox(bb: &BlackboxDump) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n## Flight recorder ({})\n\n",
        fun3d_telemetry::blackbox::SCHEMA
    ));
    out.push_str(&format!(
        "reason: {}; capacity {} records/thread; {} ring(s)\n",
        bb.reason,
        bb.capacity,
        bb.rings.len()
    ));
    const TAIL: usize = 12;
    for ring in &bb.rings {
        out.push_str(&format!(
            "\n{}: {} written, {} dropped, {} captured; most recent last:\n",
            ring.thread,
            ring.written,
            ring.dropped,
            ring.records.len()
        ));
        let skip = ring.records.len().saturating_sub(TAIL);
        if skip > 0 {
            out.push_str(&format!("  ... {skip} older record(s) elided ...\n"));
        }
        for rec in ring.records.iter().skip(skip) {
            let line = match rec {
                FlightRecord::Span { path, t_s, dur_s } => {
                    format!("[{t_s:9.4}s] span    {path} ({dur_s:.3e} s)")
                }
                FlightRecord::Counter { path, delta, t_s } => {
                    format!("[{t_s:9.4}s] counter {path} {delta:+.3e}")
                }
                FlightRecord::Event { tag, data, t_s } => {
                    format!("[{t_s:9.4}s] event   {tag} {data}")
                }
            };
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

/// Render the diagnosis view: join the run's perf report, profiler roofline
/// rows, rank-trace critical path, histogram tails, anomaly events, and
/// flight-recorder dump into a ranked list of bottleneck hypotheses with
/// evidence lines.  With a second run, append an A/B attribution naming the
/// phase and cause that moved.  With only a dump (`run = None`, the shape a
/// panicked run leaves behind), the diagnosis is anomaly-terminated and the
/// dump is rendered alone.
pub fn render_explain(
    run: Option<&LoadedRun>,
    other: Option<&LoadedRun>,
    blackbox: Option<&BlackboxDump>,
) -> String {
    let mut out = String::new();
    match run {
        Some(run) => {
            out.push_str(&format!(
                "# fun3d-report explain: {} ({})\n",
                run.report.name, run.path
            ));
            let mut hyps: Vec<Hypothesis> = Vec::new();
            hyps.extend(anomaly_hypothesis(run, blackbox));
            hyps.extend(bandwidth_hypothesis(run));
            hyps.extend(imbalance_hypothesis(run));
            hyps.extend(comm_wait_hypothesis(run));
            hyps.extend(latency_hypothesis(run));
            hyps.sort_by(|x, y| y.confidence.total_cmp(&x.confidence));
            if hyps.is_empty() {
                out.push_str(
                    "\nno diagnosis possible: the report carries no byte counters, region\n\
                     profiles, rank traces, histograms, or anomaly events.  Rerun with\n\
                     --profile, --trace-ranks, or --events to give `explain` evidence.\n",
                );
            } else {
                out.push_str("\n## Ranked bottleneck hypotheses\n\n");
                for (i, h) in hyps.iter().enumerate() {
                    out.push_str(&format!(
                        "{}. {} (confidence {:.2})\n",
                        i + 1,
                        h.cause,
                        h.confidence
                    ));
                    for e in &h.evidence {
                        out.push_str(&format!("   - {e}\n"));
                    }
                }
                out.push_str(&format!(
                    "\nexplain:confidence = {:.2} (top hypothesis `{}`; reported only, never gated)\n",
                    hyps[0].confidence, hyps[0].cause
                ));
            }
            if let Some(o) = other {
                out.push_str(&render_attribution(run, o));
            }
        }
        None => {
            out.push_str("# fun3d-report explain: flight-recorder dump only\n");
            if let Some(bb) = blackbox {
                out.push_str("\n## Ranked bottleneck hypotheses\n\n");
                out.push_str(&format!(
                    "1. anomaly-terminated (confidence 0.97)\n   - run died with a \
                     flight-recorder dump (reason `{}`) before writing a report\n",
                    bb.reason
                ));
                out.push_str(
                    "\nexplain:confidence = 0.97 (top hypothesis `anomaly-terminated`; \
                     reported only, never gated)\n",
                );
            }
        }
    }
    if let Some(bb) = blackbox {
        out.push_str(&render_blackbox(bb));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_telemetry::events::EventSink;
    use fun3d_telemetry::Registry;

    fn sample_run(time_s: f64) -> LoadedRun {
        let tel = Registry::enabled(0);
        for _ in 0..4 {
            let _g = tel.span("nks");
        }
        let mut report = PerfReport::new("unit")
            .with_meta("scale", "0.1")
            .with_snapshot(&tel.snapshot());
        report.push_metric("time_s", time_s);
        let sink = EventSink::enabled();
        sink.emit(EventRecord::RunMeta {
            name: "unit".into(),
            meta: vec![],
        });
        for step in 0..3u64 {
            sink.emit(EventRecord::NewtonStep {
                step,
                residual_norm: 1.0 / (step + 1) as f64,
                cfl: 5.0 * (step + 1) as f64,
                gmres_iters: 7,
                eta: 1e-2,
                t_residual: 0.1,
                t_jacobian: 0.2,
                t_precond: 0.05,
                t_krylov: 0.3,
            });
        }
        sink.emit(EventRecord::Scatter {
            bytes: 1024,
            neighbors: 3,
            t: 1e-5,
        });
        sink.emit(EventRecord::Checkpoint {
            step: 2,
            path: "ck.txt".into(),
        });
        LoadedRun {
            path: "unit.json".into(),
            report,
            events: EventStream::new(sink.drain()),
            metrics: Default::default(),
        }
    }

    #[test]
    fn show_renders_all_sections() {
        let run = sample_run(1.0);
        let text = render_show(&run);
        assert!(text.contains("# fun3d-report: unit"));
        assert!(text.contains("## Metrics"));
        assert!(text.contains("## Phase breakdown (Table 3)"));
        assert!(text.contains("Convergence (Figure 5)"));
        assert!(text.contains("## Ghost scatters"));
        assert!(text.contains("## Checkpoints"));
        assert!(text.contains("p95_s"));
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let run = sample_run(1.0);
        let d = render_diff(&run, &run, &Tolerance::default());
        assert_eq!(d.regressions, 0);
        assert!(d.text.contains("regressions: 0"));
        assert!(d.text.contains("## Span deltas"));
    }

    #[test]
    fn slower_run_regresses() {
        let a = sample_run(1.0);
        let b = sample_run(2.0);
        let d = render_diff(&a, &b, &Tolerance::default());
        assert!(d.regressions >= 1, "{}", d.text);
        assert!(d.text.contains("REGRESSED"));
    }

    #[test]
    fn effective_metrics_fold_in_span_tails_once() {
        let run = sample_run(1.0);
        let m = effective_metrics(&run.report);
        assert_eq!(m.iter().filter(|(k, _)| k == "nks:p95_s").count(), 1);
        // Already-present keys are not duplicated.
        let mut r2 = run.report.clone();
        let tails = r2.tail_metrics();
        for (k, v) in tails {
            r2.push_metric(k, v);
        }
        let m2 = effective_metrics(&r2);
        assert_eq!(m2.iter().filter(|(k, _)| k == "nks:p95_s").count(), 1);
    }

    /// A run the way a `--profile --threads N` bench run produces it:
    /// `par/{label}` region spans with derived counters, a byte-counted
    /// kernel span, and the STREAM anchor metric.
    fn profiled_run(nthreads: u64) -> LoadedRun {
        use fun3d_telemetry::TimeDomain;
        let tel = Registry::enabled(0);
        let m = TimeDomain::Measured;
        tel.record_span("par/spmv_csr", m, 0.5, 7);
        tel.counter_at("par/spmv_csr", m, "nthreads", nthreads as f64);
        tel.counter_at("par/spmv_csr", m, "busy_max_s", 0.45);
        tel.counter_at("par/spmv_csr", m, "busy_mean_s", 0.40);
        tel.counter_at("par/spmv_csr", m, "join_wait_s", 0.20);
        tel.counter_at("par/spmv_csr", m, "imbalance", 1.125);
        for t in 0..nthreads {
            tel.counter_at("par/spmv_csr", m, &format!("busy_t{t}_s"), 0.40);
        }
        tel.record_span("spmv/csr", m, 2.0, 10);
        tel.counter_at("spmv/csr", m, "bytes", 30e9);
        let mut report = PerfReport::new("spmv")
            .with_meta("nthreads", nthreads.to_string())
            .with_snapshot(&tel.snapshot());
        report.push_metric("stream_triad_bytes_per_s", 20e9);
        LoadedRun {
            path: format!("spmv_t{nthreads}.json"),
            report,
            events: EventStream::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn profile_renders_imbalance_and_roofline_tables() {
        let run = profiled_run(2);
        let text = render_profile(&run, None);
        assert!(text.contains("load imbalance (Table 3)"), "{text}");
        assert!(text.contains("Achieved bandwidth (Table 2)"), "{text}");
        assert!(text.contains("spmv_csr"), "{text}");
        assert!(text.contains("busy_t0"), "{text}");
        // 30e9 bytes over 2.0 s = 15 GB/s, 75% of the 20 GB/s triad.
        assert!(text.contains("15.00"), "{text}");
        assert!(text.contains("75%"), "{text}");
        assert!(text.contains("1.12"), "{text}");
    }

    #[test]
    fn profile_renders_structure_table_when_present() {
        use fun3d_telemetry::TimeDomain;
        let m = TimeDomain::Measured;
        let tel = Registry::enabled(0);
        tel.record_span("blockspec/structure_b5", m, 1e-6, 1);
        tel.counter_at("blockspec/structure_b5", m, "templates", 12.0);
        tel.counter_at("blockspec/structure_b5", m, "batches", 230.0);
        tel.counter_at("blockspec/structure_b5", m, "hit_rate", 0.987);
        tel.counter_at("blockspec/structure_b5", m, "mean_batch_len", 5.1);
        tel.counter_at("blockspec/structure_b5", m, "max_batch_len", 41.0);
        let run = LoadedRun {
            path: "blockspec.json".into(),
            report: PerfReport::new("blockspec").with_snapshot(&tel.snapshot()),
            events: EventStream::default(),
            metrics: Default::default(),
        };
        let text = render_profile(&run, None);
        assert!(text.contains("Repeated block structure"), "{text}");
        assert!(text.contains("template hit rate"), "{text}");
        assert!(text.contains("98.7%"), "{text}");
        assert!(text.contains("5.1"), "{text}");
        assert!(text.contains("41"), "{text}");
        // Without structure spans the section is absent.
        let plain = profiled_run(2);
        assert!(!render_profile(&plain, None).contains("Repeated block structure"));
    }

    #[test]
    fn profile_without_data_says_so() {
        let run = sample_run(1.0);
        let text = render_profile(&run, None);
        assert!(text.contains("no profile data"), "{text}");
        assert!(!text.contains("Table 2"), "{text}");
    }

    #[test]
    fn profile_ab_diff_pairs_regions_across_thread_counts() {
        let a = profiled_run(1);
        let b = profiled_run(4);
        let text = render_profile(&a, Some(&b));
        assert!(text.contains("Region A/B"), "{text}");
        assert!(text.contains("spmv_csr"), "{text}");
        // Same wall/call on both sides -> 1.00x speedup column.
        assert!(text.contains("1.00x"), "{text}");
        // No shared labels: the section degrades to a note, not a panic.
        let text = render_profile(&a, Some(&sample_run(1.0)));
        assert!(text.contains("no region labels in common"), "{text}");
    }

    #[test]
    fn show_prints_region_summary_only_when_present() {
        let run = profiled_run(2);
        let text = render_show(&run);
        assert!(text.contains("## Parallel regions (2 threads)"), "{text}");
        assert!(text.contains("imbalance 1.12"), "{text}");
        // Runs without profile data keep the pre-profile rendering.
        let plain = sample_run(1.0);
        assert!(!render_show(&plain).contains("Parallel regions"));
    }

    #[test]
    fn old_reports_without_profile_data_round_trip_and_render() {
        // A pre-profile report exactly as PR-4-era tooling wrote it: no
        // `par/` spans, no byte counters, no histograms.  It must still
        // parse, render without the profile sections, and round-trip.
        let legacy = r#"{"schema":"fun3d-perf/1","name":"spmv","meta":{"nthreads":"1"},"metrics":{"time_csr_s":0.002},"spans":[{"path":"spmv/csr","domain":"measured","calls":8,"total_s":0.016,"counters":{}}]}"#;
        let report = PerfReport::from_json_str(legacy).unwrap();
        assert_eq!(
            PerfReport::from_json_str(&report.to_json_string()).unwrap(),
            report
        );
        let run = LoadedRun {
            path: "legacy.json".into(),
            report,
            events: EventStream::default(),
            metrics: Default::default(),
        };
        let show = render_show(&run);
        assert!(!show.contains("Parallel regions"), "{show}");
        let profile = render_profile(&run, None);
        assert!(profile.contains("no profile data"), "{profile}");
    }

    fn traced_run(rank1_compute: f64) -> LoadedRun {
        use fun3d_telemetry::TimeDomain;
        let tel = Registry::enabled(0);
        let s = TimeDomain::Simulated;
        tel.record_span("rank0/compute", s, 1.0, 12);
        tel.record_span("rank0/scatter", s, 0.2, 24);
        tel.counter_at("rank0/scatter", s, "bytes_sent", 4096.0);
        tel.counter_at("rank0/scatter", s, "msgs_sent", 24.0);
        tel.counter_at("rank0/scatter", s, "to1_bytes", 4096.0);
        tel.record_span("rank0/reduction", s, 0.1, 12);
        tel.record_span("rank0/wait", s, 0.3, 36);
        tel.record_span("rank1/compute", s, rank1_compute, 12);
        tel.record_span("rank1/scatter", s, 0.2, 24);
        tel.counter_at("rank1/scatter", s, "bytes_sent", 2048.0);
        tel.counter_at("rank1/scatter", s, "msgs_sent", 24.0);
        tel.counter_at("rank1/scatter", s, "to0_bytes", 2048.0);
        tel.record_span("rank1/reduction", s, 0.1, 12);
        tel.record_span("rank1/wait", s, 0.05, 36);
        let mut report = PerfReport::new("ranks")
            .with_meta("nranks", "2")
            .with_meta("partition", "kway")
            .with_snapshot(&tel.snapshot());
        report.push_metric("time_s", 1.0 + rank1_compute.max(1.0));
        report.push_metric("cp:total_s", 1.9);
        report.push_metric("cp:compute_s", 1.5);
        report.push_metric("cp:exchange_s", 0.3);
        report.push_metric("cp:wait_s", 0.1);
        report.push_metric("cp:hops", 7.0);
        report.push_metric("eta_overall", 0.55);
        report.push_metric("eta_alg", 0.58);
        report.push_metric("eta_impl", 0.94);
        LoadedRun {
            path: "traced.json".into(),
            report,
            events: EventStream::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn comm_renders_per_rank_table_and_marks_laggard() {
        let run = traced_run(1.4);
        let out = render_comm(&run, None);
        assert!(out.contains("ranks: 2 (partition: kway)"), "{out}");
        assert!(out.contains("Per-rank phases"), "{out}");
        // rank 1 has the most compute time, so it is the laggard.
        let laggard_line = out
            .lines()
            .find(|l| l.contains("<- laggard"))
            .expect("laggard marked");
        let first_cell = laggard_line
            .split('|')
            .nth(1)
            .map(str::trim)
            .unwrap_or_default();
        assert_eq!(first_cell, "1", "{laggard_line}");
        assert!(out.contains("Neighbor volume"), "{out}");
        assert!(out.contains("Critical path"), "{out}");
        assert!(out.contains("eta_impl"), "{out}");
        assert!(out.contains("busiest rank accounts for"), "{out}");
    }

    #[test]
    fn comm_without_trace_suggests_trace_ranks_flag() {
        let run = sample_run(1.0);
        let out = render_comm(&run, None);
        assert!(out.contains("no per-rank trace"), "{out}");
        assert!(out.contains("--trace-ranks"), "{out}");
    }

    #[test]
    fn comm_ab_compares_wait_fractions_per_rank() {
        let a = traced_run(1.4);
        let b = traced_run(1.0);
        let out = render_comm(&a, Some(&b));
        assert!(out.contains("Per-rank wait A/B"), "{out}");
        assert!(out.contains("A wait %"), "{out}");
        // Both runs traced two ranks, so both rows pair up.
        let rows: Vec<&str> = out
            .lines()
            .skip_while(|l| !l.contains("A wait %"))
            .filter(|l| {
                let cell = l.split('|').nth(1).map(str::trim).unwrap_or_default();
                cell == "0" || cell == "1"
            })
            .collect();
        assert_eq!(rows.len(), 2, "{out}");
        // An untraced B degrades gracefully.
        let out = render_comm(&a, Some(&sample_run(1.0)));
        assert!(out.contains("run B carries no per-rank trace"), "{out}");
    }

    #[test]
    fn render_serve_tables_rates_and_summary() {
        let mut report = PerfReport::new("serve")
            .with_meta("workers", "2")
            .with_meta("queue_depth", "4")
            .with_meta("max_batch", "4")
            .with_meta("nverts", "120");
        for i in 0..2 {
            report.meta.push((
                format!("rate{i}:offered_per_s"),
                format!("{}.00", 10 * (i + 1)),
            ));
            report.push_metric(format!("rate{i}:solves_per_s"), 9.5 + i as f64);
            report.push_metric(format!("rate{i}:p50_s"), 0.01);
            report.push_metric(format!("rate{i}:p95_s"), 0.02);
            report.push_metric(format!("rate{i}:p99_s"), 0.03);
            report.push_metric(format!("rate{i}:rejected"), i as f64);
        }
        // A fully-shed rate: achieved throughput but an empty latency
        // histogram, so no quantile metrics exist for it at all.
        report
            .meta
            .push(("rate2:offered_per_s".into(), "30.00".into()));
        report.push_metric("rate2:solves_per_s", 0.0);
        report.push_metric("rate2:rejected", 30.0);
        report.push_metric("serve:capacity_solves_per_s", 12.0);
        report.push_metric("serve:peak_solves_per_s", 10.5);
        report.push_metric("serve:knee_solves_per_s", 10.5);
        report.push_metric("serve:hit_rate", 0.96);
        report.push_metric("serve:rejected_total", 1.0);
        report.push_metric("serve:identity_match_ratio", 1.0);
        let run = LoadedRun {
            path: "serve.json".into(),
            report,
            events: EventStream::default(),
            metrics: Default::default(),
        };
        let out = render_serve(&run);
        assert!(out.contains("Open-loop rate sweep"), "{out}");
        assert!(out.contains("10.50"), "{out}");
        assert!(out.contains("96.0%"), "{out}");
        assert!(out.contains("all results bitwise identical"), "{out}");
        // The quantile-less rate keeps its row, with "n/a" latency cells.
        let rate2 = out
            .lines()
            .find(|l| l.split('|').nth(1).map(str::trim).unwrap_or_default() == "2")
            .expect("rate 2 row present");
        assert_eq!(rate2.matches("n/a").count(), 3, "{rate2}");
        assert!(rate2.contains("30"), "{rate2}");
        // Non-serve reports degrade to a note, not a panic.
        let other = sample_run(1.0);
        let out = render_serve(&other);
        assert!(out.contains("no rate-sweep metrics"), "{out}");
    }

    /// A run the way a `--metrics` serve sweep produces it: a metrics
    /// sidecar with queue/throughput/latency series plus the SLO burn and
    /// health-state series the collector samples from `Engine::health`.
    /// `scale` degrades the run: it divides throughput and multiplies
    /// queue depth and p99.
    fn live_run(scale: f64) -> LoadedRun {
        let mut metrics = SeriesSet::new(64);
        for i in 0..32u32 {
            let t = f64::from(i) * 0.1;
            metrics.record("queue_depth", t, f64::from(i % 4) * scale);
            metrics.record("throughput_solves_per_s", t, 100.0 / scale);
            metrics.record("p99_s", t, 0.01 * scale);
            metrics.record("slo_burn", t, if i >= 16 { 2.0 } else { 0.0 });
            metrics.record("health_state", t, if i >= 16 { 1.0 } else { 0.0 });
        }
        let mut report = PerfReport::new("serve")
            .with_meta("slo_target_s", "0.25")
            .with_meta("slo_budget_frac", "0.05");
        report.push_metric("serve:peak_solves_per_s", 100.0 / scale);
        LoadedRun {
            path: format!("serve_x{scale}.json"),
            report,
            events: EventStream::default(),
            metrics,
        }
    }

    #[test]
    fn live_renders_sparklines_and_health_timeline() {
        let run = live_run(1.0);
        let out = render_live(&run, None);
        assert!(out.contains("## Time series"), "{out}");
        assert!(out.contains("queue_depth"), "{out}");
        assert!(out.contains('\u{2581}'), "{out}");
        assert!(out.contains("SLO: latency objective 0.25 s"), "{out}");
        assert!(out.contains("0.000s: ok"), "{out}");
        assert!(out.contains("1.600s: degraded"), "{out}");
        assert!(out.contains("peak burn 2.00x"), "{out}");
        // Without a metrics sidecar the view degrades to a note.
        let out = render_live(&sample_run(1.0), None);
        assert!(out.contains("no live metrics"), "{out}");
        assert!(out.contains("--metrics"), "{out}");
    }

    #[test]
    fn live_ab_diff_is_polarity_aware() {
        let a = live_run(1.0);
        // Half the throughput, double the tail latency: a worse run on
        // both a higher-is-better and a lower-is-better series.
        let b = live_run(2.0);
        let out = render_live(&a, Some(&b));
        assert!(out.contains("## Series A/B"), "{out}");
        let regressed: Vec<&str> = out.lines().filter(|l| l.contains("REGRESSED")).collect();
        assert!(
            regressed
                .iter()
                .any(|l| l.contains("throughput_solves_per_s")),
            "{out}"
        );
        assert!(regressed.iter().any(|l| l.contains("p99_s")), "{out}");
        // Same run on both sides: nothing regresses.
        let out = render_live(&a, Some(&a));
        assert!(!out.contains("REGRESSED"), "{out}");
        // A metrics-less B degrades to a note.
        let out = render_live(&a, Some(&sample_run(1.0)));
        assert!(out.contains("run B carries no live metrics"), "{out}");
    }

    #[test]
    fn load_autodiscovers_sibling_events() {
        let dir = std::env::temp_dir();
        let rp = dir.join("fun3d_report_cli_test.json");
        let rp = rp.to_str().unwrap().to_string();
        let run = sample_run(1.0);
        run.report.write_json(&rp).unwrap();
        run.events.write_jsonl(&sibling_events_path(&rp)).unwrap();
        let loaded = LoadedRun::load(&rp, None).unwrap();
        assert_eq!(loaded.events, run.events);
        std::fs::remove_file(&rp).ok();
        std::fs::remove_file(sibling_events_path(&rp)).ok();
        // Without the sibling the stream is empty, not an error.
        let rp2 = dir.join("fun3d_report_cli_test2.json");
        let rp2 = rp2.to_str().unwrap().to_string();
        run.report.write_json(&rp2).unwrap();
        let loaded = LoadedRun::load(&rp2, None).unwrap();
        assert!(loaded.events.is_empty());
        std::fs::remove_file(&rp2).ok();
    }

    #[test]
    fn explain_ranks_bandwidth_bound_for_profiled_spmv() {
        let run = profiled_run(2);
        let text = render_explain(Some(&run), None, None);
        assert!(text.contains("Ranked bottleneck hypotheses"), "{text}");
        // The byte-counted SpMV kernel dominates: bandwidth-bound on top,
        // with the %-of-STREAM evidence line and the memmodel delta.
        assert!(text.contains("1. bandwidth-bound"), "{text}");
        assert!(text.contains("75% of STREAM triad"), "{text}");
        assert!(text.contains("memmodel:"), "{text}");
        assert!(text.contains("explain:confidence"), "{text}");
        // The imbalanced region still appears, ranked below.
        assert!(text.contains("imbalance-bound"), "{text}");
    }

    #[test]
    fn explain_puts_anomalies_first() {
        let mut run = sample_run(1.0);
        run.events.records.push(EventRecord::Anomaly {
            kind: "non_finite_residual".into(),
            step: 3,
            residual_norm: f64::NAN,
            detail: "residual norm is not finite".into(),
        });
        let text = render_explain(Some(&run), None, None);
        assert!(text.contains("1. anomaly-terminated"), "{text}");
        assert!(text.contains("non_finite_residual"), "{text}");
        assert!(text.contains("at step 3"), "{text}");
    }

    #[test]
    fn explain_without_evidence_says_so() {
        let run = LoadedRun {
            path: "bare.json".into(),
            report: PerfReport::new("bare"),
            events: EventStream::default(),
            metrics: Default::default(),
        };
        let text = render_explain(Some(&run), None, None);
        assert!(text.contains("no diagnosis possible"), "{text}");
        assert!(text.contains("--profile"), "{text}");
    }

    /// A byte-counted run whose kernel takes `total_s`: slowing it down
    /// drops the achieved GB/s, the regression signature `explain` must
    /// attribute.
    fn bw_run(total_s: f64) -> LoadedRun {
        use fun3d_telemetry::TimeDomain;
        let tel = Registry::enabled(0);
        tel.record_span("spmv/csr", TimeDomain::Measured, total_s, 10);
        tel.counter_at("spmv/csr", TimeDomain::Measured, "bytes", 30e9);
        let mut report = PerfReport::new("spmv").with_snapshot(&tel.snapshot());
        report.push_metric("stream_triad_bytes_per_s", 20e9);
        LoadedRun {
            path: format!("spmv_{total_s}.json"),
            report,
            events: EventStream::default(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn explain_ab_names_the_regressed_phase_and_cause() {
        let a = bw_run(2.0);
        let b = bw_run(4.0); // same traffic, twice the time: gbps halves
        let text = render_explain(Some(&a), Some(&b), None);
        assert!(text.contains("A/B attribution"), "{text}");
        assert!(text.contains("regressed phase: spmv/csr"), "{text}");
        assert!(
            text.contains("regression attributed to phase `spmv/csr` (cause: bandwidth)"),
            "{text}"
        );
        // The span-tree corroboration names the grown span too.
        assert!(text.contains("span `spmv/csr` grew"), "{text}");
        // A self-pair attributes nothing.
        let text = render_explain(Some(&a), Some(&a), None);
        assert!(text.contains("statistically the same run"), "{text}");
    }

    #[test]
    fn explain_renders_a_blackbox_dump_alone() {
        use fun3d_telemetry::blackbox::parse_dump;
        let text = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            r#"{"schema":"fun3d-blackbox/1","capacity":64,"reason":"panic","rings":1}"#,
            r#"{"ring":"main#0","dropped":0,"written":3}"#,
            r#"{"rec":"span","path":"nks/krylov","t_s":0.5,"dur_s":0.01}"#,
            r#"{"rec":"counter","path":"anomalies","delta":1,"t_s":0.6}"#,
            r#"{"rec":"event","tag":"newton_step","data":"{\"ev\":\"newton_step\",\"step\":7}","t_s":0.7}"#,
        );
        let dump = parse_dump(&text).unwrap();
        let out = render_explain(None, None, Some(&dump));
        assert!(out.contains("1. anomaly-terminated"), "{out}");
        assert!(out.contains("reason `panic`"), "{out}");
        assert!(out.contains("Flight recorder (fun3d-blackbox/1)"), "{out}");
        assert!(out.contains("nks/krylov"), "{out}");
        assert!(out.contains("newton_step"), "{out}");
        assert!(out.contains("3 written, 0 dropped"), "{out}");
        // Paired with a report, the dump both feeds the anomaly hypothesis
        // and renders as a section.
        let run = sample_run(1.0);
        let out = render_explain(Some(&run), None, Some(&dump));
        assert!(
            out.contains("flight-recorder dump taken (reason `panic`)"),
            "{out}"
        );
        assert!(out.contains("## Flight recorder"), "{out}");
    }
}
