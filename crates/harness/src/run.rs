//! Repetition scheduling: run a registered experiment with warmup and N
//! repetitions, collect the per-rep `fun3d-perf/1` reports, and reduce each
//! metric to a robust summary.

use crate::stats::{summarize, Summary};
use fun3d_bench::{BenchArgs, Experiment};
use fun3d_telemetry::report::PerfReport;

/// Environment variable holding a synthetic slowdown factor (test hook).
pub const SLOWDOWN_ENV: &str = "FUN3D_BENCH_SLOWDOWN";

/// Degrade every metric of `report` by `factor` (> 1 = worse): lower-is-
/// better metrics are multiplied, higher-is-better ones divided.  This is
/// the regression-injection hook behind [`SLOWDOWN_ENV`]; it exists so the
/// gate's failure path can be exercised deterministically in tests and CI
/// without depending on actual machine noise.
pub fn apply_slowdown(report: &mut PerfReport, factor: f64) {
    assert!(factor > 0.0, "slowdown factor must be positive");
    for (key, value) in &mut report.metrics {
        if crate::compare::higher_is_better(key) {
            *value /= factor;
        } else {
            *value *= factor;
        }
    }
}

/// All repetitions of one experiment plus the per-metric summaries.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Experiment name.
    pub name: String,
    /// One report per repetition, in order.
    pub reports: Vec<PerfReport>,
    /// One `fun3d-events/1` stream per repetition, in report order (empty
    /// streams for experiments that emit no events).
    pub events: Vec<fun3d_telemetry::events::EventStream>,
    /// One `fun3d-metrics/1` time-series set per repetition, in report
    /// order (empty sets for experiments without live metrics).
    pub metrics: Vec<fun3d_telemetry::metrics::SeriesSet>,
    /// Robust summary per metric key, in first-report order.
    pub summaries: Vec<(String, Summary)>,
}

impl ExperimentRun {
    /// The middle repetition's report — the representative one for model
    /// comparison and `--json` export.
    pub fn representative(&self) -> &PerfReport {
        &self.reports[self.reports.len() / 2]
    }

    /// The middle repetition's event stream (pairs with
    /// [`Self::representative`]).
    pub fn representative_events(&self) -> &fun3d_telemetry::events::EventStream {
        &self.events[self.events.len() / 2]
    }

    /// The middle repetition's live-metrics time series (pairs with
    /// [`Self::representative`]).
    pub fn representative_metrics(&self) -> &fun3d_telemetry::metrics::SeriesSet {
        &self.metrics[self.metrics.len() / 2]
    }
}

/// Run `exp` `warmup + args.reps` times, discard the warmup runs, and
/// summarize each metric across the kept repetitions.
///
/// If [`SLOWDOWN_ENV`] is set to a number, every kept report is degraded by
/// that factor before summarizing (see [`apply_slowdown`]).
pub fn run_experiment(exp: &dyn Experiment, args: &BenchArgs, warmup: usize) -> ExperimentRun {
    let slowdown: Option<f64> = std::env::var(SLOWDOWN_ENV)
        .ok()
        .map(|s| s.parse().expect("FUN3D_BENCH_SLOWDOWN must be a number"));
    for _ in 0..warmup {
        exp.run(args);
    }
    let mut reports = Vec::with_capacity(args.reps);
    let mut events = Vec::with_capacity(args.reps);
    let mut metrics = Vec::with_capacity(args.reps);
    for _ in 0..args.reps {
        let mut out = exp.run(args);
        // Tail-latency metrics from the span histograms join the scalar
        // metrics *before* any injected slowdown, so the gate's p95 columns
        // degrade (and regress) exactly like the primary timings.
        for (key, v) in out.report.tail_metrics() {
            out.report.push_metric(key, v);
        }
        // Likewise the profile-derived metrics: load imbalance per parallel
        // region and achieved GB/s per byte-counted span become gateable
        // columns (`<region>:imbalance`, `<span>:gbps`).
        for (key, v) in out.report.region_metrics() {
            out.report.push_metric(key, v);
        }
        for (key, v) in out.report.bandwidth_metrics() {
            out.report.push_metric(key, v);
        }
        if let Some(f) = slowdown {
            apply_slowdown(&mut out.report, f);
        }
        reports.push(out.report);
        events.push(out.events);
        metrics.push(out.metrics);
    }
    let summaries = summarize_reports(&reports);
    ExperimentRun {
        name: exp.name().to_string(),
        reports,
        events,
        metrics,
        summaries,
    }
}

/// Reduce per-rep reports to per-metric robust summaries.  Metric keys are
/// taken from the first report; keys missing from some repetition are
/// summarized over the reps that have them.
pub fn summarize_reports(reports: &[PerfReport]) -> Vec<(String, Summary)> {
    let Some(first) = reports.first() else {
        return Vec::new();
    };
    first
        .metrics
        .iter()
        .filter_map(|(key, _)| {
            let xs: Vec<f64> = reports.iter().filter_map(|r| r.metric(key)).collect();
            summarize(&xs).map(|s| (key.clone(), s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_bench::{ModelEstimate, RunOutcome};
    use fun3d_memmodel::machine::MachineSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A deterministic fake experiment counting its invocations.
    struct Fake {
        calls: AtomicUsize,
    }

    impl Experiment for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn description(&self) -> &'static str {
            "test double"
        }
        fn default_scale(&self) -> f64 {
            1.0
        }
        fn run(&self, _args: &BenchArgs) -> RunOutcome {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            let mut r = PerfReport::new("fake");
            // Odd spread so the median is easy to predict: 10, 11, 12, ...
            r.push_metric("time_s", 10.0 + call as f64);
            r.push_metric("speedup", 2.0);
            r.into()
        }
        fn model(&self, _r: &PerfReport, m: &MachineSpec) -> Vec<ModelEstimate> {
            vec![ModelEstimate {
                metric: "time_s".into(),
                predicted: 1e9 / m.stream_bytes_per_s,
            }]
        }
    }

    #[test]
    fn warmup_runs_are_discarded() {
        let exp = Fake {
            calls: AtomicUsize::new(0),
        };
        let args = BenchArgs {
            reps: 3,
            ..BenchArgs::defaults(1.0)
        };
        let run = run_experiment(&exp, &args, 2);
        assert_eq!(exp.calls.load(Ordering::SeqCst), 5);
        assert_eq!(run.reports.len(), 3);
        // Kept reps are calls 2, 3, 4 -> times 12, 13, 14 -> median 13.
        let (key, s) = &run.summaries[0];
        assert_eq!(key, "time_s");
        assert_eq!(s.median, 13.0);
        assert_eq!(s.n, 3);
        assert_eq!(run.representative().name, "fake");
    }

    #[test]
    fn tail_metrics_join_the_scalar_metrics() {
        struct WithSpans;
        impl Experiment for WithSpans {
            fn name(&self) -> &'static str {
                "with_spans"
            }
            fn description(&self) -> &'static str {
                "test double with a span tree"
            }
            fn default_scale(&self) -> f64 {
                1.0
            }
            fn run(&self, _args: &BenchArgs) -> RunOutcome {
                let tel = fun3d_telemetry::Registry::enabled(0);
                for _ in 0..8 {
                    let _g = tel.span("kernel");
                }
                let mut r = PerfReport::new("with_spans").with_snapshot(&tel.snapshot());
                r.push_metric("time_s", 1.0);
                r.into()
            }
        }
        let run = run_experiment(&WithSpans, &BenchArgs::defaults(1.0), 0);
        assert!(
            run.summaries.iter().any(|(k, _)| k == "kernel:p95_s"),
            "p95 summary missing: {:?}",
            run.summaries.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
        assert_eq!(run.events.len(), run.reports.len());
        assert!(run.representative_events().is_empty());
    }

    #[test]
    fn apply_slowdown_respects_polarity() {
        let mut r = PerfReport::new("x");
        r.push_metric("time_s", 2.0);
        r.push_metric("triad_bytes_per_s", 100.0);
        apply_slowdown(&mut r, 4.0);
        assert_eq!(r.metric("time_s"), Some(8.0));
        assert_eq!(r.metric("triad_bytes_per_s"), Some(25.0));
    }

    #[test]
    fn summarize_reports_handles_missing_keys() {
        let mut a = PerfReport::new("x");
        a.push_metric("t", 1.0);
        a.push_metric("only_first", 5.0);
        let mut b = PerfReport::new("x");
        b.push_metric("t", 3.0);
        let s = summarize_reports(&[a, b]);
        let t = s.iter().find(|(k, _)| k == "t").unwrap();
        assert_eq!(t.1.median, 2.0);
        let of = s.iter().find(|(k, _)| k == "only_first").unwrap();
        assert_eq!(of.1.n, 1);
        assert!(summarize_reports(&[]).is_empty());
    }
}
