//! Robust statistics over repeated measurements.
//!
//! Benchmark timings are contaminated by one-sided noise (scheduler
//! preemption, cache warmup, frequency transitions), so the harness
//! summarizes repetitions with the *median* and the *median absolute
//! deviation* (MAD) rather than mean and standard deviation: one slow
//! outlier among five reps moves the mean by 20% of its excess but the
//! median not at all.

/// Scale factor turning a MAD into a consistent estimate of the standard
/// deviation for normally distributed data (1 / Phi^-1(3/4)).
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Robust summary of one metric's repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of repetitions.
    pub n: usize,
    /// Median value.
    pub median: f64,
    /// Median absolute deviation from the median (unscaled).
    pub mad: f64,
    /// Smallest observation — for timings, the least-noise estimate.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// MAD scaled to a normal-consistent sigma estimate.
    pub fn sigma(&self) -> f64 {
        MAD_TO_SIGMA * self.mad
    }

    /// Half-width of a crude confidence interval on the median: the scaled
    /// MAD shrunk by sqrt(n), floored at zero for single observations.
    pub fn confidence(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.sigma() / (self.n as f64).sqrt()
        }
    }
}

/// Median of a slice. Even lengths average the two middle order statistics.
/// Returns `None` on an empty slice or any NaN.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Median absolute deviation about `center`.
pub fn mad(xs: &[f64], center: f64) -> Option<f64> {
    let devs: Vec<f64> = xs.iter().map(|x| (x - center).abs()).collect();
    median(&devs)
}

/// Robust summary of `xs`; `None` when empty or containing NaN.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    let med = median(xs)?;
    let mad = mad(xs, med)?;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n: xs.len(),
        median: med,
        mad,
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_is_middle_order_statistic() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn median_even_averages_middle_two() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), Some(2.5));
        assert_eq!(median(&[4.0, 1.0]), Some(2.5));
    }

    #[test]
    fn median_rejects_empty_and_nan() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn mad_known_answer() {
        // xs = [1, 1, 2, 2, 4, 6, 9]: median 2, |dev| = [1,1,0,0,2,4,7],
        // median of deviations = 1.
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        let med = median(&xs).unwrap();
        assert_eq!(med, 2.0);
        assert_eq!(mad(&xs, med), Some(1.0));
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = summarize(&[10.0, 10.1, 9.9, 10.05, 9.95]).unwrap();
        let dirty = summarize(&[10.0, 10.1, 9.9, 10.05, 1000.0]).unwrap();
        // The outlier barely moves the median and MAD.
        assert!((clean.median - dirty.median).abs() < 0.1);
        assert!(dirty.mad < 0.2, "{}", dirty.mad);
        assert_eq!(dirty.max, 1000.0);
    }

    #[test]
    fn summary_fields_and_confidence() {
        let s = summarize(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.mad, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.sigma() - 2.0 * MAD_TO_SIGMA).abs() < 1e-12);
        assert!(s.confidence() > 0.0);
        // Single observation: no spread information.
        let one = summarize(&[3.0]).unwrap();
        assert_eq!(one.mad, 0.0);
        assert_eq!(one.confidence(), 0.0);
    }
}
