//! Experiment suites: named sets of registered experiments with per-entry
//! scale/steps/repetition overrides.
//!
//! * `smoke` — tiny sizes, 1 rep, the cheap experiments only; exercises the
//!   registry -> stats -> baseline pipeline in seconds (CI).
//! * `quick` — the experiments that finish in seconds at reduced scale,
//!   with enough reps for meaningful MADs; the developer default.
//! * `full` — every registered experiment at its own default scale.
//! * any registered experiment name — that one experiment alone.

use fun3d_bench::runners;

/// One scheduled experiment inside a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEntry {
    /// Registry name.
    pub name: &'static str,
    /// Mesh scale (fraction of the paper's vertex count).
    pub scale: f64,
    /// Measured pseudo-timesteps where applicable.
    pub steps: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// Discarded warmup runs before the timed ones.
    pub warmup: usize,
}

impl SuiteEntry {
    fn new(name: &'static str, scale: f64, steps: usize, reps: usize, warmup: usize) -> Self {
        Self {
            name,
            scale,
            steps,
            reps,
            warmup,
        }
    }
}

/// The names every `suite()` caller can rely on existing.
pub const NAMED_SUITES: [&str; 3] = ["smoke", "quick", "full"];

/// Resolve a suite name (or single experiment name) to its schedule.
/// Returns `None` for unknown names.
pub fn suite(name: &str) -> Option<Vec<SuiteEntry>> {
    match name {
        "smoke" => Some(vec![
            SuiteEntry::new("stream", 0.05, 1, 1, 0),
            SuiteEntry::new("spmv", 0.1, 1, 1, 0),
            SuiteEntry::new("blockspec", 0.05, 1, 1, 0),
            SuiteEntry::new("table1", 0.05, 2, 1, 0),
            SuiteEntry::new("figure1", 1.0, 1, 1, 0),
            SuiteEntry::new("miss_bounds", 0.1, 1, 1, 0),
        ]),
        "quick" => Some(vec![
            SuiteEntry::new("stream", 0.5, 1, 3, 1),
            SuiteEntry::new("spmv", 0.25, 1, 3, 1),
            SuiteEntry::new("blockspec", 0.15, 1, 3, 1),
            SuiteEntry::new("table1", 0.1, 3, 3, 0),
            SuiteEntry::new("figure1", 1.0, 1, 3, 0),
            SuiteEntry::new("figure2", 1.0, 1, 3, 0),
            SuiteEntry::new("figure3", 0.5, 1, 1, 0),
            SuiteEntry::new("miss_bounds", 0.5, 1, 1, 0),
        ]),
        "full" => Some(
            runners::all()
                .iter()
                .map(|e| SuiteEntry {
                    name: e.name(),
                    scale: e.default_scale(),
                    steps: 3,
                    reps: 3,
                    warmup: 0,
                })
                .collect(),
        ),
        single => runners::find(single).map(|e| {
            vec![SuiteEntry {
                name: e.name(),
                scale: e.default_scale(),
                steps: 3,
                reps: 3,
                warmup: 1,
            }]
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_suites_resolve_to_registered_experiments() {
        for name in NAMED_SUITES {
            let entries = suite(name).unwrap();
            assert!(!entries.is_empty());
            for e in &entries {
                assert!(
                    runners::find(e.name).is_some(),
                    "suite {name}: unknown experiment {}",
                    e.name
                );
                assert!(e.reps >= 1);
                assert!(e.scale > 0.0 && e.scale <= 4.0);
            }
        }
    }

    #[test]
    fn full_covers_the_whole_registry() {
        assert_eq!(suite("full").unwrap().len(), runners::all().len());
    }

    #[test]
    fn single_experiment_names_form_singleton_suites() {
        let s = suite("spmv").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "spmv");
        assert!(suite("nonesuch").is_none());
    }

    #[test]
    fn smoke_stays_cheap() {
        for e in suite("smoke").unwrap() {
            assert_eq!(e.reps, 1, "{}: smoke must be single-rep", e.name);
            assert!(e.scale <= 1.0);
        }
    }
}
