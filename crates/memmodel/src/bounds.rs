//! Analytic cache-miss bounds for sparse matrix–vector product —
//! Equations (1) and (2) of the paper, plus their TLB analogues.
//!
//! Setting: SpMV `y = A x` with `A` of `N` rows in CSR; although `A` is
//! sparse, the source vector `x` is gathered through the column indices, so
//! the *working set* of `x` entries live at any moment is governed by the
//! matrix bandwidth.
//!
//! * Non-interlaced storage couples unknowns `~N` apart, so the working set
//!   of `x` is `~N` double words and the conflict misses are bounded by
//!   `N * ceil((N - C) / W)` once `N >= C` (Eq. 1), where `C` is the cache
//!   capacity and `W` the line size in double words.
//! * Interlaced storage with a banded node ordering gives bandwidth
//!   `beta << N`, shrinking the bound to `N * ceil((beta - C) / W)` (Eq. 2).
//!
//! The TLB bounds substitute the TLB reach (entries) for `C` and the page
//! size for `W`.

/// Eq. (1): conflict-miss bound for the non-interlaced (bandwidth ~ N)
/// layout.  `n` rows, cache capacity `c_dwords`, line size `w_dwords`, all
/// in 8-byte double words.  Zero when the working set fits (`n < c`).
pub fn conflict_miss_bound_noninterlaced(n: usize, c_dwords: usize, w_dwords: usize) -> u64 {
    conflict_miss_bound_banded(n, n, c_dwords, w_dwords)
}

/// Eq. (2): conflict-miss bound for an interlaced layout whose matrix
/// bandwidth is `beta` double words.
pub fn conflict_miss_bound_banded(n: usize, beta: usize, c_dwords: usize, w_dwords: usize) -> u64 {
    assert!(w_dwords > 0, "line size must be positive");
    if beta < c_dwords {
        return 0;
    }
    let excess = beta - c_dwords;
    let per_row = excess.div_ceil(w_dwords);
    n as u64 * per_row as u64
}

/// TLB analogue of Eq. (1): capacity becomes the TLB reach in double words
/// (`entries * page_dwords`), line size becomes the page size.
pub fn tlb_miss_bound_noninterlaced(n: usize, tlb_entries: usize, page_dwords: usize) -> u64 {
    tlb_miss_bound_banded(n, n, tlb_entries, page_dwords)
}

/// TLB analogue of Eq. (2) for a banded working set of `beta` double words.
pub fn tlb_miss_bound_banded(n: usize, beta: usize, tlb_entries: usize, page_dwords: usize) -> u64 {
    conflict_miss_bound_banded(n, beta, tlb_entries * page_dwords, page_dwords)
}

/// The ratio predicted between non-interlaced and interlaced conflict misses
/// — the headline "orders of magnitude" claim the simulator (Figure 3
/// regenerator) checks against.
pub fn predicted_improvement(n: usize, beta: usize, c_dwords: usize, w_dwords: usize) -> f64 {
    let non = conflict_miss_bound_noninterlaced(n, c_dwords, w_dwords);
    let inter = conflict_miss_bound_banded(n, beta, c_dwords, w_dwords);
    if inter == 0 {
        f64::INFINITY
    } else {
        non as f64 / inter as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_when_working_set_fits() {
        assert_eq!(conflict_miss_bound_banded(10_000, 100, 512, 16), 0);
        assert_eq!(conflict_miss_bound_noninterlaced(100, 512, 16), 0);
    }

    #[test]
    fn matches_formula_when_exceeding() {
        // N = 1000, C = 512, W = 16: ceil(488/16) = 31 per row.
        assert_eq!(conflict_miss_bound_noninterlaced(1000, 512, 16), 1000 * 31);
    }

    #[test]
    fn banded_bound_is_never_larger() {
        for beta in [10usize, 100, 1000, 5000] {
            let b = conflict_miss_bound_banded(5000, beta, 512, 16);
            let non = conflict_miss_bound_noninterlaced(5000, 512, 16);
            assert!(b <= non, "beta={beta}");
        }
    }

    #[test]
    fn bound_monotone_in_bandwidth() {
        let mut prev = 0;
        for beta in (0..10).map(|k| 256 * k) {
            let b = conflict_miss_bound_banded(1024, beta, 512, 16);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn tlb_bound_uses_reach() {
        // 64 entries x 2048 dwords/page (16 KB) = 131072-dword reach.
        assert_eq!(tlb_miss_bound_banded(1000, 100_000, 64, 2048), 0);
        let b = tlb_miss_bound_noninterlaced(200_000, 64, 2048);
        // excess = 200000 - 131072 = 68928; ceil(68928/2048) = 34.
        assert_eq!(b, 200_000 * 34);
    }

    #[test]
    fn improvement_is_large_for_small_bandwidth() {
        let r = predicted_improvement(500_000, 2_000, 512 * 1024 / 8, 16);
        assert!(r.is_infinite(), "banded set fits L2 entirely: {r}");
        let r2 = predicted_improvement(500_000, 80_000, 65_536, 16);
        assert!(r2 > 10.0, "{r2}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_line_size_panics() {
        conflict_miss_bound_banded(10, 10, 1, 0);
    }
}
