//! Set-associative LRU cache simulation.
//!
//! One structure serves three roles: L1 data cache, L2 (the "secondary
//! cache" whose misses Figure 3 plots), and the TLB — a TLB with `E` entries
//! over pages of `P` bytes is exactly a fully-associative cache of capacity
//! `E * P` with line size `P`.

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity; use [`CacheConfig::fully_associative`] for full.
    pub assoc: usize,
}

impl CacheConfig {
    /// A fully-associative configuration with the given capacity and line
    /// size.
    pub fn fully_associative(size_bytes: usize, line_bytes: usize) -> Self {
        Self {
            size_bytes,
            line_bytes,
            assoc: size_bytes / line_bytes,
        }
    }

    /// A TLB with `entries` translations over `page_bytes` pages.
    pub fn tlb(entries: usize, page_bytes: usize) -> Self {
        Self::fully_associative(entries * page_bytes, page_bytes)
    }

    /// Number of sets.
    pub fn nsets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }

    /// Capacity in 8-byte double words (the `C` of Eqs. 1–2).
    pub fn capacity_dwords(&self) -> usize {
        self.size_bytes / 8
    }

    /// Line size in 8-byte double words (the `W` of Eqs. 1–2).
    pub fn line_dwords(&self) -> usize {
        self.line_bytes / 8
    }
}

/// A set-associative cache with true-LRU replacement and miss counting.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    nsets: usize,
    line_shift: u32,
    /// Tags per set, `assoc` slots each; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Create an empty (cold) cache.
    ///
    /// # Panics
    /// Panics unless line size and set count are powers of two and the
    /// geometry divides evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.assoc >= 1);
        assert_eq!(
            cfg.size_bytes % (cfg.line_bytes * cfg.assoc),
            0,
            "capacity must divide into assoc-way sets"
        );
        let nsets = cfg.nsets();
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Self {
            cfg,
            nsets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; nsets * cfg.assoc],
            stamps: vec![0; nsets * cfg.assoc],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access one byte address; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.nsets - 1);
        let base = set * self.cfg.assoc;
        let ways = &mut self.tags[base..base + self.cfg.assoc];
        // Hit?
        for (w, tag) in ways.iter().enumerate() {
            if *tag == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.cfg.assoc {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Reset counters but keep contents (for warm-cache measurements).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidate everything and reset counters.
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = u64::MAX);
        self.stamps.iter_mut().for_each(|s| *s = 0);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(8));
        assert!(c.access(63));
        assert!(!c.access(64));
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines whose line index ≡ 0 (mod 4): addresses 0, 256, 512.
        c.access(0);
        c.access(256);
        c.access(0); // touch 0, making 256 LRU
        c.access(512); // evicts 256
        assert!(c.access(0), "0 must still be resident");
        assert!(!c.access(256), "256 must have been evicted");
    }

    #[test]
    fn streaming_misses_once_per_line() {
        let mut c = tiny();
        for b in 0..1024u64 {
            c.access(b);
        }
        assert_eq!(c.misses(), 1024 / 64);
        assert_eq!(c.accesses(), 1024);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny(); // 512 B capacity
                            // Cycle through 1024 B repeatedly, one access per line: with LRU and
                            // a round-robin pattern, every access misses after warmup.
        c.flush();
        for _ in 0..4 {
            for line in 0..16u64 {
                c.access(line * 64);
            }
        }
        // 64 accesses, all misses (16 lines don't fit into 8).
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn fully_associative_avoids_conflicts() {
        let mut c = SetAssocCache::new(CacheConfig::fully_associative(512, 64));
        // Two lines mapping to the same set in a direct-mapped cache coexist.
        for _ in 0..10 {
            c.access(0);
            c.access(512);
            c.access(1024);
        }
        assert_eq!(
            c.misses(),
            3,
            "only compulsory misses in a big-enough FA cache"
        );
    }

    #[test]
    fn tlb_config_geometry() {
        let t = CacheConfig::tlb(64, 16 * 1024);
        assert_eq!(t.nsets(), 1);
        assert_eq!(t.assoc, 64);
        assert_eq!(t.line_bytes, 16 * 1024);
        let mut tlb = SetAssocCache::new(t);
        // Touch 64 distinct pages: all compulsory misses, then all hits.
        for p in 0..64u64 {
            tlb.access(p * 16 * 1024);
        }
        for p in 0..64u64 {
            assert!(tlb.access(p * 16 * 1024 + 8));
        }
        assert_eq!(tlb.misses(), 64);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = tiny();
        c.access(0);
        c.reset_counters();
        assert!(c.access(0), "contents survive reset_counters");
        c.flush();
        assert!(!c.access(0), "flush invalidates");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        SetAssocCache::new(CacheConfig {
            size_bytes: 480,
            line_bytes: 60,
            assoc: 2,
        });
    }
}
