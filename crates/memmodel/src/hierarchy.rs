//! A composed L1 + L2 + TLB memory system with event counters — the
//! software stand-in for the R10000 hardware counters used in Figure 3.

use crate::cache::{CacheConfig, SetAssocCache};

/// Counter snapshot after replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Total memory references replayed.
    pub accesses: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// Secondary (L2) cache misses — Figure 3's right panel.
    pub l2_misses: u64,
    /// TLB misses — Figure 3's left panel (log scale).
    pub tlb_misses: u64,
}

impl MemStats {
    /// Estimated stall cycles given per-level miss penalties.
    pub fn stall_cycles(&self, l1_penalty: u64, l2_penalty: u64, tlb_penalty: u64) -> u64 {
        self.l1_misses * l1_penalty + self.l2_misses * l2_penalty + self.tlb_misses * tlb_penalty
    }

    /// Ingest these modeled counters into a telemetry registry under `path`,
    /// as `model_accesses` / `model_l1_misses` / `model_l2_misses` /
    /// `model_tlb_misses`.  Recording under the same span path a kernel
    /// timed itself with puts modeled cache/TLB misses next to measured
    /// time in every report (the Figure 3 model-vs-measured story as a
    /// permanent column).
    pub fn ingest_into(&self, reg: &fun3d_telemetry::Registry, path: &str) {
        use fun3d_telemetry::TimeDomain;
        let pairs = [
            ("model_accesses", self.accesses),
            ("model_l1_misses", self.l1_misses),
            ("model_l2_misses", self.l2_misses),
            ("model_tlb_misses", self.tlb_misses),
        ];
        for (name, v) in pairs {
            reg.counter_at(path, TimeDomain::Simulated, name, v as f64);
        }
    }
}

/// An inclusive two-level cache hierarchy with a TLB, all LRU.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: SetAssocCache,
}

impl MemoryHierarchy {
    /// Build from the three geometries.
    pub fn new(l1: CacheConfig, l2: CacheConfig, tlb: CacheConfig) -> Self {
        Self {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            tlb: SetAssocCache::new(tlb),
        }
    }

    /// The R10000 / Origin 2000 hierarchy of the paper's Table 1 runs:
    /// 32 KB 2-way L1 (32 B lines), 4 MB 2-way L2 (128 B lines),
    /// 64-entry TLB over 16 KB pages.
    pub fn origin2000() -> Self {
        Self::new(
            CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 2,
            },
            CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 128,
                assoc: 2,
            },
            CacheConfig::tlb(64, 16 * 1024),
        )
    }

    /// Replay one load/store of a byte address.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        self.tlb.access(addr);
        if !self.l1.access(addr) {
            // L2 is only consulted on an L1 miss.
            self.l2.access(addr);
        }
    }

    /// Replay `len` bytes starting at `addr`, touching each 8-byte word.
    #[inline]
    pub fn access_range(&mut self, addr: u64, len: usize) {
        let mut a = addr;
        let end = addr + len as u64;
        while a < end {
            self.access(a);
            a += 8;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            accesses: self.tlb.accesses(),
            l1_misses: self.l1.misses(),
            l2_misses: self.l2.misses(),
            tlb_misses: self.tlb.misses(),
        }
    }

    /// Invalidate all levels and zero the counters.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.tlb.flush();
    }

    /// Zero the counters but keep cache contents (warm measurements).
    pub fn reset_counters(&mut self) {
        self.l1.reset_counters();
        self.l2.reset_counters();
        self.tlb.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(
            CacheConfig {
                size_bytes: 1024,
                line_bytes: 32,
                assoc: 2,
            },
            CacheConfig {
                size_bytes: 8192,
                line_bytes: 64,
                assoc: 2,
            },
            CacheConfig::tlb(4, 4096),
        )
    }

    #[test]
    fn l2_filtered_by_l1() {
        let mut m = small_hierarchy();
        // Two accesses to the same word: second hits L1, so L2 sees one ref.
        m.access(0);
        m.access(0);
        let s = m.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
    }

    #[test]
    fn streaming_through_small_l1_hits_l2() {
        let mut m = small_hierarchy();
        // Stream 4 KB twice: fits in L2 (8 KB) but not L1 (1 KB).
        for pass in 0..2 {
            for w in 0..512u64 {
                m.access(w * 8);
            }
            if pass == 0 {
                let s = m.stats();
                assert_eq!(s.l1_misses, 4096 / 32);
                assert_eq!(s.l2_misses, 4096 / 64);
            }
        }
        let s = m.stats();
        // Second pass misses L1 again (4 KB > 1 KB) but hits L2 entirely.
        assert_eq!(s.l1_misses, 2 * (4096 / 32));
        assert_eq!(s.l2_misses, 4096 / 64, "L2 must absorb the re-walk");
    }

    #[test]
    fn tlb_counts_page_walks() {
        let mut m = small_hierarchy();
        // Touch 8 distinct pages with a 4-entry TLB, twice: misses both times.
        for _ in 0..2 {
            for p in 0..8u64 {
                m.access(p * 4096);
            }
        }
        assert_eq!(m.stats().tlb_misses, 16);
    }

    #[test]
    fn access_range_touches_every_word() {
        let mut m = small_hierarchy();
        m.access_range(0, 256);
        assert_eq!(m.stats().accesses, 32);
    }

    #[test]
    fn stall_cycle_model() {
        let s = MemStats {
            accesses: 100,
            l1_misses: 10,
            l2_misses: 5,
            tlb_misses: 2,
        };
        assert_eq!(s.stall_cycles(4, 60, 50), 40 + 300 + 100);
    }

    #[test]
    fn origin_geometry() {
        let m = MemoryHierarchy::origin2000();
        let s = m.stats();
        assert_eq!(s.accesses, 0);
    }

    #[test]
    fn ingest_into_records_model_counters() {
        let s = MemStats {
            accesses: 100,
            l1_misses: 10,
            l2_misses: 5,
            tlb_misses: 2,
        };
        let reg = fun3d_telemetry::Registry::enabled(0);
        // Attach under an existing measured span path: the counters land on
        // the same node the kernel timed itself with.
        {
            let _g = reg.span("spmv/csr");
        }
        s.ingest_into(&reg, "spmv/csr");
        s.ingest_into(&reg, "spmv/csr"); // accumulates
        let snap = reg.snapshot();
        let row = snap.span("spmv/csr").unwrap();
        assert_eq!(row.domain, fun3d_telemetry::TimeDomain::Measured);
        assert_eq!(row.calls, 1);
        assert_eq!(row.counter("model_accesses"), Some(200.0));
        assert_eq!(row.counter("model_l1_misses"), Some(20.0));
        assert_eq!(row.counter("model_l2_misses"), Some(10.0));
        assert_eq!(row.counter("model_tlb_misses"), Some(4.0));
    }
}
