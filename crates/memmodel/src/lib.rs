//! Memory-centric performance models (Sections 2.1–2.2 of the paper).
//!
//! The paper's thesis is that sparse PDE codes must be understood through the
//! memory hierarchy, not flop counts.  This crate supplies the instruments:
//!
//! * [`cache`] — a set-associative LRU cache simulator, configured as L1 /
//!   L2 / TLB (a TLB is a cache of page translations).
//! * [`hierarchy`] — a composed L1+L2+TLB memory system with miss counters;
//!   the stand-in for the R10000 hardware event counters behind Figure 3.
//! * [`trace`] — address-trace generators for the application's kernels
//!   (edge-based flux loop, CSR/BCSR SpMV, triangular solve) under each
//!   data-layout choice, replayed through the hierarchy.
//! * [`bounds`] — the analytic conflict-miss bounds of Eqs. (1)–(2) and
//!   their TLB analogues.
//! * [`stream`] — a measured STREAM benchmark (copy/scale/add/triad), the
//!   bandwidth ceiling the paper uses for the sparse solve phase.
//! * [`sched`] — the instruction-scheduling model for the flux phase (the
//!   paper's other ceiling: operations retired per cycle, not bandwidth).
//! * [`spmv_model`] — the bandwidth-based SpMV performance model from the
//!   companion paper [Gropp et al., Parallel CFD'99]: time = bytes moved /
//!   sustainable bandwidth, with the CSR vs BCSR byte counts.
//! * [`machine`] — parameter sets describing the paper's machines (ASCI Red,
//!   ASCI Blue Pacific, Cray T3E-600, SGI Origin 2000) for the simulated-time
//!   parallel experiments.

pub mod bounds;
pub mod cache;
pub mod hierarchy;
pub mod machine;
pub mod sched;
pub mod spmv_model;
pub mod stream;
pub mod trace;

pub use cache::{CacheConfig, SetAssocCache};
pub use hierarchy::{MemStats, MemoryHierarchy};
pub use machine::MachineSpec;
