//! Parameter descriptions of the paper's machines.
//!
//! The original testbeds are long gone; these specs capture the
//! architectural parameters the paper's analysis turns on — peak flop rate,
//! sustainable memory bandwidth (STREAM), interconnect latency/bandwidth, and
//! cache/TLB geometry — so the parallel experiments (Figures 1, 2, 4;
//! Tables 3, 5) can be regenerated in *simulated time*.  The constants are
//! calibrated from the era's published STREAM numbers and MPI benchmarks and
//! recorded in EXPERIMENTS.md; the paper's conclusions depend on their
//! ratios (flops : memory bandwidth : network), not their absolute values.

use crate::cache::CacheConfig;

/// An abstract machine for simulated-time execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak floating-point operations per cycle per CPU.
    pub flops_per_cycle: f64,
    /// CPUs sharing one node's memory.
    pub cpus_per_node: usize,
    /// Sustainable memory bandwidth per *node* (STREAM triad), bytes/s.
    pub stream_bytes_per_s: f64,
    /// MPI point-to-point latency, seconds.
    pub net_latency_s: f64,
    /// MPI point-to-point bandwidth per node, bytes/s.
    pub net_bytes_per_s: f64,
    /// Time for a global reduction barrier across `p` nodes is modeled as
    /// `log2(p) * reduce_latency_s`.
    pub reduce_latency_s: f64,
    /// Largest configuration used in the paper.
    pub max_nodes: usize,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// TLB geometry.
    pub tlb: CacheConfig,
}

impl MachineSpec {
    /// ASCI Red: dual 333 MHz Pentium II (P6) per node, custom mesh network.
    pub fn asci_red() -> Self {
        Self {
            name: "ASCI Red",
            clock_hz: 333e6,
            flops_per_cycle: 1.0,
            cpus_per_node: 2,
            // Measured per-node copy bandwidth of the era ~ 280 MB/s.
            stream_bytes_per_s: 280e6,
            net_latency_s: 15e-6,
            net_bytes_per_s: 310e6,
            reduce_latency_s: 20e-6,
            max_nodes: 3072,
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            tlb: CacheConfig::tlb(64, 4 * 1024),
        }
    }

    /// ASCI Blue Pacific: 4-way 332 MHz PowerPC 604e SMP nodes (one FPU per
    /// CPU, so one flop per cycle).
    pub fn asci_blue_pacific() -> Self {
        Self {
            name: "ASCI Blue Pacific",
            clock_hz: 332e6,
            flops_per_cycle: 1.0,
            cpus_per_node: 4,
            // The node's ~320 MB/s bus is shared by 4 CPUs; production runs
            // placed multiple MPI tasks per node, so the per-task share is
            // what the solve phase sees.
            stream_bytes_per_s: 160e6,
            net_latency_s: 28e-6,
            net_bytes_per_s: 130e6,
            reduce_latency_s: 35e-6,
            max_nodes: 1464,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                assoc: 1,
            },
            tlb: CacheConfig::tlb(128, 4 * 1024),
        }
    }

    /// Cray T3E-600: 300 MHz Alpha 21164, one CPU per node, 3-D torus.
    pub fn cray_t3e() -> Self {
        Self {
            name: "Cray T3E",
            clock_hz: 300e6,
            flops_per_cycle: 2.0,
            cpus_per_node: 1,
            stream_bytes_per_s: 600e6,
            net_latency_s: 8e-6,
            net_bytes_per_s: 330e6,
            reduce_latency_s: 10e-6,
            max_nodes: 1024,
            l1: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                assoc: 1,
            },
            l2: CacheConfig {
                size_bytes: 96 * 1024,
                line_bytes: 64,
                assoc: 3 * 1024 / 64, // 96K 3-way -> approximate with high assoc over 32 sets
            },
            tlb: CacheConfig::tlb(64, 8 * 1024),
        }
    }

    /// SGI Origin 2000: 250 MHz MIPS R10000 (Table 1's uniprocessor and
    /// Table 2's 16–120 CPU runs).
    pub fn origin2000() -> Self {
        Self {
            name: "SGI Origin 2000",
            clock_hz: 250e6,
            flops_per_cycle: 2.0,
            cpus_per_node: 2,
            stream_bytes_per_s: 300e6,
            net_latency_s: 10e-6,
            net_bytes_per_s: 160e6,
            reduce_latency_s: 12e-6,
            max_nodes: 64,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 32,
                assoc: 2,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 128,
                assoc: 2,
            },
            tlb: CacheConfig::tlb(64, 16 * 1024),
        }
    }

    /// This spec with its sustainable bandwidth replaced by a *measured*
    /// figure — the calibration hook the harness feeds STREAM results into.
    pub fn with_stream_bandwidth(mut self, bytes_per_s: f64) -> Self {
        assert!(bytes_per_s > 0.0, "bandwidth must be positive");
        self.stream_bytes_per_s = bytes_per_s;
        self
    }

    /// A spec describing *this* host, calibrated from a measured STREAM
    /// triad bandwidth.  Only the bandwidth is measured; the remaining
    /// parameters are a generic modern layout and only matter to the
    /// simulated-network experiments, which don't use this spec.
    pub fn calibrated_host(triad_bytes_per_s: f64) -> Self {
        Self {
            name: "calibrated host",
            clock_hz: 3e9,
            flops_per_cycle: 4.0,
            cpus_per_node: 1,
            net_latency_s: 1e-6,
            net_bytes_per_s: 10e9,
            reduce_latency_s: 1e-6,
            max_nodes: 1,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                assoc: 8,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                assoc: 16,
            },
            tlb: CacheConfig::tlb(64, 4 * 1024),
            ..Self::origin2000()
        }
        .with_stream_bandwidth(triad_bytes_per_s)
    }

    /// Peak flop/s of one CPU.
    pub fn peak_flops_per_cpu(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }

    /// Peak flop/s of one node.
    pub fn peak_flops_per_node(&self) -> f64 {
        self.peak_flops_per_cpu() * self.cpus_per_node as f64
    }

    /// Simulated time for a compute phase on one CPU: the larger of the flop
    /// time and the memory time (the roofline the paper argues from),
    /// degraded by `efficiency` for instruction-scheduling-bound phases.
    pub fn compute_time(&self, flops: f64, bytes: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        let flop_time = flops / (self.peak_flops_per_cpu() * efficiency);
        let mem_time = bytes / self.stream_bytes_per_s;
        flop_time.max(mem_time)
    }

    /// Simulated time for one point-to-point message of `bytes`.
    pub fn message_time(&self, bytes: f64) -> f64 {
        self.net_latency_s + bytes / self.net_bytes_per_s
    }

    /// Simulated time for a global reduction over `p` nodes.
    pub fn allreduce_time(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p as f64).log2().ceil() * self.reduce_latency_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rates() {
        let red = MachineSpec::asci_red();
        assert_eq!(red.peak_flops_per_cpu(), 333e6);
        assert_eq!(red.peak_flops_per_node(), 666e6);
        let t3e = MachineSpec::cray_t3e();
        assert_eq!(t3e.peak_flops_per_node(), 600e6);
    }

    #[test]
    fn compute_time_is_rooflined() {
        let m = MachineSpec::asci_red();
        // Pure compute: 333e6 flops at peak = 1 s.
        assert!((m.compute_time(333e6, 0.0, 1.0) - 1.0).abs() < 1e-12);
        // Memory bound: 280e6 bytes = 1 s even with trivial flops.
        assert!((m.compute_time(1.0, 280e6, 1.0) - 1.0).abs() < 1e-12);
        // The max, not the sum.
        let t = m.compute_time(333e6, 280e6, 1.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_time_has_latency_floor() {
        let m = MachineSpec::cray_t3e();
        assert!(m.message_time(0.0) >= 8e-6);
        assert!(m.message_time(1e6) > m.message_time(1e3));
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = MachineSpec::asci_red();
        assert_eq!(m.allreduce_time(1), 0.0);
        assert!(m.allreduce_time(1024) > m.allreduce_time(128));
        assert!((m.allreduce_time(1024) / m.allreduce_time(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_spmv_is_memory_bound_on_all_machines() {
        // The paper's core claim: for SpMV (~ 1 flop per 6+ bytes), the
        // memory term dominates the flop term on every tested machine.
        for m in [
            MachineSpec::asci_red(),
            MachineSpec::asci_blue_pacific(),
            MachineSpec::cray_t3e(),
            MachineSpec::origin2000(),
        ] {
            let flops = 2e6;
            let bytes = 12e6; // ~6 bytes per flop, typical CSR
            let mem_time = bytes / m.stream_bytes_per_s;
            assert!(
                (m.compute_time(flops, bytes, 1.0) - mem_time).abs() < 1e-12,
                "{} should be bandwidth bound",
                m.name
            );
        }
    }

    #[test]
    fn cache_geometries_are_valid() {
        for m in [
            MachineSpec::asci_red(),
            MachineSpec::asci_blue_pacific(),
            MachineSpec::cray_t3e(),
            MachineSpec::origin2000(),
        ] {
            // Constructing the simulator validates geometry invariants.
            let _ = crate::hierarchy::MemoryHierarchy::new(m.l1, m.l2, m.tlb);
        }
    }
}
