//! Instruction-scheduling performance model for the flux phase.
//!
//! The paper's companion analysis ([Gropp et al., Parallel CFD'99]) splits
//! the application into a *memory-bandwidth-bound* phase (sparse solves —
//! modeled in [`crate::spmv_model`]) and an *instruction-scheduling-bound*
//! phase: the flux kernel has enough register reuse that its ceiling is "the
//! number of basic operations that can be performed in a single clock
//! cycle", not the memory system.  This module estimates that ceiling from
//! an operation mix and a per-machine issue model, reproducing the paper's
//! observation that the flux phase runs at a modest, *bandwidth-independent*
//! fraction of peak — which is exactly why it benefits from a second
//! processor per node (Table 5) while the solve phase does not.

/// Operation counts of one kernel body execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionMix {
    /// Floating-point additions/subtractions.
    pub fadd: u64,
    /// Floating-point multiplications.
    pub fmul: u64,
    /// Floating-point divisions (unpipelined, expensive).
    pub fdiv: u64,
    /// Floating-point square roots (unpipelined, expensive).
    pub fsqrt: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Integer/address operations.
    pub int_ops: u64,
}

impl InstructionMix {
    /// Total floating-point operations (the flop count reported by HPM-style
    /// counters: divides and square roots count once).
    pub fn flops(&self) -> u64 {
        self.fadd + self.fmul + self.fdiv + self.fsqrt
    }

    /// An estimate of the Rusanov edge-flux body for `ncomp` components:
    /// two flux evaluations, the dissipation term, two wave speeds (each
    /// with one sqrt), and the scatter/gather bookkeeping.
    pub fn rusanov_edge_flux(ncomp: usize) -> Self {
        let m = ncomp as u64;
        InstructionMix {
            // Per flux: theta (2m-1 madds) + m rows (~2 ops each); x2 fluxes
            // + dissipation (2m) + averaging (2m).
            fadd: 8 * m + 6,
            fmul: 9 * m + 6,
            fdiv: 1,
            fsqrt: 2,
            loads: 4 * m + 8,
            stores: 2 * m,
            int_ops: 12,
        }
    }
}

/// A simple in-order superscalar issue model (the paper's machines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssueModel {
    /// Clock rate, Hz.
    pub clock_hz: f64,
    /// Float add/mul issued per cycle (e.g. 1 on the P6, 2 on the R10000 /
    /// Alpha 21164 with separate add and multiply pipes).
    pub fp_per_cycle: f64,
    /// Loads+stores issued per cycle.
    pub mem_ops_per_cycle: f64,
    /// Integer ops per cycle.
    pub int_per_cycle: f64,
    /// Cycles per (unpipelined) divide.
    pub div_cycles: f64,
    /// Cycles per (unpipelined) square root.
    pub sqrt_cycles: f64,
}

impl IssueModel {
    /// 333 MHz Pentium II (ASCI Red nodes).
    pub fn pentium_ii_333() -> Self {
        Self {
            clock_hz: 333e6,
            fp_per_cycle: 1.0,
            mem_ops_per_cycle: 1.0,
            int_per_cycle: 2.0,
            div_cycles: 32.0,
            sqrt_cycles: 28.0,
        }
    }

    /// 250 MHz MIPS R10000 (Origin 2000).
    pub fn r10000_250() -> Self {
        Self {
            clock_hz: 250e6,
            fp_per_cycle: 2.0,
            mem_ops_per_cycle: 1.0,
            int_per_cycle: 2.0,
            div_cycles: 19.0,
            sqrt_cycles: 33.0,
        }
    }

    /// Cycles to retire one kernel body, bounded by the binding port.
    pub fn cycles(&self, mix: &InstructionMix) -> f64 {
        let fp = (mix.fadd + mix.fmul) as f64 / self.fp_per_cycle;
        let mem = (mix.loads + mix.stores) as f64 / self.mem_ops_per_cycle;
        let int = mix.int_ops as f64 / self.int_per_cycle;
        let serial = mix.fdiv as f64 * self.div_cycles + mix.fsqrt as f64 * self.sqrt_cycles;
        fp.max(mem).max(int) + serial
    }

    /// Achievable flop rate on this kernel (flop/s), i.e. the
    /// instruction-scheduling ceiling the paper contrasts with the memory
    /// ceiling.
    pub fn achievable_flops(&self, mix: &InstructionMix) -> f64 {
        mix.flops() as f64 / self.cycles(mix) * self.clock_hz
    }

    /// Fraction of nominal peak (`fp_per_cycle * clock`) this kernel reaches.
    pub fn efficiency(&self, mix: &InstructionMix) -> f64 {
        self.achievable_flops(mix) / (self.fp_per_cycle * self.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_kernel_is_scheduling_bound_not_memory_bound() {
        // The flux mix has high flop density: its ceiling is set by the FP
        // and serial (sqrt/div) ports, far above what the memory port would
        // allow for the solve phase.
        let mix = InstructionMix::rusanov_edge_flux(4);
        let m = IssueModel::pentium_ii_333();
        let eff = m.efficiency(&mix);
        // The paper's observation: a useful but modest fraction of peak.
        assert!(eff > 0.1 && eff < 0.8, "flux efficiency {eff}");
    }

    #[test]
    fn serial_ops_dominate_when_added() {
        let mut mix = InstructionMix::rusanov_edge_flux(4);
        let m = IssueModel::pentium_ii_333();
        let base = m.cycles(&mix);
        mix.fdiv += 10;
        assert!(m.cycles(&mix) > base + 300.0);
    }

    #[test]
    fn r10000_dual_issue_beats_p6_on_fp() {
        let mix = InstructionMix {
            fadd: 100,
            fmul: 100,
            loads: 50,
            ..Default::default()
        };
        let p6 = IssueModel::pentium_ii_333();
        let r10k = IssueModel::r10000_250();
        // Per-cycle throughput: R10000 retires the FP work in half the
        // cycles even at a lower clock.
        assert!(r10k.cycles(&mix) < p6.cycles(&mix));
    }

    #[test]
    fn compressible_costs_more_than_incompressible() {
        let m = IssueModel::r10000_250();
        let c4 = m.cycles(&InstructionMix::rusanov_edge_flux(4));
        let c5 = m.cycles(&InstructionMix::rusanov_edge_flux(5));
        assert!(c5 > c4);
    }

    #[test]
    fn flop_count_excludes_memory_ops() {
        let mix = InstructionMix {
            fadd: 3,
            fmul: 4,
            fdiv: 1,
            fsqrt: 2,
            loads: 100,
            stores: 50,
            int_ops: 10,
        };
        assert_eq!(mix.flops(), 10);
    }

    #[test]
    fn achievable_rate_is_below_peak() {
        let mix = InstructionMix::rusanov_edge_flux(5);
        for m in [IssueModel::pentium_ii_333(), IssueModel::r10000_250()] {
            let rate = m.achievable_flops(&mix);
            assert!(rate > 0.0);
            assert!(rate <= m.fp_per_cycle * m.clock_hz * 1.0001);
        }
    }
}
