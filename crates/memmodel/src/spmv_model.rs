//! Bandwidth-based SpMV performance model (the "simple performance models"
//! of the abstract, developed in the companion paper Gropp/Kaushik/Keyes/
//! Smith, *Toward realistic performance bounds for implicit CFD codes*,
//! Parallel CFD'99).
//!
//! For a matrix with `N` block rows, block size `b`, and `nz` stored blocks,
//! one SpMV must move at least:
//!
//! * the matrix values once: `8 * nz * b*b` bytes,
//! * the column indices once: `4 * nz` (BCSR) or `4 * nz * b*b`-equivalent
//!   per-point indices (CSR),
//! * the row pointers once, the source vector roughly once (with perfect
//!   reuse; a `miss_factor >= 1` models imperfect reuse), and the
//!   destination once.
//!
//! Dividing by the achievable (STREAM) bandwidth yields an upper bound on
//! performance that real sparse kernels approach within 10–20% — the paper's
//! argument for why flop-centric tuning is futile and layout-centric tuning
//! (blocking, Table 1) pays.

/// Byte traffic of one SpMV in a given storage format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvTraffic {
    /// Matrix value bytes.
    pub values: f64,
    /// Index bytes (column indices + row pointers).
    pub indices: f64,
    /// Source-vector bytes (with the given reuse factor).
    pub source: f64,
    /// Destination-vector bytes.
    pub destination: f64,
}

impl SpmvTraffic {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.values + self.indices + self.source + self.destination
    }
}

/// Traffic of point CSR: one `u32` index per stored entry.
///
/// `miss_factor >= 1` scales the source-vector traffic to model imperfect
/// cache reuse of the gathered vector (1.0 = each entry of `x` loaded from
/// memory exactly once).
pub fn csr_traffic(nrows: usize, nnz: usize, miss_factor: f64) -> SpmvTraffic {
    assert!(miss_factor >= 1.0);
    SpmvTraffic {
        values: 8.0 * nnz as f64,
        indices: 4.0 * nnz as f64 + 8.0 * (nrows as f64 + 1.0),
        source: 8.0 * nrows as f64 * miss_factor,
        destination: 8.0 * nrows as f64,
    }
}

/// Traffic of BCSR with block size `b`: one `u32` index per *block*.
pub fn bcsr_traffic(nbrows: usize, nblocks: usize, b: usize, miss_factor: f64) -> SpmvTraffic {
    assert!(miss_factor >= 1.0);
    let n = (nbrows * b) as f64;
    SpmvTraffic {
        values: 8.0 * (nblocks * b * b) as f64,
        indices: 4.0 * nblocks as f64 + 8.0 * (nbrows as f64 + 1.0),
        source: 8.0 * n * miss_factor,
        destination: 8.0 * n,
    }
}

/// Flop count of one SpMV (2 flops per stored scalar entry).
pub fn spmv_flops(nnz_scalars: usize) -> f64 {
    2.0 * nnz_scalars as f64
}

/// Predicted SpMV execution time: traffic / bandwidth.
pub fn predicted_time(traffic: &SpmvTraffic, bandwidth_bytes_per_s: f64) -> f64 {
    assert!(bandwidth_bytes_per_s > 0.0);
    traffic.total() / bandwidth_bytes_per_s
}

/// Predicted Mflop/s of an SpMV bound by memory bandwidth.
pub fn predicted_mflops(
    nnz_scalars: usize,
    traffic: &SpmvTraffic,
    bandwidth_bytes_per_s: f64,
) -> f64 {
    spmv_flops(nnz_scalars) / predicted_time(traffic, bandwidth_bytes_per_s) / 1e6
}

/// The blocking speedup the model predicts: CSR time / BCSR time for the
/// same logical matrix.
pub fn predicted_blocking_speedup(
    nbrows: usize,
    nblocks: usize,
    b: usize,
    miss_factor: f64,
) -> f64 {
    let csr = csr_traffic(nbrows * b, nblocks * b * b, miss_factor);
    let bcsr = bcsr_traffic(nbrows, nblocks, b, miss_factor);
    csr.total() / bcsr.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_traffic_accounts_all_arrays() {
        let t = csr_traffic(100, 700, 1.0);
        assert_eq!(t.values, 5600.0);
        assert_eq!(t.indices, 2800.0 + 808.0);
        assert_eq!(t.source, 800.0);
        assert_eq!(t.destination, 800.0);
        assert_eq!(t.total(), 5600.0 + 3608.0 + 1600.0);
    }

    #[test]
    fn blocking_reduces_traffic() {
        // Same logical matrix: 1000 block rows, 7 blocks/row, b = 4.
        let nb = 1000;
        let blocks = 7 * nb;
        let b = 4;
        let csr = csr_traffic(nb * b, blocks * b * b, 1.0);
        let bcsr = bcsr_traffic(nb, blocks, b, 1.0);
        assert!(bcsr.total() < csr.total());
        assert!(
            bcsr.indices * 10.0 < csr.indices,
            "indices shrink ~16x for b=4"
        );
        let speedup = predicted_blocking_speedup(nb, blocks, b, 1.0);
        assert!(
            speedup > 1.15 && speedup < 1.6,
            "b=4 blocking buys ~20-40% in the bandwidth model: {speedup}"
        );
    }

    #[test]
    fn bandwidth_bound_mflops_is_far_below_peak() {
        // On ASCI Red-like numbers: 280 MB/s, CSR with ~7 nnz/row.
        let n = 100_000;
        let nnz = 7 * n;
        let t = csr_traffic(n, nnz, 1.2);
        let mflops = predicted_mflops(nnz, &t, 280e6);
        // Peak is 333 Mflop/s; the model must land far below (the paper
        // observes sparse kernels at ~10-20% of peak).
        assert!(mflops < 100.0, "{mflops}");
        assert!(mflops > 10.0, "{mflops}");
    }

    #[test]
    fn miss_factor_increases_time() {
        let t1 = csr_traffic(1000, 7000, 1.0);
        let t2 = csr_traffic(1000, 7000, 3.0);
        assert!(t2.total() > t1.total());
        assert!(predicted_time(&t2, 1e8) > predicted_time(&t1, 1e8));
    }

    #[test]
    fn flops_count() {
        assert_eq!(spmv_flops(10), 20.0);
    }
}
