//! A STREAM benchmark (McCalpin) — the sustainable-memory-bandwidth
//! yardstick the paper uses for the sparse solve phase (Section 2.2).
//!
//! The four canonical kernels are measured on the *host* machine; the
//! returned triad bandwidth is what the SpMV performance model divides by.
//! Array sizes default to 4x the last-level cache of typical hosts so the
//! measurement reflects memory, not cache.

use std::time::Instant;

/// Results of one STREAM run, bytes/second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// `c[i] = a[i]` — 16 bytes per iteration.
    pub copy: f64,
    /// `b[i] = s * c[i]` — 16 bytes per iteration.
    pub scale: f64,
    /// `c[i] = a[i] + b[i]` — 24 bytes per iteration.
    pub add: f64,
    /// `a[i] = b[i] + s * c[i]` — 24 bytes per iteration.
    pub triad: f64,
    /// Elements per array used.
    pub n: usize,
}

impl StreamResult {
    /// The conventional single-number summary (triad).
    pub fn bandwidth(&self) -> f64 {
        self.triad
    }
}

fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run STREAM with `n` doubles per array and `reps` timed repetitions
/// (best-of, per STREAM convention).
pub fn run_stream(n: usize, reps: usize) -> StreamResult {
    assert!(n >= 1024, "array too small for a meaningful measurement");
    assert!(reps >= 1);
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let s = 3.0f64;

    // The explicit element loop *is* the benchmark kernel (memcpy would
    // measure libc, not the STREAM access pattern).
    #[allow(clippy::manual_memcpy)]
    let t_copy = time_best(reps, || {
        for i in 0..n {
            c[i] = a[i];
        }
        std::hint::black_box(&mut c);
    });
    let t_scale = time_best(reps, || {
        for i in 0..n {
            b[i] = s * c[i];
        }
        std::hint::black_box(&mut b);
    });
    let t_add = time_best(reps, || {
        for i in 0..n {
            c[i] = a[i] + b[i];
        }
        std::hint::black_box(&mut c);
    });
    let t_triad = time_best(reps, || {
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
        std::hint::black_box(&mut a);
    });

    let nb = n as f64;
    StreamResult {
        copy: 16.0 * nb / t_copy,
        scale: 16.0 * nb / t_scale,
        add: 24.0 * nb / t_add,
        triad: 24.0 * nb / t_triad,
        n,
    }
}

/// Default measurement: 8M doubles per array (~64 MB each), 3 repetitions.
pub fn run_stream_default() -> StreamResult {
    run_stream(8 * 1024 * 1024, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_reports_positive_bandwidth() {
        let r = run_stream(64 * 1024, 2);
        assert!(r.copy > 0.0 && r.scale > 0.0 && r.add > 0.0 && r.triad > 0.0);
        // Any machine since the 90s moves more than 100 MB/s.
        assert!(r.bandwidth() > 100e6, "triad {} B/s", r.triad);
    }

    #[test]
    fn kernels_are_within_an_order_of_magnitude() {
        let r = run_stream(256 * 1024, 2);
        let rates = [r.copy, r.scale, r.add, r.triad];
        let max = rates.iter().fold(0.0f64, |m, &v| m.max(v));
        let min = rates.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(max / min < 10.0, "rates spread too far: {rates:?}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_arrays() {
        run_stream(16, 1);
    }
}
