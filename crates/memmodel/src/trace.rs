//! Address-trace generation for the application's kernels.
//!
//! Rather than instrument the real kernels, we replay their exact memory
//! reference streams through [`crate::hierarchy::MemoryHierarchy`].  Each
//! array lives in its own region of a synthetic address space (regions are
//! page-aligned and far apart, as a real allocator would place large arrays),
//! and the trace enumerates references in the order the kernel loops make
//! them.  This is the substitute for the R10000 hardware event counters
//! behind Figure 3, and it is exact: every load the kernel would issue is
//! replayed once.

use crate::hierarchy::{MemStats, MemoryHierarchy};
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::layout::FieldLayout;

/// Synthetic base addresses: 4 GiB-aligned regions per array.
const REGION: u64 = 1 << 32;

#[inline]
fn base(region: u64) -> u64 {
    region * REGION
}

/// Replay the CSR SpMV `y = A x` reference stream.
///
/// Per row: the two row-pointer words, then per entry one `u32` column
/// index, one `f64` value, and the gathered `x[col]`; one `y[i]` store per
/// row.  Returns the counter deltas.
pub fn csr_spmv_trace(a: &CsrMatrix, mem: &mut MemoryHierarchy) -> MemStats {
    let before = mem.stats();
    let rp = base(1);
    let ci = base(2);
    let va = base(3);
    let xb = base(4);
    let yb = base(5);
    for i in 0..a.nrows() {
        mem.access(rp + 8 * i as u64);
        mem.access(rp + 8 * (i as u64 + 1));
        let lo = a.row_ptr()[i];
        let hi = a.row_ptr()[i + 1];
        for k in lo..hi {
            mem.access(ci + 4 * k as u64);
            mem.access(va + 8 * k as u64);
            let col = a.col_idx()[k] as u64;
            mem.access(xb + 8 * col);
        }
        mem.access(yb + 8 * i as u64);
    }
    diff(before, mem.stats())
}

/// Replay the BCSR SpMV reference stream (block size `b`): per block one
/// `u32` block-column index, `b*b` values, and the `b`-word `x` sub-vector;
/// `b` stores of `y` per block row.
pub fn bcsr_spmv_trace(a: &BcsrMatrix, mem: &mut MemoryHierarchy) -> MemStats {
    let before = mem.stats();
    let rp = base(1);
    let ci = base(2);
    let va = base(3);
    let xb = base(4);
    let yb = base(5);
    let b = a.block_size() as u64;
    for bi in 0..a.nbrows() {
        mem.access(rp + 8 * bi as u64);
        mem.access(rp + 8 * (bi as u64 + 1));
        for k in a.row_ptr()[bi]..a.row_ptr()[bi + 1] {
            mem.access(ci + 4 * k as u64);
            let vbase = va + 8 * (k as u64) * b * b;
            for w in 0..b * b {
                mem.access(vbase + 8 * w);
            }
            let col = a.col_idx()[k] as u64;
            for w in 0..b {
                mem.access(xb + 8 * (col * b + w));
            }
        }
        for w in 0..b {
            mem.access(yb + 8 * (bi as u64 * b + w));
        }
    }
    diff(before, mem.stats())
}

/// Replay the edge-based flux kernel reference stream.
///
/// Per edge `(p, q)`: the edge's endpoints (8 bytes) and geometry (a 24-byte
/// normal, streamed), the `ncomp` state words of both endpoints (addresses
/// depend on `layout` — this is where interlacing matters), and a
/// read-modify-write of both endpoints' `ncomp` residual words.  With
/// `second_order` the kernel additionally gathers both endpoints'
/// coordinates (3 words) and nodal gradients (`3 * ncomp` words) for the
/// MUSCL reconstruction — the per-vertex footprint that makes the original
/// FUN3D ordering TLB-bound ("about 70% of the execution time is spent
/// serving TLB misses").
pub fn flux_edge_trace_order(
    edges: &[[u32; 2]],
    nverts: usize,
    ncomp: usize,
    layout: FieldLayout,
    second_order: bool,
    mem: &mut MemoryHierarchy,
) -> MemStats {
    let before = mem.stats();
    let eb = base(1); // edge endpoint array
    let gb = base(2); // edge normals
    let qb = base(3); // state vector
    let rb = base(4); // residual vector
    let cb = base(5); // vertex coordinates
    let grb = base(6); // nodal gradients (3 per component)
    let idx = |p: u64, c: u64, m: u64| -> u64 {
        match layout {
            FieldLayout::Interlaced => p * m + c,
            FieldLayout::Segregated => c * nverts as u64 + p,
        }
    };
    let m = ncomp as u64;
    for (k, &[a, b2]) in edges.iter().enumerate() {
        let k = k as u64;
        mem.access(eb + 8 * k);
        mem.access_range(gb + 24 * k, 24);
        for &p in &[a as u64, b2 as u64] {
            for c in 0..m {
                mem.access(qb + 8 * idx(p, c, m));
            }
            if second_order {
                mem.access_range(cb + 24 * p, 24);
                for c in 0..3 * m {
                    mem.access(grb + 8 * idx(p, c, 3 * m));
                }
            }
        }
        for &p in &[a as u64, b2 as u64] {
            for c in 0..m {
                // Read-modify-write: one reference suffices for the cache
                // model (the store hits the just-loaded line).
                mem.access(rb + 8 * idx(p, c, m));
            }
        }
    }
    diff(before, mem.stats())
}

/// First-order flux trace (see [`flux_edge_trace_order`]).
pub fn flux_edge_trace(
    edges: &[[u32; 2]],
    nverts: usize,
    ncomp: usize,
    layout: FieldLayout,
    mem: &mut MemoryHierarchy,
) -> MemStats {
    flux_edge_trace_order(edges, nverts, ncomp, layout, false, mem)
}

/// Replay the forward+backward triangular solve stream of an ILU
/// factorization with the given per-entry value size (8 for f64 storage,
/// 4 for the single-precision variant of Table 2).
pub fn tri_solve_trace(
    l_ptr: &[usize],
    l_idx: &[u32],
    u_ptr: &[usize],
    u_idx: &[u32],
    value_bytes: u64,
    mem: &mut MemoryHierarchy,
) -> MemStats {
    let before = mem.stats();
    let n = l_ptr.len() - 1;
    let lv = base(1);
    let li = base(2);
    let uv = base(3);
    let ui = base(4);
    let dv = base(5);
    let xb = base(6);
    for i in 0..n {
        mem.access(xb + 8 * i as u64);
        for k in l_ptr[i]..l_ptr[i + 1] {
            mem.access(li + 4 * k as u64);
            mem.access(lv + value_bytes * k as u64);
            mem.access(xb + 8 * l_idx[k] as u64);
        }
    }
    for i in (0..n).rev() {
        mem.access(xb + 8 * i as u64);
        for k in u_ptr[i]..u_ptr[i + 1] {
            mem.access(ui + 4 * k as u64);
            mem.access(uv + value_bytes * k as u64);
            mem.access(xb + 8 * u_idx[k] as u64);
        }
        mem.access(dv + value_bytes * i as u64);
    }
    diff(before, mem.stats())
}

fn diff(before: MemStats, after: MemStats) -> MemStats {
    MemStats {
        accesses: after.accesses - before.accesses,
        l1_misses: after.l1_misses - before.l1_misses,
        l2_misses: after.l2_misses - before.l2_misses,
        tlb_misses: after.tlb_misses - before.tlb_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use fun3d_sparse::triplet::TripletMatrix;

    fn tiny_mem() -> MemoryHierarchy {
        MemoryHierarchy::new(
            CacheConfig {
                size_bytes: 2 * 1024,
                line_bytes: 32,
                assoc: 2,
            },
            CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                assoc: 2,
            },
            CacheConfig::tlb(8, 4096),
        )
    }

    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(half_bw);
            let hi = (i + half_bw + 1).min(n);
            for j in lo..hi {
                t.push(i, j, if i == j { 4.0 } else { -0.1 });
            }
        }
        t.to_csr()
    }

    #[test]
    fn spmv_trace_access_count_is_exact() {
        let a = banded(50, 2);
        let mut mem = tiny_mem();
        let s = csr_spmv_trace(&a, &mut mem);
        // Per row: 2 row-ptr + 1 y; per nnz: idx + val + x.
        assert_eq!(s.accesses as usize, 3 * a.nrows() + 3 * a.nnz());
    }

    #[test]
    fn wide_band_misses_more_than_narrow() {
        // Same nnz per row, hugely different bandwidth.
        let n = 4000;
        let narrow = banded(n, 2);
        let mut wide_t = TripletMatrix::new(n, n);
        for i in 0..n {
            wide_t.push(i, i, 4.0);
            // Pseudo-random far-away columns: no spatial locality, like a
            // segregated multicomponent coupling.
            for k in 1..=4usize {
                let j = (i.wrapping_mul(2654435761).wrapping_add(k * 977)) % n;
                if j != i {
                    wide_t.push(i, j, -0.1);
                }
            }
        }
        let wide = wide_t.to_csr();
        let mut m1 = tiny_mem();
        let mut m2 = tiny_mem();
        let sn = csr_spmv_trace(&narrow, &mut m1);
        let sw = csr_spmv_trace(&wide, &mut m2);
        // Streaming traffic (values/indices) is identical; the gap is the
        // gathered x accesses, which all miss in the wide case.
        assert!(
            sw.l1_misses > sn.l1_misses + (3 * n as u64),
            "wide band must thrash: {} vs {}",
            sw.l1_misses,
            sn.l1_misses
        );
        assert!(sw.tlb_misses > sn.tlb_misses);
    }

    #[test]
    fn bcsr_trace_issues_fewer_index_accesses() {
        let b = 4;
        let nb = 100;
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            for j in i.saturating_sub(1)..(i + 2).min(nb) {
                let blk: Vec<f64> = (0..b * b)
                    .map(|k| if k % (b + 1) == 0 { 4.0 } else { 0.5 })
                    .collect();
                t.push_block(i, j, b, &blk);
            }
        }
        let a = t.to_csr();
        let ab = BcsrMatrix::from_csr(&a, b);
        let mut m1 = tiny_mem();
        let mut m2 = tiny_mem();
        let s_csr = csr_spmv_trace(&a, &mut m1);
        let s_bcsr = bcsr_spmv_trace(&ab, &mut m2);
        // BCSR saves the per-entry index loads and the repeated x loads.
        assert!(s_bcsr.accesses < s_csr.accesses);
    }

    #[test]
    fn interlaced_flux_trace_has_fewer_tlb_misses() {
        // A long strip of vertices with nearest-neighbor edges: interlaced
        // layout touches adjacent words; segregated jumps npoints * 8 bytes.
        let nverts = 20_000;
        let ncomp = 4;
        let edges: Vec<[u32; 2]> = (0..nverts as u32 - 1).map(|i| [i, i + 1]).collect();
        let mut m1 = tiny_mem();
        let mut m2 = tiny_mem();
        let si = flux_edge_trace(&edges, nverts, ncomp, FieldLayout::Interlaced, &mut m1);
        let ss = flux_edge_trace(&edges, nverts, ncomp, FieldLayout::Segregated, &mut m2);
        assert_eq!(
            si.accesses, ss.accesses,
            "same reference count, different addresses"
        );
        assert!(
            ss.tlb_misses > 2 * si.tlb_misses,
            "segregated should TLB-thrash: {} vs {}",
            ss.tlb_misses,
            si.tlb_misses
        );
        assert!(ss.l1_misses >= si.l1_misses);
    }

    #[test]
    fn second_order_trace_touches_more_memory() {
        let nverts = 5_000;
        let ncomp = 4;
        let edges: Vec<[u32; 2]> = (0..nverts as u32 - 1).map(|i| [i, i + 1]).collect();
        let mut m1 = tiny_mem();
        let mut m2 = tiny_mem();
        let s1 = flux_edge_trace_order(
            &edges,
            nverts,
            ncomp,
            FieldLayout::Interlaced,
            false,
            &mut m1,
        );
        let s2 = flux_edge_trace_order(
            &edges,
            nverts,
            ncomp,
            FieldLayout::Interlaced,
            true,
            &mut m2,
        );
        assert!(s2.accesses > 2 * s1.accesses);
        assert!(s2.tlb_misses >= s1.tlb_misses);
    }

    #[test]
    fn tri_solve_trace_counts_value_bytes() {
        let a = banded(500, 3);
        let f =
            fun3d_sparse::ilu::IluFactors::factor(&a, &fun3d_sparse::ilu::IluOptions::with_fill(0))
                .unwrap();
        let (lp, li) = f.l_pattern();
        let (up, ui) = f.u_pattern();
        let mut m8 = tiny_mem();
        let mut m4 = tiny_mem();
        let s8 = tri_solve_trace(lp, li, up, ui, 8, &mut m8);
        let s4 = tri_solve_trace(lp, li, up, ui, 4, &mut m4);
        assert_eq!(s8.accesses, s4.accesses);
        // Narrower values pack twice as many entries per line.
        assert!(s4.l1_misses < s8.l1_misses);
    }
}
