//! Synthetic wing-like tetrahedral mesh generation.
//!
//! The paper's M6-wing grids are unavailable, so we generate a graded,
//! jittered, tetrahedralized channel with a swept wing-like bump on its lower
//! wall — a standard Euler test geometry that reproduces the structural
//! properties the paper's experiments depend on: a large irregularly-graded
//! vertex set, an edge list whose natural order can be good (sorted) or bad
//! (colored/shuffled), realistic vertex degrees (~14 interior), and tagged
//! inflow / outflow / wall boundaries.
//!
//! Sizes mirror the paper's three grids through [`MeshFamily`]:
//! 22,677 / 357,900 / 2,761,774 vertices (`Small` / `Medium` / `Large`),
//! approximated by the nearest structured dimensions.

use crate::tet::{BoundaryKind, TetMesh};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's three mesh sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshFamily {
    /// ~22.7k vertices (Table 1 single-processor experiments).
    Small,
    /// ~358k vertices (Tables 2 and 4).
    Medium,
    /// ~2.8M vertices (Figures 1, 2, 4, 5; Tables 3 and 5).
    Large,
}

impl MeshFamily {
    /// The generator spec approximating this family's vertex count.
    pub fn spec(self) -> BumpChannelSpec {
        match self {
            // 41*24*23 = 22,632 ~ 22,677
            MeshFamily::Small => BumpChannelSpec::with_dims(41, 24, 23),
            // 105*60*57 = 359,100 ~ 357,900
            MeshFamily::Medium => BumpChannelSpec::with_dims(105, 60, 57),
            // 210*115*114 = 2,753,100 ~ 2.8M
            MeshFamily::Large => BumpChannelSpec::with_dims(210, 115, 114),
        }
    }

    /// Nominal vertex count of the paper's grid.
    pub fn paper_vertices(self) -> usize {
        match self {
            MeshFamily::Small => 22_677,
            MeshFamily::Medium => 357_900,
            MeshFamily::Large => 2_800_000,
        }
    }
}

/// Parameters of the bump-channel mesh generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BumpChannelSpec {
    /// Vertices in the streamwise (x) direction.
    pub nx: usize,
    /// Vertices in the spanwise (y) direction.
    pub ny: usize,
    /// Vertices in the normal (z) direction.
    pub nz: usize,
    /// Channel length.
    pub length: f64,
    /// Channel span.
    pub span: f64,
    /// Channel height.
    pub height: f64,
    /// Peak height of the wing-like bump (fraction of channel height).
    pub bump_height: f64,
    /// Streamwise center of the bump (fraction of length).
    pub bump_center: f64,
    /// Streamwise half-width of the bump (fraction of length).
    pub bump_width: f64,
    /// Grading strength toward the bump (0 = uniform).
    pub grading: f64,
    /// Interior-node jitter as a fraction of local spacing (breaks the
    /// structured regularity; keep < 0.3 for positive volumes).
    pub jitter: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl BumpChannelSpec {
    /// A spec with the given structured dimensions and default geometry.
    pub fn with_dims(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            length: 4.0,
            span: 2.0,
            height: 2.0,
            bump_height: 0.12,
            bump_center: 0.35,
            bump_width: 0.2,
            grading: 0.5,
            jitter: 0.15,
            seed: 0x464e_3344, // "FN3D"
        }
    }

    /// A spec whose vertex count is close to `target` with channel-like
    /// aspect ratios (nx : ny : nz ~ 1.8 : 1 : 1).
    pub fn with_target_vertices(target: usize) -> Self {
        let base = (target as f64 / 1.8).cbrt();
        let nx = ((1.8 * base).round() as usize).max(3);
        let ny = (base.round() as usize).max(3);
        let nz = (base.round() as usize).max(3);
        Self::with_dims(nx, ny, nz)
    }

    /// Total number of vertices this spec generates.
    pub fn nverts(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The wing-like bump profile: a cosine bump in x, tapered (swept-wing
    /// style) toward the far span.
    fn bump(&self, x: f64, y: f64) -> f64 {
        let xc = self.bump_center * self.length;
        let hw = self.bump_width * self.length;
        let dx = (x - xc) / hw;
        if dx.abs() >= 1.0 {
            return 0.0;
        }
        let profile = 0.5 * (1.0 + (std::f64::consts::PI * dx).cos());
        // Spanwise taper: full height at y=0 (root), zero at the far side.
        let taper = (1.0 - y / self.span).max(0.0);
        self.bump_height * self.height * profile * taper
    }

    /// One-dimensional grading: map uniform `t in [0,1]` monotonically so
    /// points cluster near `center`, keeping the endpoints fixed. Strength
    /// `g = 0` is the identity.
    fn grade(t: f64, center: f64, g: f64) -> f64 {
        let gamma = 1.0 + g;
        let c = center.clamp(0.0, 1.0);
        if c <= 0.0 {
            return t.powf(gamma);
        }
        if c >= 1.0 {
            return 1.0 - (1.0 - t).powf(gamma);
        }
        if t <= c {
            // t=0 -> 0, t=c -> c, clustered toward c.
            c * (1.0 - (1.0 - t / c).powf(gamma))
        } else {
            // t=c -> c, t=1 -> 1, clustered toward c.
            c + (1.0 - c) * ((t - c) / (1.0 - c)).powf(gamma)
        }
    }

    /// Generate the mesh.
    pub fn build(&self) -> TetMesh {
        assert!(
            self.nx >= 2 && self.ny >= 2 && self.nz >= 2,
            "need >= 2 points per axis"
        );
        assert!(
            self.jitter < 0.35,
            "jitter too large for guaranteed positive volumes"
        );
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let vid = |i: usize, j: usize, k: usize| -> u32 { ((i * ny + j) * nz + k) as u32 };

        let mut coords = vec![[0.0f64; 3]; nx * ny * nz];
        for i in 0..nx {
            let tx = Self::grade(i as f64 / (nx - 1) as f64, self.bump_center, self.grading);
            let x = tx * self.length;
            for j in 0..ny {
                let y = (j as f64 / (ny - 1) as f64) * self.span;
                let floor = self.bump(x, y);
                for k in 0..nz {
                    // Cluster toward the lower wall (where the bump lives).
                    let tz = Self::grade(k as f64 / (nz - 1) as f64, 0.0, self.grading);
                    // Shear the column so the bottom follows the bump.
                    let z = floor + tz * (self.height - floor);
                    let mut p = [x, y, z];
                    // Jitter interior nodes only.
                    if i > 0 && i + 1 < nx && j > 0 && j + 1 < ny && k > 0 && k + 1 < nz {
                        let hx = self.length / (nx - 1) as f64;
                        let hy = self.span / (ny - 1) as f64;
                        let hz = self.height / (nz - 1) as f64;
                        p[0] += self.jitter * hx * rng.gen_range(-0.5..0.5);
                        p[1] += self.jitter * hy * rng.gen_range(-0.5..0.5);
                        p[2] += self.jitter * hz * rng.gen_range(-0.5..0.5);
                    }
                    coords[vid(i, j, k) as usize] = p;
                }
            }
        }

        // Kuhn 6-tet subdivision of every hex cell (conforming: all cells
        // use the same main diagonal direction).
        let mut tets: Vec<[u32; 4]> = Vec::with_capacity((nx - 1) * (ny - 1) * (nz - 1) * 6);
        for i in 0..nx - 1 {
            for j in 0..ny - 1 {
                for k in 0..nz - 1 {
                    let v000 = vid(i, j, k);
                    let v100 = vid(i + 1, j, k);
                    let v010 = vid(i, j + 1, k);
                    let v110 = vid(i + 1, j + 1, k);
                    let v001 = vid(i, j, k + 1);
                    let v101 = vid(i + 1, j, k + 1);
                    let v011 = vid(i, j + 1, k + 1);
                    let v111 = vid(i + 1, j + 1, k + 1);
                    // Six tets around the diagonal v000-v111.
                    tets.push([v000, v100, v110, v111]);
                    tets.push([v000, v100, v101, v111]);
                    tets.push([v000, v010, v110, v111]);
                    tets.push([v000, v010, v011, v111]);
                    tets.push([v000, v001, v101, v111]);
                    tets.push([v000, v001, v011, v111]);
                }
            }
        }

        let length = self.length;
        let tol = 1e-9 * length;
        TetMesh::new(coords, tets, move |c| {
            if c[0] < tol {
                BoundaryKind::Inflow
            } else if c[0] > length - tol {
                BoundaryKind::Outflow
            } else {
                BoundaryKind::Wall
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_spec_sizes_are_close_to_paper() {
        for fam in [MeshFamily::Small, MeshFamily::Medium] {
            let spec = fam.spec();
            let ratio = spec.nverts() as f64 / fam.paper_vertices() as f64;
            assert!((0.95..1.05).contains(&ratio), "{fam:?}: ratio {ratio}");
        }
    }

    #[test]
    fn tiny_mesh_is_geometrically_consistent() {
        let mut spec = BumpChannelSpec::with_dims(6, 5, 4);
        spec.jitter = 0.2;
        let m = spec.build();
        assert_eq!(m.nverts(), 120);
        assert_eq!(m.ntets(), 5 * 4 * 3 * 6);
        assert!(
            m.closure_residual() < 1e-10,
            "closure {}",
            m.closure_residual()
        );
        assert!(m.dual_volumes().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn boundary_kinds_are_all_present() {
        let m = BumpChannelSpec::with_dims(6, 5, 4).build();
        let mut counts = std::collections::HashMap::new();
        for f in m.boundary_faces() {
            *counts.entry(f.kind).or_insert(0usize) += 1;
        }
        assert!(counts[&BoundaryKind::Inflow] > 0);
        assert!(counts[&BoundaryKind::Outflow] > 0);
        assert!(counts[&BoundaryKind::Wall] > 0);
        // Inflow/outflow planes: 2 triangles per quad, (ny-1)*(nz-1) quads.
        assert_eq!(counts[&BoundaryKind::Inflow], 2 * 4 * 3);
        assert_eq!(counts[&BoundaryKind::Outflow], 2 * 4 * 3);
    }

    #[test]
    fn bump_raises_the_floor() {
        let spec = BumpChannelSpec::with_dims(21, 6, 6);
        let m = spec.build();
        // Min z near the bump center must exceed the far-field floor (0).
        let xc = spec.bump_center * spec.length;
        let near_bump_floor = m
            .coords()
            .iter()
            .filter(|c| (c[0] - xc).abs() < 0.1 && c[1] < 0.2)
            .map(|c| c[2])
            .fold(f64::INFINITY, f64::min);
        assert!(near_bump_floor > 0.05, "floor at bump: {near_bump_floor}");
    }

    #[test]
    fn interior_degree_is_tetrahedral_like() {
        let m = BumpChannelSpec::with_dims(8, 8, 8).build();
        let g = m.vertex_graph();
        // Kuhn-split interior vertices have degree 14.
        let interior_max = g.max_degree();
        assert!(
            (12..=16).contains(&interior_max),
            "max degree {interior_max}"
        );
        assert!(g.mean_degree() > 8.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = BumpChannelSpec::with_dims(5, 5, 5).build();
        let b = BumpChannelSpec::with_dims(5, 5, 5).build();
        assert_eq!(a.coords(), b.coords());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn target_vertices_lands_near_request() {
        for target in [1000usize, 22_677, 100_000] {
            let spec = BumpChannelSpec::with_target_vertices(target);
            let got = spec.nverts();
            let ratio = got as f64 / target as f64;
            assert!((0.7..1.4).contains(&ratio), "target {target} got {got}");
        }
    }
}
