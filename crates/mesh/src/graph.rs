//! Compressed adjacency graphs over mesh vertices.
//!
//! The vertex graph (two vertices adjacent iff they share a mesh edge) is the
//! object the orderings (RCM) and the partitioners operate on, and its
//! bandwidth is the `beta` parameter of the paper's interlaced cache-miss
//! bound (Eq. 2).

/// An undirected graph in CSR adjacency form. Neighbor lists are sorted and
/// contain no self-loops or duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
}

impl Graph {
    /// Build from an undirected edge list over `n` vertices. Duplicate edges
    /// and self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[[u32; 2]]) -> Self {
        let mut deg = vec![0usize; n + 1];
        for &[a, b] in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            if a != b {
                deg[a as usize + 1] += 1;
                deg[b as usize + 1] += 1;
            }
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let mut adjncy = vec![0u32; deg[n]];
        let mut next = deg.clone();
        for &[a, b] in edges {
            if a != b {
                adjncy[next[a as usize]] = b;
                next[a as usize] += 1;
                adjncy[next[b as usize]] = a;
                next[b as usize] += 1;
            }
        }
        // Sort & dedup each neighbor list, then compact.
        let mut xadj = vec![0usize; n + 1];
        let mut out = Vec::with_capacity(adjncy.len());
        for i in 0..n {
            let lo = deg[i];
            let hi = deg[i + 1];
            let list = &mut adjncy[lo..hi];
            list.sort_unstable();
            let mut prev = u32::MAX;
            for &v in list.iter() {
                if v != prev {
                    out.push(v);
                    prev = v;
                }
            }
            xadj[i + 1] = out.len();
        }
        Self { xadj, adjncy: out }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn nedges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbors of vertex `v`, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.adjncy.len() as f64 / self.n() as f64
        }
    }

    /// Graph bandwidth under the identity ordering:
    /// `max over edges (u,v) of |u - v|`.
    pub fn bandwidth(&self) -> usize {
        let mut beta = 0;
        for v in 0..self.n() {
            for &u in self.neighbors(v) {
                beta = beta.max(v.abs_diff(u as usize));
            }
        }
        beta
    }

    /// Graph bandwidth under the ordering `perm` (old index -> new index).
    pub fn bandwidth_under(&self, perm: &[usize]) -> usize {
        assert_eq!(perm.len(), self.n());
        let mut beta = 0;
        for v in 0..self.n() {
            for &u in self.neighbors(v) {
                beta = beta.max(perm[v].abs_diff(perm[u as usize]));
            }
        }
        beta
    }

    /// Breadth-first search from `start`, returning the distance of every
    /// vertex (`usize::MAX` when unreachable).
    pub fn bfs_distances(&self, start: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n()];
        let mut queue = std::collections::VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                let u = u as usize;
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Connected component id of every vertex (ids are 0..ncomponents, in
    /// order of discovery) and the number of components.
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.n()];
        let mut ncomp = 0u32;
        let mut stack = Vec::new();
        for s in 0..self.n() {
            if comp[s] != u32::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    let u = u as usize;
                    if comp[u] == u32::MAX {
                        comp[u] = ncomp;
                        stack.push(u);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp as usize)
    }

    /// Number of connected components within the vertex subset `subset`
    /// (the fragmentation metric behind Figure 4: p-MeTiS-style partitions
    /// produce subdomains with more than one component).
    pub fn components_within(&self, subset: &[usize]) -> usize {
        let mut in_set = vec![false; self.n()];
        for &v in subset {
            in_set[v] = true;
        }
        let mut seen = vec![false; self.n()];
        let mut ncomp = 0;
        let mut stack = Vec::new();
        for &s in subset {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    let u = u as usize;
                    if in_set[u] && !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
            ncomp += 1;
        }
        ncomp
    }

    /// A pseudo-peripheral vertex found by repeated BFS (George–Liu), used as
    /// the RCM start vertex.
    pub fn pseudo_peripheral(&self, start: usize) -> usize {
        let mut v = start;
        let mut ecc = 0usize;
        loop {
            let dist = self.bfs_distances(v);
            let (far, far_d) = dist
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d != usize::MAX)
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(self.degree(i))))
                .map(|(i, &d)| (i, d))
                .unwrap_or((v, 0));
            if far_d <= ecc {
                return v;
            }
            ecc = far_d;
            v = far;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn builds_sorted_dedup_adjacency() {
        let g = Graph::from_edges(4, &[[0, 1], [1, 0], [2, 1], [3, 3], [0, 2]]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.nedges(), 3);
    }

    #[test]
    fn degrees_and_bandwidth() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.bandwidth(), 1);
        // Reversal keeps bandwidth 1; a shuffle can only increase it.
        let rev: Vec<usize> = (0..5).rev().collect();
        assert_eq!(g.bandwidth_under(&rev), 1);
        let bad = vec![0usize, 4, 1, 3, 2];
        assert!(g.bandwidth_under(&bad) > 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(6);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn components_detected() {
        let g = Graph::from_edges(5, &[[0, 1], [3, 4]]);
        let (comp, n) = g.connected_components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn components_within_subset() {
        let g = path(6); // 0-1-2-3-4-5
                         // Subset {0,1,3,4} splits into {0,1} and {3,4}.
        assert_eq!(g.components_within(&[0, 1, 3, 4]), 2);
        assert_eq!(g.components_within(&[1, 2, 3]), 1);
        assert_eq!(g.components_within(&[]), 0);
    }

    #[test]
    fn pseudo_peripheral_of_path_is_endpoint() {
        let g = path(9);
        let p = g.pseudo_peripheral(4);
        assert!(p == 0 || p == 8, "got {p}");
    }
}
