//! Unstructured tetrahedral meshes for the PETSc-FUN3D reproduction.
//!
//! The paper's experiments run on tetrahedral meshes around an ONERA M6 wing
//! (22,677 / 357,900 / 2.8M vertices).  Those NASA grids are not available,
//! so this crate generates a synthetic family with the same *structural*
//! characteristics that drive the paper's results: an irregular vertex-based
//! edge list over a graded 3-D tetrahedralized domain (a channel with a
//! wing-like bump), a vertex adjacency graph of comparable degree and
//! bandwidth, and boundary faces tagged for inflow / outflow / wall
//! conditions.
//!
//! Modules:
//! * [`graph`] — compressed adjacency graphs, BFS, connected components.
//! * [`generator`] — the graded bump-channel tetrahedral mesh generator.
//! * [`tet`] — the mesh type: vertices, tets, unique edges, median-dual
//!   geometry (edge area normals, vertex dual volumes), boundary faces.
//! * [`metrics`] — ordering-quality metrics (bandwidth, profile, wavefront)
//!   and element quality statistics.
//! * [`reorder`] — vertex orderings (natural, random, Reverse Cuthill–McKee)
//!   and edge orderings (sorted "vertex-based" order vs. the vector-machine
//!   coloring the original FUN3D used — the "NOER" baseline of Figure 3).

pub mod generator;
pub mod graph;
pub mod metrics;
pub mod reorder;
pub mod tet;

pub use generator::{BumpChannelSpec, MeshFamily};
pub use graph::Graph;
pub use reorder::{EdgeOrdering, VertexOrdering};
pub use tet::{BoundaryKind, TetMesh};
