//! Mesh and ordering quality metrics.
//!
//! The paper's layout analysis turns on a handful of structural quantities:
//! the vertex-graph *bandwidth* (the `beta` of Eq. 2), the *profile* /
//! *wavefront* (how many vertices are simultaneously "live" in an ordered
//! sweep — the cache working set of a vertex-ordered kernel), and the
//! element quality that controls how irregular the degree distribution is.
//! This module computes them, both for reporting and for the ordering
//! ablations.

use crate::graph::Graph;
use crate::tet::TetMesh;

/// Ordering-dependent locality metrics of a graph under `perm`
/// (old index -> new index). Use the identity for the stored order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderingMetrics {
    /// `max |i - j|` over edges, in the given ordering.
    pub bandwidth: usize,
    /// Sum over rows of the leftward reach (the storage of a banded/profile
    /// factorization).
    pub profile: u64,
    /// Mean number of "live" vertices during an ordered frontal sweep
    /// (a direct proxy for the working set of vertex-ordered kernels).
    pub mean_wavefront: f64,
    /// Peak wavefront.
    pub max_wavefront: usize,
}

/// Compute ordering metrics for `g` under `perm`.
pub fn ordering_metrics(g: &Graph, perm: &[usize]) -> OrderingMetrics {
    let n = g.n();
    assert_eq!(perm.len(), n);
    // For each new position, the furthest-back neighbor position.
    let mut reach_back = vec![0usize; n];
    let mut bandwidth = 0usize;
    for v in 0..n {
        let pv = perm[v];
        for &u in g.neighbors(v) {
            let pu = perm[u as usize];
            bandwidth = bandwidth.max(pv.abs_diff(pu));
            if pu < pv {
                reach_back[pv] = reach_back[pv].max(pv - pu);
            }
        }
    }
    let profile: u64 = reach_back.iter().map(|&r| r as u64).sum();
    // Wavefront: vertex i is live from its first appearance as a neighbor of
    // something earlier (or itself) until position i. Equivalent: at
    // position k, live = # vertices v with perm[v] >= k that have a
    // neighbor (or are themselves) at position <= k.
    // Compute via birth/death events.
    let mut birth = (0..n).collect::<Vec<usize>>(); // position of first touch
    for v in 0..n {
        let pv = perm[v];
        for &u in g.neighbors(v) {
            let pu = perm[u as usize];
            if pu > pv {
                // u is touched at position pv.
                birth[pu] = birth[pu].min(pv);
            }
        }
    }
    // birth[p] = earliest position at which the vertex at position p is
    // touched; it dies at its own position p.
    let mut delta = vec![0i64; n + 1];
    for p in 0..n {
        delta[birth[p]] += 1;
        delta[p + 1] -= 1;
    }
    let mut live = 0i64;
    let mut total = 0i64;
    let mut max_live = 0i64;
    for d in delta.iter().take(n) {
        live += d;
        total += live;
        max_live = max_live.max(live);
    }
    OrderingMetrics {
        bandwidth,
        profile,
        mean_wavefront: total as f64 / n as f64,
        max_wavefront: max_live as usize,
    }
}

/// Element (tetrahedron) quality statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshQuality {
    /// Minimum tet volume.
    pub min_volume: f64,
    /// Maximum ratio of longest edge to shortest edge within a tet.
    pub max_edge_ratio: f64,
    /// Mean vertex degree of the edge graph.
    pub mean_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
}

/// Compute basic mesh quality statistics.
pub fn mesh_quality(mesh: &TetMesh) -> MeshQuality {
    let coords = mesh.coords();
    let mut min_volume = f64::INFINITY;
    let mut max_edge_ratio: f64 = 1.0;
    for t in mesh.tets() {
        let p: Vec<[f64; 3]> = t.iter().map(|&v| coords[v as usize]).collect();
        let d = |a: [f64; 3], b: [f64; 3]| {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
        };
        let mut emin = f64::INFINITY;
        let mut emax = 0.0f64;
        for i in 0..4 {
            for j in (i + 1)..4 {
                let e = d(p[i], p[j]);
                emin = emin.min(e);
                emax = emax.max(e);
            }
        }
        max_edge_ratio = max_edge_ratio.max(emax / emin);
        // Signed volume (positive by construction).
        let u = [p[1][0] - p[0][0], p[1][1] - p[0][1], p[1][2] - p[0][2]];
        let v = [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]];
        let w = [p[3][0] - p[0][0], p[3][1] - p[0][1], p[3][2] - p[0][2]];
        let vol = (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
            + u[2] * (v[0] * w[1] - v[1] * w[0]))
            / 6.0;
        min_volume = min_volume.min(vol.abs());
    }
    let g = mesh.vertex_graph();
    MeshQuality {
        min_volume,
        max_edge_ratio,
        mean_degree: g.mean_degree(),
        max_degree: g.max_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BumpChannelSpec;
    use crate::reorder::{rcm, vertex_permutation, VertexOrdering};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn path_metrics_are_minimal() {
        let g = path_graph(10);
        let id: Vec<usize> = (0..10).collect();
        let m = ordering_metrics(&g, &id);
        assert_eq!(m.bandwidth, 1);
        assert_eq!(m.profile, 9); // each row after the first reaches back 1
        assert!(m.max_wavefront <= 2);
    }

    #[test]
    fn shuffled_ordering_degrades_every_metric() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        let id: Vec<usize> = (0..g.n()).collect();
        let shuffled = vertex_permutation(&g, VertexOrdering::Random(5));
        let m_nat = ordering_metrics(&g, &id);
        let m_shuf = ordering_metrics(&g, &shuffled);
        assert!(m_shuf.bandwidth > m_nat.bandwidth);
        assert!(m_shuf.profile > m_nat.profile);
        assert!(m_shuf.mean_wavefront > m_nat.mean_wavefront);
    }

    #[test]
    fn rcm_wavefront_beats_random() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        let p_rcm = rcm(&g);
        let p_rand = vertex_permutation(&g, VertexOrdering::Random(9));
        let m_rcm = ordering_metrics(&g, &p_rcm);
        let m_rand = ordering_metrics(&g, &p_rand);
        assert!(m_rcm.mean_wavefront < m_rand.mean_wavefront);
        assert!(m_rcm.bandwidth < m_rand.bandwidth);
    }

    #[test]
    fn quality_of_unjittered_mesh_is_good() {
        let mut spec = BumpChannelSpec::with_dims(6, 5, 5);
        spec.jitter = 0.0;
        spec.grading = 0.0;
        spec.bump_height = 0.0;
        let mesh = spec.build();
        let q = mesh_quality(&mesh);
        assert!(q.min_volume > 0.0);
        // Kuhn tets of a uniform box: edge ratio = sqrt(3) for the cube
        // diagonal over the shortest axis step (anisotropic boxes stretch it).
        assert!(q.max_edge_ratio < 6.0, "{q:?}");
        assert!(q.max_degree >= 12 && q.max_degree <= 16);
    }

    #[test]
    fn jitter_worsens_edge_ratio() {
        let mut a = BumpChannelSpec::with_dims(6, 5, 5);
        a.jitter = 0.0;
        let mut b = a;
        b.jitter = 0.3;
        let qa = mesh_quality(&a.build());
        let qb = mesh_quality(&b.build());
        assert!(qb.max_edge_ratio > qa.max_edge_ratio);
        assert!(qb.min_volume < qa.min_volume);
    }

    #[test]
    fn wavefront_bounded_by_bandwidth_plus_one() {
        let g = BumpChannelSpec::with_dims(6, 5, 4).build().vertex_graph();
        let p = rcm(&g);
        let m = ordering_metrics(&g, &p);
        assert!(m.max_wavefront <= m.bandwidth + 1);
    }
}
