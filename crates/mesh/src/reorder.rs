//! Vertex and edge orderings (Section 2.1.3 of the paper).
//!
//! The original FUN3D was tuned for vector machines: its edges were *colored*
//! so that no two edges in a color share a vertex (enabling vectorization of
//! the flux loop), which destroys temporal locality — consecutive edges touch
//! unrelated vertices, and ~70% of execution time went to TLB misses.  The
//! paper's fix is two orderings applied together:
//!
//! * **vertex ordering**: Reverse Cuthill–McKee, shrinking the graph
//!   bandwidth so that edge endpoints are numbered closely;
//! * **edge ordering**: sort edges by their lower endpoint, converting the
//!   edge loop into a near-vertex loop that reuses each vertex's data while
//!   it is still cached.
//!
//! This module implements both, plus the bad baselines (random shuffle and
//! the vector coloring) needed to regenerate Table 1 and Figure 3.

use crate::graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Vertex (node) ordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexOrdering {
    /// Keep the generator's numbering (already banded for structured-ish
    /// meshes).
    Natural,
    /// Random permutation — the worst case, for ablations.
    Random(u64),
    /// Reverse Cuthill–McKee from a pseudo-peripheral start vertex.
    ReverseCuthillMcKee,
}

/// Edge ordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeOrdering {
    /// Sort edges by (lower endpoint, upper endpoint) — the paper's
    /// reordering ("edges are reordered by default").
    VertexSorted,
    /// Greedy vector-machine coloring: no two edges within a color share a
    /// vertex; edges are emitted color by color.  This is the original
    /// FUN3D ordering, the "NOER"-like cache-hostile baseline.
    VectorColored,
    /// Random shuffle, for ablations.
    Random(u64),
}

/// Compute a vertex permutation (old index -> new index) for the strategy.
pub fn vertex_permutation(g: &Graph, ord: VertexOrdering) -> Vec<usize> {
    match ord {
        VertexOrdering::Natural => (0..g.n()).collect(),
        VertexOrdering::Random(seed) => {
            let mut perm: Vec<usize> = (0..g.n()).collect();
            perm.shuffle(&mut SmallRng::seed_from_u64(seed));
            perm
        }
        VertexOrdering::ReverseCuthillMcKee => rcm(g),
    }
}

/// Reverse Cuthill–McKee ordering: BFS from a pseudo-peripheral vertex,
/// visiting neighbors in increasing-degree order, then reversing.  Returns
/// old index -> new index.  Handles disconnected graphs by restarting from
/// the lowest-numbered unvisited vertex.
pub fn rcm(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut order: Vec<u32> = Vec::with_capacity(n); // visit order: new -> old
    let mut visited = vec![false; n];
    let mut nbrs: Vec<u32> = Vec::new();
    let mut cursor = 0usize;
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let start = g.pseudo_peripheral(seed);
        let start = if visited[start] { seed } else { start };
        visited[start] = true;
        order.push(start as u32);
        while cursor < order.len() {
            let v = order[cursor] as usize;
            cursor += 1;
            nbrs.clear();
            nbrs.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !visited[u as usize]),
            );
            nbrs.sort_unstable_by_key(|&u| g.degree(u as usize));
            for &u in &nbrs {
                visited[u as usize] = true;
                order.push(u);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    // Reverse, then invert into old -> new.
    let mut perm = vec![0usize; n];
    for (newpos, &old) in order.iter().rev().enumerate() {
        perm[old as usize] = newpos;
    }
    perm
}

/// Compute an edge order (a permutation of edge indices: `result[k]` is the
/// index of the edge that should come `k`-th) for the strategy.
pub fn edge_order(edges: &[[u32; 2]], nverts: usize, ord: EdgeOrdering) -> Vec<usize> {
    match ord {
        EdgeOrdering::VertexSorted => {
            let mut idx: Vec<usize> = (0..edges.len()).collect();
            idx.sort_unstable_by_key(|&k| edges[k]);
            idx
        }
        EdgeOrdering::Random(seed) => {
            let mut idx: Vec<usize> = (0..edges.len()).collect();
            idx.shuffle(&mut SmallRng::seed_from_u64(seed));
            idx
        }
        EdgeOrdering::VectorColored => {
            let colors = greedy_edge_coloring(edges, nverts);
            let mut idx: Vec<usize> = (0..edges.len()).collect();
            idx.sort_by_key(|&k| (colors[k], k));
            idx
        }
    }
}

/// Greedy edge coloring: assign each edge the smallest color not already
/// used by another edge at either endpoint.  By Vizing-style bounds the
/// color count is at most `2 * max_degree - 1`; for the flux loop it only
/// matters that edges within a color are vertex-disjoint.
pub fn greedy_edge_coloring(edges: &[[u32; 2]], nverts: usize) -> Vec<u32> {
    // used[v] is a bitmask-ish growable set of colors used at v; to stay
    // allocation-light we store, per vertex, the colors used in a small vec.
    let mut used: Vec<Vec<u32>> = vec![Vec::new(); nverts];
    let mut colors = vec![0u32; edges.len()];
    for (k, &[a, b]) in edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        let mut c = 0u32;
        loop {
            if !used[a].contains(&c) && !used[b].contains(&c) {
                break;
            }
            c += 1;
        }
        colors[k] = c;
        used[a].push(c);
        used[b].push(c);
    }
    colors
}

/// Verify that a coloring is proper (no two same-colored edges share a
/// vertex). Exposed for tests and assertions.
pub fn is_proper_edge_coloring(edges: &[[u32; 2]], colors: &[u32], nverts: usize) -> bool {
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let _ = nverts;
    for (k, &[a, b]) in edges.iter().enumerate() {
        let c = colors[k];
        if !seen.insert((a, c)) || !seen.insert((b, c)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BumpChannelSpec;

    fn grid_graph(n: usize) -> Graph {
        // 2-D n x n grid graph.
        let mut edges = Vec::new();
        let id = |i: usize, j: usize| (i * n + j) as u32;
        for i in 0..n {
            for j in 0..n {
                if i + 1 < n {
                    edges.push([id(i, j), id(i + 1, j)]);
                }
                if j + 1 < n {
                    edges.push([id(i, j), id(i, j + 1)]);
                }
            }
        }
        Graph::from_edges(n * n, &edges)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let g = grid_graph(7);
        let perm = rcm(&g);
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        let g = grid_graph(10);
        // Shuffle the grid, then check RCM recovers a small bandwidth.
        let shuffled = vertex_permutation(&g, VertexOrdering::Random(3));
        // Build the shuffled graph.
        let mut edges = Vec::new();
        for v in 0..g.n() {
            for &u in g.neighbors(v) {
                if (u as usize) > v {
                    edges.push([shuffled[v] as u32, shuffled[u as usize] as u32]);
                }
            }
        }
        let gs = Graph::from_edges(g.n(), &edges);
        let bw_before = gs.bandwidth();
        let perm = rcm(&gs);
        let bw_after = gs.bandwidth_under(&perm);
        assert!(
            bw_after * 3 < bw_before,
            "RCM should sharply reduce bandwidth: {bw_before} -> {bw_after}"
        );
        // A 10x10 grid has optimal bandwidth 10; RCM should be close.
        assert!(bw_after <= 20, "bw_after = {bw_after}");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let g = Graph::from_edges(6, &[[0, 1], [3, 4]]);
        let perm = rcm(&g);
        let mut seen = [false; 6];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn vertex_sorted_edges_are_sorted() {
        let m = BumpChannelSpec::with_dims(5, 4, 4).build();
        let order = edge_order(m.edges(), m.nverts(), EdgeOrdering::VertexSorted);
        let mut prev = [0u32, 0];
        for &k in &order {
            assert!(m.edges()[k] >= prev);
            prev = m.edges()[k];
        }
    }

    #[test]
    fn coloring_is_proper_on_mesh() {
        let m = BumpChannelSpec::with_dims(6, 5, 4).build();
        let colors = greedy_edge_coloring(m.edges(), m.nverts());
        assert!(is_proper_edge_coloring(m.edges(), &colors, m.nverts()));
        let ncolors = colors.iter().max().unwrap() + 1;
        let g = m.vertex_graph();
        assert!(
            (ncolors as usize) < 2 * g.max_degree(),
            "greedy uses < 2*Delta colors: {ncolors} vs Delta {}",
            g.max_degree()
        );
    }

    #[test]
    fn colored_order_separates_adjacent_edges() {
        // In the colored order, consecutive edges (within a color) never
        // share a vertex — the property that kills locality.
        let m = BumpChannelSpec::with_dims(6, 5, 4).build();
        let colors = greedy_edge_coloring(m.edges(), m.nverts());
        let order = edge_order(m.edges(), m.nverts(), EdgeOrdering::VectorColored);
        let mut share = 0usize;
        let mut total = 0usize;
        for w in order.windows(2) {
            let (e1, e2) = (m.edges()[w[0]], m.edges()[w[1]]);
            if colors[w[0]] == colors[w[1]] {
                total += 1;
                if e1[0] == e2[0] || e1[0] == e2[1] || e1[1] == e2[0] || e1[1] == e2[1] {
                    share += 1;
                }
            }
        }
        assert_eq!(
            share, 0,
            "{share}/{total} same-color neighbors share a vertex"
        );
    }

    #[test]
    fn edge_orders_are_permutations() {
        let m = BumpChannelSpec::with_dims(5, 4, 4).build();
        for ord in [
            EdgeOrdering::VertexSorted,
            EdgeOrdering::VectorColored,
            EdgeOrdering::Random(7),
        ] {
            let order = edge_order(m.edges(), m.nverts(), ord);
            let mut seen = vec![false; order.len()];
            for &k in &order {
                assert!(!seen[k], "{ord:?} repeated index");
                seen[k] = true;
            }
        }
    }
}
