//! Tetrahedral mesh storage and median-dual finite-volume geometry.
//!
//! FUN3D is a vertex-centered code: unknowns live at mesh vertices, control
//! volumes are the median duals of the tetrahedra, and the residual is
//! accumulated in a loop over *edges*, each edge carrying the directed area
//! of the dual face separating its two endpoints.  This module computes that
//! geometry exactly (via the barycentric subdivision), because the paper's
//! flux kernels — whose memory behaviour Table 1 and Figure 3 measure — are
//! edge loops over precisely these arrays.

use crate::graph::Graph;

/// Physical classification of a boundary face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Upstream plane: characteristic inflow data.
    Inflow,
    /// Downstream plane: characteristic outflow data.
    Outflow,
    /// Solid (slip) wall, including the wing-like bump.
    Wall,
}

/// A triangular boundary face with its outward area normal (magnitude =
/// face area).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryFace {
    /// The three vertex indices of the face.
    pub verts: [u32; 3],
    /// Outward normal scaled by face area.
    pub normal: [f64; 3],
    /// Physical boundary classification.
    pub kind: BoundaryKind,
}

/// An unstructured tetrahedral mesh with precomputed median-dual geometry.
#[derive(Debug, Clone)]
pub struct TetMesh {
    coords: Vec<[f64; 3]>,
    tets: Vec<[u32; 4]>,
    /// Unique edges, canonical `[lo, hi]` with `lo < hi`.
    edges: Vec<[u32; 2]>,
    /// Directed dual-face area of each edge, oriented from `edge[0]` to
    /// `edge[1]`.
    edge_normals: Vec<[f64; 3]>,
    /// Median-dual control volume of each vertex.
    dual_volumes: Vec<f64>,
    boundary_faces: Vec<BoundaryFace>,
}

#[inline]
fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

#[inline]
fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

#[inline]
fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[inline]
fn scaled(a: [f64; 3], s: f64) -> [f64; 3] {
    [a[0] * s, a[1] * s, a[2] * s]
}

#[inline]
fn add3(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// Signed volume of the tetrahedron `(a, b, c, d)` (positive when `(b-a,
/// c-a, d-a)` is a right-handed triple).
fn signed_volume(a: [f64; 3], b: [f64; 3], c: [f64; 3], d: [f64; 3]) -> f64 {
    dot(sub(b, a), cross(sub(c, a), sub(d, a))) / 6.0
}

impl TetMesh {
    /// Build a mesh from vertex coordinates and tetrahedra, computing unique
    /// edges, dual geometry, and boundary faces. `classify` maps a boundary
    /// face centroid to its physical kind.
    ///
    /// Tets with negative orientation are silently reoriented; degenerate
    /// (zero-volume) tets panic.
    pub fn new(
        coords: Vec<[f64; 3]>,
        mut tets: Vec<[u32; 4]>,
        classify: impl Fn([f64; 3]) -> BoundaryKind,
    ) -> Self {
        let nv = coords.len();
        for t in &tets {
            for &v in t {
                assert!((v as usize) < nv, "tet vertex out of range");
            }
        }
        // Reorient so every tet has positive volume.
        for t in tets.iter_mut() {
            let v = signed_volume(
                coords[t[0] as usize],
                coords[t[1] as usize],
                coords[t[2] as usize],
                coords[t[3] as usize],
            );
            assert!(v != 0.0, "degenerate tetrahedron {t:?}");
            if v < 0.0 {
                t.swap(2, 3);
            }
        }

        // Unique edges.
        let mut edges: Vec<[u32; 2]> = Vec::with_capacity(tets.len() * 6);
        for t in &tets {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let (a, b) = (t[i].min(t[j]), t[i].max(t[j]));
                    edges.push([a, b]);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        // Edge index lookup.
        let edge_of = |a: u32, b: u32| -> usize {
            let key = [a.min(b), a.max(b)];
            edges.binary_search(&key).expect("edge must exist")
        };

        // Median-dual geometry.
        let mut edge_normals = vec![[0.0f64; 3]; edges.len()];
        let mut dual_volumes = vec![0.0f64; nv];
        for t in &tets {
            let p: [[f64; 3]; 4] = [
                coords[t[0] as usize],
                coords[t[1] as usize],
                coords[t[2] as usize],
                coords[t[3] as usize],
            ];
            let vol = signed_volume(p[0], p[1], p[2], p[3]);
            debug_assert!(vol > 0.0);
            for &v in t {
                dual_volumes[v as usize] += vol / 4.0;
            }
            let centroid = scaled(add3(add3(p[0], p[1]), add3(p[2], p[3])), 0.25);
            // All 6 edges of the tet.
            for i in 0..4usize {
                for j in (i + 1)..4 {
                    // Remaining two local vertices.
                    let mut rest = [0usize; 2];
                    let mut r = 0;
                    for k in 0..4 {
                        if k != i && k != j {
                            rest[r] = k;
                            r += 1;
                        }
                    }
                    // Pick (k, l) such that (pi, pj, pk, pl) is positively
                    // oriented; this fixes the winding of the dual quad so
                    // its area vector points from i to j.
                    let (k, l) = if signed_volume(p[i], p[j], p[rest[0]], p[rest[1]]) > 0.0 {
                        (rest[0], rest[1])
                    } else {
                        (rest[1], rest[0])
                    };
                    let m = scaled(add3(p[i], p[j]), 0.5);
                    let f1 = scaled(add3(add3(p[i], p[j]), p[k]), 1.0 / 3.0);
                    let f2 = scaled(add3(add3(p[i], p[j]), p[l]), 1.0 / 3.0);
                    // Quad (m, f1, c, f2) split into triangles (m,f1,c), (m,c,f2).
                    let a1 = scaled(cross(sub(f1, m), sub(centroid, m)), 0.5);
                    let a2 = scaled(cross(sub(centroid, m), sub(f2, m)), 0.5);
                    let area = add3(a1, a2);
                    // Accumulate oriented from edge[0] (= min) to edge[1].
                    let e = edge_of(t[i], t[j]);
                    let sign = if t[i] < t[j] { 1.0 } else { -1.0 };
                    edge_normals[e] = add3(edge_normals[e], scaled(area, sign));
                }
            }
        }

        // Boundary faces: tet faces seen exactly once.
        use std::collections::HashMap;
        let mut face_count: HashMap<[u32; 3], ([u32; 3], u32)> = HashMap::new();
        for t in &tets {
            const FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]];
            for f in FACES.iter() {
                let tri = [t[f[0]], t[f[1]], t[f[2]]];
                let mut key = tri;
                key.sort_unstable();
                face_count
                    .entry(key)
                    .and_modify(|e| e.1 += 1)
                    .or_insert((tri, 1));
            }
        }
        let mut boundary_faces: Vec<BoundaryFace> = Vec::new();
        for (_, (tri, count)) in face_count {
            debug_assert!(count <= 2, "face shared by more than two tets");
            if count == 1 {
                let a = coords[tri[0] as usize];
                let b = coords[tri[1] as usize];
                let c = coords[tri[2] as usize];
                // FACES orderings above are outward for a positively oriented
                // tet: verify and keep the stored winding's normal.
                let n = scaled(cross(sub(b, a), sub(c, a)), 0.5);
                let centroid = scaled(add3(add3(a, b), c), 1.0 / 3.0);
                boundary_faces.push(BoundaryFace {
                    verts: tri,
                    normal: n,
                    kind: classify(centroid),
                });
            }
        }
        // Deterministic order regardless of HashMap iteration.
        boundary_faces.sort_unstable_by_key(|f| {
            let mut k = f.verts;
            k.sort_unstable();
            k
        });

        Self {
            coords,
            tets,
            edges,
            edge_normals,
            dual_volumes,
            boundary_faces,
        }
    }

    /// Number of vertices.
    pub fn nverts(&self) -> usize {
        self.coords.len()
    }

    /// Number of tetrahedra.
    pub fn ntets(&self) -> usize {
        self.tets.len()
    }

    /// Number of unique edges.
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex coordinates.
    pub fn coords(&self) -> &[[f64; 3]] {
        &self.coords
    }

    /// Tetrahedra (positively oriented).
    pub fn tets(&self) -> &[[u32; 4]] {
        &self.tets
    }

    /// Unique edges `[lo, hi]`.
    pub fn edges(&self) -> &[[u32; 2]] {
        &self.edges
    }

    /// Dual-face area normals, oriented `edge[0] -> edge[1]`.
    pub fn edge_normals(&self) -> &[[f64; 3]] {
        &self.edge_normals
    }

    /// Median-dual control volumes per vertex.
    pub fn dual_volumes(&self) -> &[f64] {
        &self.dual_volumes
    }

    /// Boundary faces with outward area normals.
    pub fn boundary_faces(&self) -> &[BoundaryFace] {
        &self.boundary_faces
    }

    /// Total mesh volume (sum of dual volumes == sum of tet volumes).
    pub fn total_volume(&self) -> f64 {
        self.dual_volumes.iter().sum()
    }

    /// The vertex adjacency graph (vertices adjacent iff they share an edge).
    pub fn vertex_graph(&self) -> Graph {
        Graph::from_edges(self.nverts(), &self.edges)
    }

    /// Maximum over vertices of the control-surface closure residual:
    /// for each vertex, the sum of outward dual-face normals plus one third
    /// of each adjacent boundary-face normal must vanish (a constant flux
    /// leaves every control volume unchanged). Exact geometry gives ~1e-12.
    pub fn closure_residual(&self) -> f64 {
        let mut acc = vec![[0.0f64; 3]; self.nverts()];
        for (e, &[a, b]) in self.edges.iter().enumerate() {
            let n = self.edge_normals[e];
            let (a, b) = (a as usize, b as usize);
            acc[a] = add3(acc[a], n);
            acc[b] = sub(acc[b], n);
        }
        for f in &self.boundary_faces {
            let share = scaled(f.normal, 1.0 / 3.0);
            for &v in &f.verts {
                acc[v as usize] = add3(acc[v as usize], share);
            }
        }
        acc.iter().map(|v| dot(*v, *v).sqrt()).fold(0.0, f64::max)
    }

    /// Renumber vertices by `perm` (old index -> new index), producing a new
    /// mesh with identical geometry. Edge canonical order (and normal signs)
    /// are recomputed; edges come out sorted by the new numbering.
    pub fn renumber_vertices(&self, perm: &[usize]) -> TetMesh {
        assert_eq!(perm.len(), self.nverts());
        let n = self.nverts();
        let mut coords = vec![[0.0; 3]; n];
        let mut dual_volumes = vec![0.0; n];
        for old in 0..n {
            coords[perm[old]] = self.coords[old];
            dual_volumes[perm[old]] = self.dual_volumes[old];
        }
        let tets: Vec<[u32; 4]> = self
            .tets
            .iter()
            .map(|t| {
                [
                    perm[t[0] as usize] as u32,
                    perm[t[1] as usize] as u32,
                    perm[t[2] as usize] as u32,
                    perm[t[3] as usize] as u32,
                ]
            })
            .collect();
        let mut edge_pairs: Vec<([u32; 2], [f64; 3])> = self
            .edges
            .iter()
            .zip(&self.edge_normals)
            .map(|(&[a, b], &nrm)| {
                let (na, nb) = (perm[a as usize] as u32, perm[b as usize] as u32);
                if na < nb {
                    ([na, nb], nrm)
                } else {
                    ([nb, na], scaled(nrm, -1.0))
                }
            })
            .collect();
        edge_pairs.sort_unstable_by_key(|&(e, _)| e);
        let edges: Vec<[u32; 2]> = edge_pairs.iter().map(|&(e, _)| e).collect();
        let edge_normals: Vec<[f64; 3]> = edge_pairs.iter().map(|&(_, n)| n).collect();
        let boundary_faces: Vec<BoundaryFace> = self
            .boundary_faces
            .iter()
            .map(|f| BoundaryFace {
                verts: [
                    perm[f.verts[0] as usize] as u32,
                    perm[f.verts[1] as usize] as u32,
                    perm[f.verts[2] as usize] as u32,
                ],
                normal: f.normal,
                kind: f.kind,
            })
            .collect();
        TetMesh {
            coords,
            tets,
            edges,
            edge_normals,
            dual_volumes,
            boundary_faces,
        }
    }

    /// Replace the edge *ordering* (not the vertex numbering): `order[k]`
    /// gives the index into the current edge list of the edge that should
    /// come `k`-th. Used to apply edge reorderings / colorings.
    pub fn reorder_edges(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.edges.len());
        let mut seen = vec![false; order.len()];
        for &o in order {
            assert!(!seen[o], "edge order must be a permutation");
            seen[o] = true;
        }
        self.edges = order.iter().map(|&o| self.edges[o]).collect();
        self.edge_normals = order.iter().map(|&o| self.edge_normals[o]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit cube split into 6 Kuhn tetrahedra.
    pub(crate) fn unit_cube() -> TetMesh {
        let coords = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 1.0],
            [0.0, 1.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        // Kuhn subdivision along the main diagonal 0-7.
        let tets = vec![
            [0u32, 1, 3, 7],
            [0, 1, 5, 7],
            [0, 2, 3, 7],
            [0, 2, 6, 7],
            [0, 4, 5, 7],
            [0, 4, 6, 7],
        ];
        TetMesh::new(coords, tets, |_| BoundaryKind::Wall)
    }

    #[test]
    fn cube_volume_is_one() {
        let m = unit_cube();
        assert!((m.total_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cube_has_19_edges() {
        // 12 cube edges + 6 face diagonals + 1 body diagonal.
        let m = unit_cube();
        assert_eq!(m.nedges(), 19);
        assert_eq!(m.ntets(), 6);
    }

    #[test]
    fn cube_boundary_is_closed() {
        let m = unit_cube();
        // 2 triangles per cube face.
        assert_eq!(m.boundary_faces().len(), 12);
        // Outward normals of a closed surface sum to zero.
        let mut s = [0.0f64; 3];
        let mut total_area = 0.0;
        for f in m.boundary_faces() {
            s = add3(s, f.normal);
            total_area += dot(f.normal, f.normal).sqrt();
        }
        assert!(dot(s, s).sqrt() < 1e-12, "normals must close: {s:?}");
        assert!((total_area - 6.0).abs() < 1e-12, "cube surface area is 6");
    }

    #[test]
    fn boundary_normals_point_outward() {
        let m = unit_cube();
        for f in m.boundary_faces() {
            let c = f
                .verts
                .iter()
                .fold([0.0; 3], |acc, &v| add3(acc, m.coords()[v as usize]));
            let c = scaled(c, 1.0 / 3.0);
            let from_center = sub(c, [0.5, 0.5, 0.5]);
            assert!(
                dot(f.normal, from_center) > 0.0,
                "face {:?} normal {:?} not outward",
                f.verts,
                f.normal
            );
        }
    }

    #[test]
    fn control_surfaces_close() {
        let m = unit_cube();
        assert!(
            m.closure_residual() < 1e-12,
            "residual {}",
            m.closure_residual()
        );
    }

    #[test]
    fn dual_volumes_partition_the_domain() {
        let m = unit_cube();
        let total: f64 = m.dual_volumes().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(m.dual_volumes().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn negative_orientation_is_fixed() {
        let coords = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        // Swapped ordering gives negative volume; constructor must fix it.
        let tets = vec![[0u32, 2, 1, 3]];
        let m = TetMesh::new(coords, tets, |_| BoundaryKind::Wall);
        assert!((m.total_volume() - 1.0 / 6.0).abs() < 1e-14);
        assert!(m.closure_residual() < 1e-14);
    }

    #[test]
    fn renumbering_preserves_geometry() {
        let m = unit_cube();
        let perm = vec![7usize, 2, 5, 0, 3, 6, 1, 4];
        let r = m.renumber_vertices(&perm);
        assert!((r.total_volume() - 1.0).abs() < 1e-12);
        assert!(r.closure_residual() < 1e-12);
        assert_eq!(r.nedges(), m.nedges());
        // Coordinates moved with the permutation.
        for old in 0..8 {
            assert_eq!(r.coords()[perm[old]], m.coords()[old]);
        }
        // Edges are canonical and sorted.
        for w in r.edges().windows(2) {
            assert!(w[0] < w[1]);
        }
        for &[a, b] in r.edges() {
            assert!(a < b);
        }
    }

    #[test]
    fn reorder_edges_permutes_normals_with_edges() {
        let mut m = unit_cube();
        let e0 = m.edges()[0];
        let n0 = m.edge_normals()[0];
        let order: Vec<usize> = (0..m.nedges()).rev().collect();
        m.reorder_edges(&order);
        assert_eq!(m.edges()[m.nedges() - 1], e0);
        assert_eq!(m.edge_normals()[m.nedges() - 1], n0);
        assert!(m.closure_residual() < 1e-12);
    }

    #[test]
    fn vertex_graph_matches_edges() {
        let m = unit_cube();
        let g = m.vertex_graph();
        assert_eq!(g.nedges(), m.nedges());
        // Vertex 0 connects to everything (hub of the Kuhn split).
        assert_eq!(g.degree(0), 7);
    }
}
