//! Property-based tests for mesh generation, geometry, and orderings.

use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_mesh::graph::Graph;
use fun3d_mesh::reorder::{
    edge_order, greedy_edge_coloring, is_proper_edge_coloring, rcm, vertex_permutation,
    EdgeOrdering, VertexOrdering,
};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (3usize..8, 3usize..7, 3usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated mesh has consistent geometry: positive dual volumes,
    /// closed control surfaces, and volume equal to the sum of tet volumes.
    #[test]
    fn generated_meshes_are_geometrically_consistent(
        (nx, ny, nz) in small_dims(),
        jitter in 0.0f64..0.3,
        bump in 0.0f64..0.25,
        seed in 0u64..500,
    ) {
        let mut spec = BumpChannelSpec::with_dims(nx, ny, nz);
        spec.jitter = jitter;
        spec.bump_height = bump;
        spec.seed = seed;
        let mesh = spec.build();
        prop_assert!(mesh.dual_volumes().iter().all(|&v| v > 0.0));
        prop_assert!(mesh.closure_residual() < 1e-9, "closure {}", mesh.closure_residual());
        prop_assert_eq!(mesh.ntets(), (nx - 1) * (ny - 1) * (nz - 1) * 6);
    }

    /// Renumbering with any random permutation preserves every geometric
    /// invariant.
    #[test]
    fn renumbering_is_geometry_invariant((nx, ny, nz) in small_dims(), seed in 0u64..500) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mesh = BumpChannelSpec::with_dims(nx, ny, nz).build();
        let mut perm: Vec<usize> = (0..mesh.nverts()).collect();
        perm.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let r = mesh.renumber_vertices(&perm);
        prop_assert!((r.total_volume() - mesh.total_volume()).abs() < 1e-10);
        prop_assert!(r.closure_residual() < 1e-9);
        prop_assert_eq!(r.nedges(), mesh.nedges());
        // Dual volume moves with the vertex.
        for v in 0..mesh.nverts() {
            prop_assert!((r.dual_volumes()[perm[v]] - mesh.dual_volumes()[v]).abs() < 1e-14);
        }
    }

    /// RCM never loses to a random ordering on bandwidth.
    #[test]
    fn rcm_beats_random_bandwidth((nx, ny, nz) in small_dims(), seed in 0u64..500) {
        let g = BumpChannelSpec::with_dims(nx, ny, nz).build().vertex_graph();
        let p_rcm = rcm(&g);
        let p_rand = vertex_permutation(&g, VertexOrdering::Random(seed));
        prop_assert!(g.bandwidth_under(&p_rcm) <= g.bandwidth_under(&p_rand));
    }

    /// Greedy edge coloring is always proper and uses < 2*Delta colors.
    #[test]
    fn edge_coloring_proper((nx, ny, nz) in small_dims()) {
        let mesh = BumpChannelSpec::with_dims(nx, ny, nz).build();
        let colors = greedy_edge_coloring(mesh.edges(), mesh.nverts());
        prop_assert!(is_proper_edge_coloring(mesh.edges(), &colors, mesh.nverts()));
        let g = mesh.vertex_graph();
        let ncolors = *colors.iter().max().unwrap() as usize + 1;
        prop_assert!(ncolors < 2 * g.max_degree());
    }

    /// Every edge-ordering strategy yields a permutation of the edges.
    #[test]
    fn edge_orders_are_permutations(seed in 0u64..200) {
        let mesh = BumpChannelSpec::with_dims(5, 4, 4).build();
        for ord in [
            EdgeOrdering::VertexSorted,
            EdgeOrdering::VectorColored,
            EdgeOrdering::Random(seed),
        ] {
            let order = edge_order(mesh.edges(), mesh.nverts(), ord);
            let mut seen = vec![false; order.len()];
            for &k in &order {
                prop_assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }

    /// BFS distances are symmetric on undirected graphs.
    #[test]
    fn bfs_distance_symmetry(edges in proptest::collection::vec((0u32..20, 0u32..20), 5..40)) {
        let pairs: Vec<[u32; 2]> = edges.iter().map(|&(a, b)| [a, b]).collect();
        let g = Graph::from_edges(20, &pairs);
        let d0 = g.bfs_distances(0);
        for v in 0..20 {
            if d0[v] != usize::MAX {
                let dv = g.bfs_distances(v);
                prop_assert_eq!(dv[0], d0[v], "d(0,{}) != d({},0)", v, v);
            }
        }
    }
}
