//! Mesh / graph partitioners in the spirit of MeTiS (Section 2.3.2,
//! Figure 4 of the paper).
//!
//! The paper contrasts two MeTiS algorithms:
//!
//! * **k-MeTiS** — k-way multilevel partitioning that *minimizes the number
//!   of noncontiguous subdomains and subdomain connectivity*, at the price of
//!   a few percent load imbalance.  Our analogue is greedy graph growing
//!   ([`partition_kway`]): regions grow breadth-first around well-separated
//!   seeds, preferring vertices with many neighbors inside the region, so
//!   subdomains come out connected and compact.
//! * **p-MeTiS** — recursive bisection that balances vertices *exactly*, but
//!   "generates disconnected pieces within a single subdomain", which
//!   effectively increases the number of blocks in block-Jacobi/Schwarz
//!   preconditioning and degrades convergence.  Our analogue
//!   ([`partition_pway`]) recursively bisects a BFS ordering at the exact
//!   midpoint: the prefix half is connected but the complement half need not
//!   be, reproducing the fragmentation (and its algorithmic cost) faithfully.
//!
//! [`PartitionQuality`] measures what Figure 4 turns on: balance, edge cut,
//! and the number of connected fragments per subdomain.

use fun3d_mesh::graph::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod overlap;
pub mod refine;

pub use overlap::expand_overlap;
pub use refine::refine_boundary;

/// A k-way vertex partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part id of each vertex.
    pub part: Vec<u32>,
    /// Number of parts.
    pub nparts: usize,
}

impl Partition {
    /// The vertices of each part, in ascending vertex order.
    pub fn subdomains(&self) -> Vec<Vec<usize>> {
        let mut subs = vec![Vec::new(); self.nparts];
        for (v, &p) in self.part.iter().enumerate() {
            subs[p as usize].push(v);
        }
        subs
    }

    /// Part sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nparts];
        for &p in &self.part {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Quality metrics against the graph the partition was built on.
    pub fn quality(&self, g: &Graph) -> PartitionQuality {
        let sizes = self.sizes();
        let n = self.part.len();
        let ideal = n as f64 / self.nparts as f64;
        let imbalance = sizes
            .iter()
            .map(|&s| s as f64 / ideal)
            .fold(0.0f64, f64::max);
        let mut edge_cut = 0usize;
        let mut boundary = vec![false; n];
        for v in 0..n {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if self.part[v] != self.part[u] {
                    boundary[v] = true;
                    if v < u {
                        edge_cut += 1;
                    }
                }
            }
        }
        let subs = self.subdomains();
        let mut fragments = 0usize;
        let mut max_fragments = 0usize;
        for s in &subs {
            let c = g.components_within(s);
            fragments += c;
            max_fragments = max_fragments.max(c);
        }
        let interface_vertices = boundary.iter().filter(|&&b| b).count();
        PartitionQuality {
            nparts: self.nparts,
            sizes,
            imbalance,
            edge_cut,
            total_fragments: fragments,
            max_fragments_per_part: max_fragments,
            interface_vertices,
        }
    }
}

/// Quality metrics of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub nparts: usize,
    /// Vertices per part.
    pub sizes: Vec<usize>,
    /// `max_p size_p / (n / nparts)` — 1.0 is perfect.
    pub imbalance: f64,
    /// Edges whose endpoints lie in different parts.
    pub edge_cut: usize,
    /// Total connected components summed over parts (== nparts when every
    /// subdomain is contiguous).
    pub total_fragments: usize,
    /// Worst fragmentation of any single part.
    pub max_fragments_per_part: usize,
    /// Vertices adjacent to another part (ghost-exchange volume proxy).
    pub interface_vertices: usize,
}

/// Greedy graph-growing k-way partition (k-MeTiS analogue).
///
/// Seeds are chosen far apart (farthest-point BFS sampling); each region then
/// grows one vertex at a time, taking the frontier vertex with the most
/// already-assigned neighbors in the region (a cut-minimizing gain rule),
/// until it reaches `ceil(1.03 * n / k)`.  Unassigned leftovers join the
/// smallest adjacent region.  Subdomains come out connected whenever the
/// graph is.
pub fn partition_kway(g: &Graph, k: usize, seed: u64) -> Partition {
    assert!(k >= 1, "k must be >= 1");
    let n = g.n();
    assert!(n >= k, "more parts than vertices");
    let balance_tol = 1.03;
    let cap = ((balance_tol * n as f64 / k as f64).ceil() as usize).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut part = vec![u32::MAX; n];

    // Farthest-point seeding.
    let mut seeds = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    seeds.push(g.pseudo_peripheral(first));
    let mut dist = g.bfs_distances(seeds[0]);
    for _ in 1..k {
        let far = (0..n)
            .filter(|&v| dist[v] != usize::MAX)
            .max_by_key(|&v| dist[v])
            .unwrap_or_else(|| rng.gen_range(0..n));
        seeds.push(far);
        let d2 = g.bfs_distances(far);
        for v in 0..n {
            dist[v] = dist[v].min(d2[v]);
        }
    }

    // Grow regions round-robin so no region starves.
    let mut frontiers: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut sizes = vec![0usize; k];
    for (p, &s) in seeds.iter().enumerate() {
        if part[s] == u32::MAX {
            part[s] = p as u32;
            sizes[p] += 1;
            frontiers[p].extend(g.neighbors(s).iter().map(|&u| u as usize));
        }
    }
    let mut active = true;
    while active {
        active = false;
        for p in 0..k {
            if sizes[p] >= cap {
                continue;
            }
            // Pick the frontier vertex with maximum internal gain; break
            // ties toward low degree (fewer new cut edges).
            frontiers[p].retain(|&v| part[v] == u32::MAX);
            let mut best: Option<(usize, usize, usize)> = None;
            for &v in frontiers[p].iter() {
                let gain = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| part[u as usize] == p as u32)
                    .count();
                let cand = (gain, usize::MAX - g.degree(v), v);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
            if let Some((_, _, v)) = best {
                part[v] = p as u32;
                sizes[p] += 1;
                active = true;
                for &u in g.neighbors(v) {
                    if part[u as usize] == u32::MAX {
                        frontiers[p].push(u as usize);
                    }
                }
            }
        }
    }
    // Leftovers (disconnected graph or all regions at cap): attach to the
    // smallest adjacent region, else the smallest region overall.
    loop {
        let mut assigned_any = false;
        let mut remaining = false;
        for v in 0..n {
            if part[v] != u32::MAX {
                continue;
            }
            let adj_part = g
                .neighbors(v)
                .iter()
                .filter(|&&u| part[u as usize] != u32::MAX)
                .map(|&u| part[u as usize] as usize)
                .min_by_key(|&p| sizes[p]);
            if let Some(p) = adj_part {
                part[v] = p as u32;
                sizes[p] += 1;
                assigned_any = true;
            } else {
                remaining = true;
            }
        }
        if !remaining {
            break;
        }
        if !assigned_any {
            for v in 0..n {
                if part[v] == u32::MAX {
                    let p = (0..k).min_by_key(|&p| sizes[p]).unwrap();
                    part[v] = p as u32;
                    sizes[p] += 1;
                }
            }
            break;
        }
    }
    Partition { part, nparts: k }
}

/// Recursive exact-balance bisection (p-MeTiS analogue).
///
/// Vertices are BFS-ordered from a random vertex of the subgraph and split at
/// the exact proportional point.  Every part ends within `k` vertices of
/// perfect balance; the trailing halves may be disconnected — exactly the
/// behaviour the paper attributes to p-MeTiS.
pub fn partition_pway(g: &Graph, k: usize, seed: u64) -> Partition {
    assert!(k >= 1, "k must be >= 1");
    let n = g.n();
    assert!(n >= k, "more parts than vertices");
    let mut part = vec![0u32; n];
    let all: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_part = 0u32;
    bisect_recursive(g, &all, k, &mut part, &mut next_part, &mut rng);
    Partition { part, nparts: k }
}

fn bisect_recursive(
    g: &Graph,
    subset: &[usize],
    k: usize,
    part: &mut [u32],
    next_part: &mut u32,
    rng: &mut SmallRng,
) {
    if k == 1 {
        let p = *next_part;
        *next_part += 1;
        for &v in subset {
            part[v] = p;
        }
        return;
    }
    let k_left = k / 2;
    let target_left = subset.len() * k_left / k;

    // BFS ordering of the subset, restarting at unvisited subset vertices.
    let mut in_set = vec![false; g.n()];
    for &v in subset {
        in_set[v] = true;
    }
    let mut order: Vec<usize> = Vec::with_capacity(subset.len());
    let mut visited = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::new();
    let start = subset[rng.gen_range(0..subset.len())];
    visited[start] = true;
    queue.push_back(start);
    let mut scan = 0usize;
    loop {
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                let u = u as usize;
                if in_set[u] && !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
        if order.len() == subset.len() {
            break;
        }
        // Restart for disconnected subsets.
        while scan < subset.len() {
            let v = subset[scan];
            scan += 1;
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
                break;
            }
        }
        if queue.is_empty() {
            break;
        }
    }
    debug_assert_eq!(order.len(), subset.len());
    let (left, right) = order.split_at(target_left);
    let left: Vec<usize> = left.to_vec();
    let right: Vec<usize> = right.to_vec();
    bisect_recursive(g, &left, k_left, part, next_part, rng);
    bisect_recursive(g, &right, k - k_left, part, next_part, rng);
}

/// A perfectly balanced but *fragmenting* partition — the behavioural
/// analogue of p-MeTiS at high part counts.
///
/// The paper attributes p-MeTiS's inferior scalability to "disconnected
/// pieces within a single subdomain, effectively increasing the number of
/// blocks in the block Jacobi or additive Schwarz algorithm".  This
/// constructor makes that mechanism explicit and controllable: it computes a
/// contiguous `k * pieces` partition and merges `pieces` mutually distant
/// regions into each of the `k` parts, yielding near-perfect balance and
/// exactly `pieces` fragments per subdomain.
pub fn partition_fragmented(g: &Graph, k: usize, pieces: usize, seed: u64) -> Partition {
    assert!(pieces >= 1);
    let fine = partition_kway(g, k * pieces, seed);
    // Merge fine part `f` into coarse part `f % k`: consecutive fine parts
    // (which are spatially clustered by the greedy growth) land in
    // *different* coarse parts, so each coarse part collects `pieces`
    // scattered regions.
    let part: Vec<u32> = fine.part.iter().map(|&f| f % k as u32).collect();
    Partition { part, nparts: k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fun3d_mesh::generator::BumpChannelSpec;

    fn mesh_graph() -> Graph {
        BumpChannelSpec::with_dims(12, 8, 8).build().vertex_graph()
    }

    fn check_cover(p: &Partition, n: usize) {
        assert_eq!(p.part.len(), n);
        assert!(p.part.iter().all(|&x| (x as usize) < p.nparts));
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
    }

    #[test]
    fn kway_covers_and_balances() {
        let g = mesh_graph();
        for k in [2usize, 4, 8, 16] {
            let p = partition_kway(&g, k, 1);
            check_cover(&p, g.n());
            let q = p.quality(&g);
            assert!(q.imbalance < 1.10, "k={k}: imbalance {}", q.imbalance);
        }
    }

    #[test]
    fn kway_parts_are_contiguous() {
        let g = mesh_graph();
        let p = partition_kway(&g, 8, 2);
        let q = p.quality(&g);
        assert_eq!(
            q.total_fragments, 8,
            "greedy growing must give connected parts: {q:?}"
        );
    }

    #[test]
    fn pway_is_perfectly_balanced() {
        let g = mesh_graph();
        for k in [2usize, 3, 4, 8, 16] {
            let p = partition_pway(&g, k, 3);
            check_cover(&p, g.n());
            let sizes = p.sizes();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= k, "k={k}: sizes {sizes:?}");
        }
    }

    #[test]
    fn pway_fragments_at_least_as_much_as_kway() {
        let g = mesh_graph();
        let qk = partition_kway(&g, 16, 5).quality(&g);
        let qp = partition_pway(&g, 16, 5).quality(&g);
        assert!(
            qp.total_fragments >= qk.total_fragments,
            "p-style should fragment >= k-style: {} vs {}",
            qp.total_fragments,
            qk.total_fragments
        );
        assert!(qp.imbalance <= qk.imbalance + 1e-9);
    }

    #[test]
    fn edge_cut_counts_cut_edges() {
        let g = Graph::from_edges(4, &[[0, 1], [1, 2], [2, 3]]);
        let p = Partition {
            part: vec![0, 0, 1, 1],
            nparts: 2,
        };
        let q = p.quality(&g);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.interface_vertices, 2);
        assert_eq!(q.total_fragments, 2);
    }

    #[test]
    fn fragments_detected() {
        // Path 0-1-2-3-4-5; part 0 = {0, 1, 4, 5} is fragmented.
        let g = Graph::from_edges(6, &[[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]]);
        let p = Partition {
            part: vec![0, 0, 1, 1, 0, 0],
            nparts: 2,
        };
        let q = p.quality(&g);
        assert_eq!(q.total_fragments, 3);
        assert_eq!(q.max_fragments_per_part, 2);
    }

    #[test]
    fn single_part_is_identity() {
        let g = mesh_graph();
        let p = partition_kway(&g, 1, 0);
        assert!(p.part.iter().all(|&x| x == 0));
        let q = p.quality(&g);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.total_fragments, 1);
    }

    #[test]
    fn fragmented_partition_has_pieces() {
        let g = mesh_graph();
        let p = partition_fragmented(&g, 8, 2, 11);
        let q = p.quality(&g);
        assert_eq!(q.nparts, 8);
        assert!(
            q.total_fragments >= 12,
            "merging distant regions must fragment: {q:?}"
        );
        assert!(q.imbalance < 1.15, "{}", q.imbalance);
        // One piece per part reduces to plain k-way.
        let p1 = partition_fragmented(&g, 8, 1, 11);
        assert_eq!(p1.quality(&g).total_fragments, 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = mesh_graph();
        assert_eq!(partition_kway(&g, 4, 9).part, partition_kway(&g, 4, 9).part);
        assert_eq!(partition_pway(&g, 4, 9).part, partition_pway(&g, 4, 9).part);
    }
}
