//! Subdomain overlap expansion for additive Schwarz preconditioning.
//!
//! An ASM preconditioner with overlap `delta` solves on each subdomain
//! *extended by `delta` layers of neighboring vertices* (Section 2.4.3,
//! Table 4).  This module computes those extended index sets: the original
//! ("owned") vertices first, then each successive layer in ascending vertex
//! order — the ordering convention the restricted-ASM (RASM) application
//! relies on to drop the overlap contribution cheaply.

use fun3d_mesh::graph::Graph;

/// Extend `owned` by `levels` layers of graph neighbors.
///
/// Returns the extended vertex list: `owned` (in its given order) followed by
/// layer 1, layer 2, ..., each layer sorted ascending.  The second element of
/// the tuple is the number of owned vertices (the RASM restriction point).
pub fn expand_overlap(g: &Graph, owned: &[usize], levels: usize) -> (Vec<usize>, usize) {
    let mut in_set = vec![false; g.n()];
    for &v in owned {
        in_set[v] = true;
    }
    let mut result: Vec<usize> = owned.to_vec();
    let mut frontier: Vec<usize> = owned.to_vec();
    for _ in 0..levels {
        let mut next: Vec<usize> = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if !in_set[u] {
                    in_set[u] = true;
                    next.push(u);
                }
            }
        }
        next.sort_unstable();
        result.extend_from_slice(&next);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    (result, owned.len())
}

/// The number of *ghost* vertices an overlap adds (communication volume
/// proxy for the ASM setup phase).
pub fn overlap_ghosts(g: &Graph, owned: &[usize], levels: usize) -> usize {
    expand_overlap(g, owned, levels).0.len() - owned.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<[u32; 2]> = (0..n as u32 - 1).map(|i| [i, i + 1]).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn zero_overlap_is_identity() {
        let g = path(10);
        let (ext, nowned) = expand_overlap(&g, &[3, 4, 5], 0);
        assert_eq!(ext, vec![3, 4, 5]);
        assert_eq!(nowned, 3);
    }

    #[test]
    fn one_level_adds_neighbors() {
        let g = path(10);
        let (ext, nowned) = expand_overlap(&g, &[3, 4, 5], 1);
        assert_eq!(ext, vec![3, 4, 5, 2, 6]);
        assert_eq!(nowned, 3);
    }

    #[test]
    fn two_levels_add_two_rings() {
        let g = path(10);
        let (ext, _) = expand_overlap(&g, &[3, 4, 5], 2);
        assert_eq!(ext, vec![3, 4, 5, 2, 6, 1, 7]);
    }

    #[test]
    fn expansion_saturates_at_graph_boundary() {
        let g = path(4);
        let (ext, _) = expand_overlap(&g, &[0, 1, 2, 3], 3);
        assert_eq!(ext.len(), 4);
        assert_eq!(overlap_ghosts(&g, &[0, 1, 2, 3], 5), 0);
    }

    #[test]
    fn ghost_count_matches() {
        let g = path(10);
        assert_eq!(overlap_ghosts(&g, &[3, 4, 5], 1), 2);
        assert_eq!(overlap_ghosts(&g, &[3, 4, 5], 2), 4);
    }

    #[test]
    fn owned_order_is_preserved() {
        let g = path(10);
        let (ext, _) = expand_overlap(&g, &[5, 3, 4], 1);
        assert_eq!(&ext[..3], &[5, 3, 4]);
    }
}
