//! Greedy boundary refinement (a Fiduccia–Mattheyses-flavored pass).
//!
//! MeTiS follows its construction phase with local refinement; the same
//! pass is useful here to polish the greedy-growing partitions before the
//! interface volumes they induce are measured.  A vertex on the interface
//! moves to an adjacent part when that strictly reduces the edge cut and
//! respects the balance constraint.

use crate::Partition;
use fun3d_mesh::graph::Graph;

/// Refine `part` in place. Returns the number of vertex moves applied.
///
/// `balance_tol` is the allowed max-part-size ratio over ideal (e.g. 1.03);
/// `max_passes` bounds the sweeps (each pass visits every vertex once).
pub fn refine_boundary(
    g: &Graph,
    part: &mut Partition,
    balance_tol: f64,
    max_passes: usize,
) -> usize {
    let n = g.n();
    let k = part.nparts;
    assert_eq!(part.part.len(), n);
    assert!(balance_tol >= 1.0);
    let cap = ((balance_tol * n as f64 / k as f64).ceil() as usize).max(1);
    let mut sizes = part.sizes();
    let mut total_moves = 0usize;

    // Scratch: neighbor counts per part for the vertex under consideration.
    let mut nbr_count = vec![0usize; k];
    let mut touched: Vec<usize> = Vec::new();

    for _ in 0..max_passes {
        let mut moves_this_pass = 0usize;
        for v in 0..n {
            let own = part.part[v] as usize;
            if sizes[own] <= 1 {
                continue; // never empty a part
            }
            // Count neighbors per part (sparse reset via `touched`).
            for &p in &touched {
                nbr_count[p] = 0;
            }
            touched.clear();
            let mut boundary = false;
            for &u in g.neighbors(v) {
                let p = part.part[u as usize] as usize;
                if nbr_count[p] == 0 {
                    touched.push(p);
                }
                nbr_count[p] += 1;
                if p != own {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            // Best strictly-positive-gain move within balance.
            let internal = nbr_count[own];
            let mut best: Option<(usize, usize)> = None; // (gain, target)
            for &p in &touched {
                if p == own || sizes[p] + 1 > cap {
                    continue;
                }
                if nbr_count[p] > internal {
                    let gain = nbr_count[p] - internal;
                    if best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, p));
                    }
                }
            }
            if let Some((_, target)) = best {
                part.part[v] = target as u32;
                sizes[own] -= 1;
                sizes[target] += 1;
                moves_this_pass += 1;
            }
        }
        total_moves += moves_this_pass;
        if moves_this_pass == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition_kway, PartitionQuality};
    use fun3d_mesh::generator::BumpChannelSpec;

    fn quality(g: &Graph, p: &Partition) -> PartitionQuality {
        p.quality(g)
    }

    /// A deliberately bad partition: strided assignment.
    fn strided(n: usize, k: usize) -> Partition {
        Partition {
            part: (0..n).map(|v| (v % k) as u32).collect(),
            nparts: k,
        }
    }

    #[test]
    fn refinement_reduces_cut_of_bad_partition() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        let mut p = strided(g.n(), 4);
        let before = quality(&g, &p).edge_cut;
        let moves = refine_boundary(&g, &mut p, 1.05, 20);
        let after = quality(&g, &p).edge_cut;
        assert!(moves > 0);
        assert!(
            after * 2 < before,
            "refinement should at least halve a strided cut: {before} -> {after}"
        );
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        for seed in [1u64, 5, 9] {
            let mut p = partition_kway(&g, 6, seed);
            let before = quality(&g, &p).edge_cut;
            refine_boundary(&g, &mut p, 1.05, 10);
            let after = quality(&g, &p).edge_cut;
            assert!(after <= before, "seed {seed}: {before} -> {after}");
        }
    }

    #[test]
    fn refinement_respects_balance() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        let mut p = strided(g.n(), 5);
        refine_boundary(&g, &mut p, 1.05, 50);
        let q = quality(&g, &p);
        assert!(q.imbalance <= 1.06, "{}", q.imbalance);
        // Still a cover with nonempty parts.
        assert!(q.sizes.iter().all(|&s| s > 0));
        assert_eq!(q.sizes.iter().sum::<usize>(), g.n());
    }

    #[test]
    fn already_good_partition_is_a_fixpoint_or_close() {
        let g = BumpChannelSpec::with_dims(8, 6, 6).build().vertex_graph();
        let mut p = partition_kway(&g, 4, 2);
        let before = quality(&g, &p).edge_cut;
        let moves = refine_boundary(&g, &mut p, 1.03, 10);
        let after = quality(&g, &p).edge_cut;
        assert!(after <= before);
        // Greedy growing already produces near-local-optimal cuts.
        assert!(
            moves < g.n() / 10,
            "few residual moves expected, got {moves}"
        );
    }

    #[test]
    fn zero_passes_is_a_noop() {
        let g = BumpChannelSpec::with_dims(6, 5, 4).build().vertex_graph();
        let mut p = strided(g.n(), 3);
        let snapshot = p.part.clone();
        assert_eq!(refine_boundary(&g, &mut p, 1.05, 0), 0);
        assert_eq!(p.part, snapshot);
    }
}
