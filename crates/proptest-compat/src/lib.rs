//! In-tree, std-only stand-in for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro with `#![proptest_config(...)]`, range and
//! tuple strategies, `collection::vec`, and the `prop_map` / `prop_flat_map`
//! / `prop_filter` combinators, plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real crate this shim does **no shrinking** and no failure
//! persistence: each test case is generated from a deterministic
//! per-test-function seed, so a failure reproduces exactly on re-run — good
//! enough for the randomized regression tests here, with zero dependencies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`with_cases` is the only knob the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The value source driving a property run.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A deterministic runner; `salt` should identify the test function.
    pub fn deterministic(salt: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(0xF3D0_5EED ^ salt),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// FNV-1a, used to derive a per-test seed from the function name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retry generation until `pred` accepts the value.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property (no shrinking here, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::TestRunner::deterministic($crate::fnv1a(concat!(module_path!(), "::", stringify!($name))));
            for __case in 0..cfg.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), &mut runner),)+);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..5, 0.0f64..1.0), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && (0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn combinators_compose(n in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v))
        }).prop_filter("nonempty", |(_, v)| !v.is_empty())) {
            let (n, v) = n;
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::deterministic(1);
        let mut b = crate::TestRunner::deterministic(1);
        let s = 0usize..100;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
