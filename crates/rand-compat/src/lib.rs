//! In-tree, std-only stand-in for the tiny subset of the `rand` crate this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open/inclusive integer and float ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The container this repo builds in has no network access, so registry
//! crates cannot be fetched; this shim keeps every `use rand::...` in the
//! workspace compiling unchanged.  The generator is xorshift64* seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! tests and mesh generators require (they never ask for cryptographic or
//! cross-version-stable streams).

/// Core uniform-bits interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // 53 uniform mantissa bits in [0, 1).
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u01 as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u01 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u01 < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-distributed nonzero xorshift states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let k = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.gen_range(0..2u32) == b.gen_range(0..2u32))
            .count();
        assert!(
            same < 56,
            "streams for seeds 0/1 nearly identical: {same}/64"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(3));
        let mut seen = [false; 50];
        for &x in &v {
            assert!(!seen[x]);
            seen[x] = true;
        }
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
