//! The shared family-state cache.
//!
//! Keyed by [`FamilyKey`], bounded by entry count with LRU eviction.  A
//! miss inserts an empty entry under the map lock, then builds the
//! [`FamilyState`] *outside* it behind a per-entry `OnceLock`: concurrent
//! requests on the same family all block on the one build and receive the
//! same `Arc`; requests on other families are never blocked by it.

use crate::scenario::{FamilyKey, ScenarioClass};
use crate::state::FamilyState;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache hit/miss/eviction counters (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a (possibly still-building) entry.
    pub hits: u64,
    /// Lookups that inserted a new entry.
    pub misses: u64,
    /// Entries dropped by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    state: OnceLock<Arc<FamilyState>>,
}

struct Inner {
    entries: HashMap<FamilyKey, Arc<Entry>>,
    /// Recency order, oldest first.
    lru: Vec<FamilyKey>,
    stats: CacheStats,
}

/// Bounded, thread-safe cache of [`FamilyState`]s.
pub struct StateCache {
    capacity: usize,
    /// Subdomain count passed to family builds.
    nsubdomains: usize,
    inner: Mutex<Inner>,
}

impl StateCache {
    /// A cache holding at most `capacity` families (minimum 1), partitioning
    /// each family's vertex graph into `nsubdomains` parts.
    pub fn new(capacity: usize, nsubdomains: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            nsubdomains: nsubdomains.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: Vec::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch or build the family state for `scenario`.  Returns the shared
    /// state and whether the lookup hit an existing entry (a hit on an
    /// entry still being built waits for the builder rather than
    /// duplicating the work).
    pub fn get_or_build(&self, scenario: &ScenarioClass) -> (Arc<FamilyState>, bool) {
        let key = scenario.key();
        let (entry, hit) = {
            let mut g = self.inner.lock().unwrap();
            if let Some(e) = g.entries.get(&key) {
                let e = e.clone();
                g.stats.hits += 1;
                // Refresh recency.
                if let Some(p) = g.lru.iter().position(|k| *k == key) {
                    g.lru.remove(p);
                }
                g.lru.push(key);
                (e, true)
            } else {
                g.stats.misses += 1;
                let e = Arc::new(Entry {
                    state: OnceLock::new(),
                });
                g.entries.insert(key, e.clone());
                g.lru.push(key);
                while g.lru.len() > self.capacity {
                    let victim = g.lru.remove(0);
                    g.entries.remove(&victim);
                    g.stats.evictions += 1;
                }
                (e, false)
            }
        };
        // Build outside the map lock: only same-family callers wait here.
        let state = entry
            .state
            .get_or_init(|| Arc::new(FamilyState::build(scenario, self.nsubdomains)))
            .clone();
        (state, hit)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of resident families.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_scenario;

    fn family(nx: usize) -> ScenarioClass {
        let mut sc = tiny_scenario();
        sc.mesh.nx = nx;
        sc
    }

    #[test]
    fn repeat_lookups_share_one_state() {
        let cache = StateCache::new(4, 2);
        let (a, hit_a) = cache.get_or_build(&family(5));
        let (b, hit_b) = cache.get_or_build(&family(5));
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same Arc");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = StateCache::new(2, 1);
        let (a1, _) = cache.get_or_build(&family(4));
        cache.get_or_build(&family(5));
        // Touch family 4 so family 5 is the LRU victim.
        cache.get_or_build(&family(4));
        cache.get_or_build(&family(6));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // 4 survived (same Arc); 5 was evicted and rebuilds on next touch.
        let (a2, hit4) = cache.get_or_build(&family(4));
        assert!(hit4 && Arc::ptr_eq(&a1, &a2));
        let (_, hit5) = cache.get_or_build(&family(5));
        assert!(!hit5, "evicted family must rebuild");
    }

    #[test]
    fn concurrent_same_family_lookups_build_once() {
        let cache = Arc::new(StateCache::new(4, 2));
        let states: Vec<Arc<FamilyState>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.get_or_build(&family(5)).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for st in &states[1..] {
            assert!(
                Arc::ptr_eq(&states[0], st),
                "all concurrent callers must share one build"
            );
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one insert");
        assert_eq!(s.hits, 7);
    }
}
