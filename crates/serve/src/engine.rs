//! The long-running solve engine: worker pool over the bounded queue.
//!
//! Workers pull family batches from the [`JobQueue`], acquire the shared
//! [`FamilyState`] through the [`StateCache`], and run each solve in the
//! batch against the warm state on their own [`ParCtx`] thread team.  The
//! engine never blocks a submitter on solver work: admission is a bounded
//! queue operation, and outcomes are delivered through per-job channels.

use crate::cache::{CacheStats, StateCache};
use crate::queue::{AdmissionPolicy, Job, JobQueue, QueueStats};
use crate::scenario::{
    solution_fingerprint, ScenarioClass, SolveOutcome, SolveRequest, SolveResponse,
};
use fun3d_solver::pseudo::PseudoTransientOptions;
use fun3d_sparse::par::ParCtx;
use fun3d_telemetry::events::EventSink;
use fun3d_telemetry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads pulling from the queue.
    pub workers: usize,
    /// Queue depth bound enforced by admission control.
    pub queue_depth: usize,
    /// What to do with arrivals past the bound.
    pub policy: AdmissionPolicy,
    /// Most same-family jobs one worker pass serves (1 = no batching).
    pub max_batch: usize,
    /// Most families resident in the state cache.
    pub cache_capacity: usize,
    /// Thread-team width each worker's solves run with (the `ParCtx` the
    /// kernels of PR 4 parallelize over).  Also the subdomain count family
    /// partitions are built with.
    pub solver_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 32,
            policy: AdmissionPolicy::Reject,
            max_batch: 8,
            cache_capacity: 4,
            solver_threads: 1,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth bound under [`AdmissionPolicy::Reject`].
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The engine is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "queue full (depth bound {depth}); request rejected")
            }
            SubmitError::Closed => write!(f, "engine closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Waitable handle for one admitted request.
pub struct JobHandle {
    id: u64,
    rx: Receiver<SolveOutcome>,
}

impl JobHandle {
    /// The request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the outcome arrives.  A worker panic surfaces as
    /// [`SolveOutcome::Shed`] rather than a hang.
    pub fn wait(self) -> SolveOutcome {
        self.rx.recv().unwrap_or(SolveOutcome::Shed)
    }
}

/// Aggregate serving counters at shutdown (or any snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Solves completed.
    pub completed: u64,
    /// Worker passes (one shared state acquisition each).
    pub batches: u64,
    /// Completed solves that rode a batch of size > 1.
    pub batched_jobs: u64,
    /// Queue counters.
    pub queue: QueueStats,
    /// Cache counters.
    pub cache: CacheStats,
}

struct Shared {
    queue: JobQueue,
    cache: StateCache,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
}

/// The engine: spawn with [`Engine::start`], feed with [`Engine::submit`],
/// stop with [`Engine::shutdown`] (drains the queue, joins the workers).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    solver_threads: usize,
    queue_depth: usize,
}

impl Engine {
    /// Spawn the worker pool and return the running engine.
    pub fn start(cfg: &EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_depth, cfg.policy),
            cache: StateCache::new(cfg.cache_capacity, cfg.solver_threads.max(1)),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
        });
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("fun3d-serve-{w}"))
                    .spawn(move || worker_loop(&shared, max_batch))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: AtomicU64::new(0),
            solver_threads: cfg.solver_threads.max(1),
            queue_depth: cfg.queue_depth.max(1),
        }
    }

    /// Submit one solve request.  Returns immediately: a handle when
    /// admitted, [`SubmitError::QueueFull`] when rejected at the bound.
    pub fn submit(
        &self,
        scenario: &ScenarioClass,
        nks: &PseudoTransientOptions,
    ) -> Result<JobHandle, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut nks = nks.clone();
        // Solves run on the engine's thread team; a fixed width keeps the
        // PR-4 determinism contract (results depend on the team size, so
        // the engine pins one).
        nks.krylov.par = ParCtx::new(self.solver_threads);
        let (tx, rx) = channel();
        let job = Job {
            req: SolveRequest {
                id,
                scenario: scenario.clone(),
                nks,
            },
            enqueued_at: Instant::now(),
            tx,
        };
        match self.shared.queue.submit(job) {
            Ok(()) => Ok(JobHandle { id, rx }),
            Err(_) => Err(SubmitError::QueueFull {
                depth: self.queue_depth,
            }),
        }
    }

    /// Live snapshot of the serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batched_jobs: self.shared.batched_jobs.load(Ordering::Relaxed),
            queue: self.shared.queue.stats(),
            cache: self.shared.cache.stats(),
        }
    }

    /// Current queue depth (jobs admitted, not yet picked up).
    pub fn queue_depth_now(&self) -> usize {
        self.shared.queue.depth_now()
    }

    /// Close the queue, drain remaining jobs, join the workers, and return
    /// the final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, max_batch: usize) {
    while let Some(batch) = shared.queue.next_batch(max_batch) {
        let picked_up = Instant::now();
        let t0 = Instant::now();
        let (state, hit) = shared.cache.get_or_build(&batch[0].req.scenario);
        let t_setup = t0.elapsed().as_secs_f64();
        let n = batch.len();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        for (i, job) in batch.into_iter().enumerate() {
            let t_queue = picked_up.duration_since(job.enqueued_at).as_secs_f64();
            let t0 = Instant::now();
            let (history, q) =
                state.solve(&job.req.nks, &Registry::disabled(), &EventSink::disabled());
            let t_solve = t0.elapsed().as_secs_f64();
            let latency = job.enqueued_at.elapsed().as_secs_f64();
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if n > 1 {
                shared.batched_jobs.fetch_add(1, Ordering::Relaxed);
            }
            let fingerprint = solution_fingerprint(&q);
            // A dropped handle just means nobody is waiting on this job.
            let _ = job.tx.send(SolveOutcome::Done(Box::new(SolveResponse {
                id: job.req.id,
                history,
                solution: q,
                solution_fingerprint: fingerprint,
                // Only the batch's first job can miss: the rest reuse the
                // state it just built (or found).
                cache_hit: hit || i > 0,
                batch_size: n,
                t_queue_s: t_queue,
                // Shared acquisition is attributed to the job that paid it.
                t_setup_s: if i == 0 { t_setup } else { 0.0 },
                t_solve_s: t_solve,
                latency_s: latency,
            })));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::direct_solve;
    use crate::test_support::{tiny_nks, tiny_scenario};

    #[test]
    fn engine_serves_same_family_requests_from_one_cached_state() {
        let eng = Engine::start(&EngineConfig {
            workers: 2,
            queue_depth: 32,
            max_batch: 4,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..6).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let (hd, qd) = direct_solve(&sc, &nks);
        let mut hits = 0;
        for h in handles {
            let resp = h.wait().done().expect("no shedding under Reject");
            assert!(resp.history.converged);
            assert_eq!(resp.history.nsteps(), hd.nsteps());
            assert_eq!(resp.solution, qd, "bitwise identical to the direct path");
            assert_eq!(
                resp.solution_fingerprint,
                crate::scenario::solution_fingerprint(&qd)
            );
            assert!(resp.latency_s >= resp.t_solve_s);
            hits += resp.cache_hit as usize;
        }
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache.misses, 1, "one family, one build");
        assert_eq!(hits, 5);
        assert_eq!(stats.queue.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_hanging() {
        // One worker, depth 1: a burst must split into admitted + rejected
        // and every admitted job must resolve.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 1,
            max_batch: 1,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let mut admitted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..12 {
            match eng.submit(&sc, &nks) {
                Ok(h) => admitted.push(h),
                Err(SubmitError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        for h in admitted {
            assert!(h.wait().done().is_some());
        }
        let stats = eng.shutdown();
        assert_eq!(stats.queue.rejected, rejected);
        assert_eq!(stats.completed + rejected, 12);
        assert!(stats.queue.max_depth <= 1);
    }

    #[test]
    fn shed_policy_resolves_dropped_jobs_as_shed() {
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 1,
            policy: AdmissionPolicy::ShedOldest,
            max_batch: 1,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..10).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        let done = outcomes
            .iter()
            .filter(|o| matches!(o, SolveOutcome::Done(_)))
            .count();
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, SolveOutcome::Shed))
            .count();
        assert_eq!(done + shed, 10);
        let stats = eng.shutdown();
        assert_eq!(stats.queue.shed, shed as u64);
        assert_eq!(stats.queue.rejected, 0, "shedding admits every arrival");
    }

    #[test]
    fn batched_jobs_reuse_one_setup() {
        // One worker and a held queue: submit a burst before the worker can
        // start, so batching has material to work with.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 32,
            max_batch: 8,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..8).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().done().unwrap())
            .collect();
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 8);
        // Fewer worker passes than jobs proves batching happened; jobs
        // beyond the first in a batch carry zero shared-setup cost.
        assert!(
            stats.batches < 8,
            "expected batching, got {} passes",
            stats.batches
        );
        let free_setups = responses
            .iter()
            .filter(|r| r.batch_size > 1 && r.t_setup_s == 0.0)
            .count();
        assert!(free_setups > 0);
    }
}
