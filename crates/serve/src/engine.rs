//! The long-running solve engine: worker pool over the bounded queue.
//!
//! Workers pull family batches from the [`JobQueue`], acquire the shared
//! [`FamilyState`] through the [`StateCache`], and run each solve in the
//! batch against the warm state on their own [`ParCtx`] thread team.  The
//! engine never blocks a submitter on solver work: admission is a bounded
//! queue operation, and outcomes are delivered through per-job channels.
//!
//! ## Live telemetry
//!
//! With [`EngineConfig::live`] set, every completed request additionally
//! feeds a cumulative latency histogram, an SLO error-budget counter, a
//! per-request [`EventRecord::RequestTrace`], and a per-worker [`Registry`]
//! whose `serve/queue` → `serve/setup` → `serve/solve` → `serve/respond`
//! events render as one chrome-trace lane per worker.  The solver itself
//! always runs with disabled telemetry handles, so solutions are bitwise
//! identical whether live telemetry is on or off.  When off, the entire
//! live path costs one relaxed atomic load per request.

use crate::cache::{CacheStats, StateCache};
use crate::queue::{AdmissionPolicy, Job, JobQueue, QueueStats};
use crate::scenario::{
    solution_fingerprint, ScenarioClass, SolveOutcome, SolveRequest, SolveResponse,
};
use fun3d_solver::pseudo::PseudoTransientOptions;
use fun3d_sparse::par::ParCtx;
use fun3d_telemetry::events::{EventRecord, EventSink};
use fun3d_telemetry::hist::LogHistogram;
use fun3d_telemetry::{Registry, Snapshot, TimeDomain};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads pulling from the queue.
    pub workers: usize,
    /// Queue depth bound enforced by admission control.
    pub queue_depth: usize,
    /// What to do with arrivals past the bound.
    pub policy: AdmissionPolicy,
    /// Most same-family jobs one worker pass serves (1 = no batching).
    pub max_batch: usize,
    /// Most families resident in the state cache.
    pub cache_capacity: usize,
    /// Thread-team width each worker's solves run with (the `ParCtx` the
    /// kernels of PR 4 parallelize over).  Also the subdomain count family
    /// partitions are built with.
    pub solver_threads: usize,
    /// Latency objective for live telemetry.  `None` (the default) keeps
    /// every live structure unallocated and the per-request overhead at one
    /// relaxed atomic load.
    pub live: Option<SloConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 32,
            policy: AdmissionPolicy::Reject,
            max_batch: 8,
            cache_capacity: 4,
            solver_threads: 1,
            live: None,
        }
    }
}

/// A latency service-level objective: at most `budget_frac` of completed
/// requests may exceed `latency_target_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// End-to-end latency target in seconds.
    pub latency_target_s: f64,
    /// Fraction of requests allowed over the target (the error budget).
    pub budget_frac: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            latency_target_s: 0.25,
            budget_frac: 0.05,
        }
    }
}

/// Coarse engine health derived from a [`HealthSnapshot`] window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Inside the error budget, no admission refusals.
    Ok,
    /// Burning error budget faster than allowed (`burn_rate > 1`).
    Degraded,
    /// Admission control refused work in the window, or the queue sits at
    /// its depth bound.
    Saturated,
}

impl HealthState {
    /// Stable numeric code for reports and gates: 0 ok, 1 degraded,
    /// 2 saturated (higher is worse, so the gate treats it lower-is-better).
    pub fn code(self) -> u64 {
        match self {
            HealthState::Ok => 0,
            HealthState::Degraded => 1,
            HealthState::Saturated => 2,
        }
    }

    /// Stable string label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Saturated => "saturated",
        }
    }
}

/// One windowed health observation: everything since the previous
/// [`Engine::health`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// The derived state.
    pub state: HealthState,
    /// Error-budget burn rate in the window: the observed over-target
    /// fraction divided by the budget fraction.  1.0 spends the budget
    /// exactly; above 1.0 is degraded.
    pub burn_rate: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Requests picked up but not yet answered at snapshot time.
    pub in_flight: u64,
    /// Requests completed in the window.
    pub window_completed: u64,
    /// Window completions that exceeded the latency target.
    pub window_over_target: u64,
    /// Window arrivals refused by admission control (rejected + shed).
    pub window_refused: u64,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth bound under [`AdmissionPolicy::Reject`].
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The engine is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "queue full (depth bound {depth}); request rejected")
            }
            SubmitError::Closed => write!(f, "engine closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Waitable handle for one admitted request.
pub struct JobHandle {
    id: u64,
    rx: Receiver<SolveOutcome>,
}

impl JobHandle {
    /// The request id this handle tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the outcome arrives.  A worker panic surfaces as
    /// [`SolveOutcome::Shed`] rather than a hang.
    pub fn wait(self) -> SolveOutcome {
        self.rx.recv().unwrap_or(SolveOutcome::Shed)
    }
}

/// Aggregate serving counters at shutdown (or any snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Solves completed.
    pub completed: u64,
    /// Completed solves that aborted on a solver anomaly
    /// ([`SolveOutcome::Failed`]).
    pub failed: u64,
    /// Worker passes (one shared state acquisition each).
    pub batches: u64,
    /// Completed solves that rode a batch of size > 1.
    pub batched_jobs: u64,
    /// Gauge: jobs admitted and still waiting in the queue right now.
    pub queue_depth: u64,
    /// Gauge: jobs picked up by a worker and not yet answered right now.
    pub in_flight: u64,
    /// Queue counters.
    pub queue: QueueStats,
    /// Cache counters.
    pub cache: CacheStats,
}

/// Live-telemetry state, allocated only when [`EngineConfig::live`] is set.
struct Live {
    slo: SloConfig,
    /// Time origin for trace-lane event starts (engine start).
    epoch: Instant,
    /// Per-request trace records ([`EventRecord::RequestTrace`]).
    sink: EventSink,
    /// One registry per worker — "rank" = worker index, so chrome traces
    /// get one lane per worker.
    regs: Vec<Registry>,
    /// Cumulative end-to-end latency histogram (diff two snapshots with
    /// `LogHistogram::since` for windowed quantiles).
    lat_hist: Mutex<LogHistogram>,
    /// Completions that exceeded the latency target or failed on an
    /// anomaly (both burn error budget).
    over_target: AtomicU64,
    /// Counter values at the previous `health()` call.
    window: Mutex<HealthWindow>,
    /// Whether the flight recorder has already been dumped for SLO
    /// saturation (one dump per engine, not one per health poll).
    saturation_dumped: AtomicBool,
}

#[derive(Default, Clone, Copy)]
struct HealthWindow {
    completed: u64,
    over_target: u64,
    refused: u64,
}

struct Shared {
    queue: JobQueue,
    cache: StateCache,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    in_flight: AtomicU64,
    /// The one-flag fast gate workers read per request.
    live_on: AtomicBool,
    live: Option<Live>,
}

/// The engine: spawn with [`Engine::start`], feed with [`Engine::submit`],
/// stop with [`Engine::shutdown`] (drains the queue, joins the workers).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    solver_threads: usize,
    queue_depth: usize,
}

impl Engine {
    /// Spawn the worker pool and return the running engine.
    pub fn start(cfg: &EngineConfig) -> Self {
        let nworkers = cfg.workers.max(1);
        let live = cfg.live.map(|slo| Live {
            slo,
            epoch: Instant::now(),
            sink: EventSink::enabled(),
            regs: (0..nworkers).map(Registry::enabled).collect(),
            lat_hist: Mutex::new(LogHistogram::new()),
            over_target: AtomicU64::new(0),
            window: Mutex::new(HealthWindow::default()),
            saturation_dumped: AtomicBool::new(false),
        });
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_depth, cfg.policy),
            cache: StateCache::new(cfg.cache_capacity, cfg.solver_threads.max(1)),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            live_on: AtomicBool::new(live.is_some()),
            live,
        });
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..nworkers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("fun3d-serve-{w}"))
                    .spawn(move || worker_loop(&shared, max_batch, w))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            workers,
            next_id: AtomicU64::new(0),
            solver_threads: cfg.solver_threads.max(1),
            queue_depth: cfg.queue_depth.max(1),
        }
    }

    /// Submit one solve request.  Returns immediately: a handle when
    /// admitted, [`SubmitError::QueueFull`] when rejected at the bound.
    pub fn submit(
        &self,
        scenario: &ScenarioClass,
        nks: &PseudoTransientOptions,
    ) -> Result<JobHandle, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut nks = nks.clone();
        // Solves run on the engine's thread team; a fixed width keeps the
        // PR-4 determinism contract (results depend on the team size, so
        // the engine pins one).
        nks.krylov.par = ParCtx::new(self.solver_threads);
        let (tx, rx) = channel();
        let job = Job {
            req: SolveRequest {
                id,
                scenario: scenario.clone(),
                nks,
            },
            enqueued_at: Instant::now(),
            tx,
        };
        match self.shared.queue.submit(job) {
            Ok(()) => Ok(JobHandle { id, rx }),
            Err(_) => Err(SubmitError::QueueFull {
                depth: self.queue_depth,
            }),
        }
    }

    /// Live snapshot of the serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batched_jobs: self.shared.batched_jobs.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.depth_now() as u64,
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            queue: self.shared.queue.stats(),
            cache: self.shared.cache.stats(),
        }
    }

    /// Current queue depth (jobs admitted, not yet picked up).
    pub fn queue_depth_now(&self) -> usize {
        self.shared.queue.depth_now()
    }

    /// Whether live telemetry is on.
    pub fn live_enabled(&self) -> bool {
        self.shared.live_on.load(Ordering::Relaxed)
    }

    /// Cumulative end-to-end latency histogram (empty when live telemetry
    /// is off).  Callers diff two snapshots with [`LogHistogram::since`]
    /// for windowed quantiles.
    pub fn latency_hist(&self) -> LogHistogram {
        match &self.shared.live {
            None => LogHistogram::new(),
            Some(live) => live
                .lat_hist
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }

    /// Take every per-request trace emitted so far
    /// ([`EventRecord::RequestTrace`]); empty when live telemetry is off.
    pub fn drain_trace_events(&self) -> Vec<EventRecord> {
        match &self.shared.live {
            None => Vec::new(),
            Some(live) => live.sink.drain(),
        }
    }

    /// One telemetry snapshot per worker (rank = worker index), carrying
    /// the `serve/*` segment events for chrome-trace lanes.  Empty when
    /// live telemetry is off.
    pub fn telemetry_snapshots(&self) -> Vec<Snapshot> {
        match &self.shared.live {
            None => Vec::new(),
            Some(live) => live.regs.iter().map(|r| r.snapshot()).collect(),
        }
    }

    /// Windowed health observation: burn rate and refusals since the
    /// previous `health()` call.  `None` when live telemetry is off.
    pub fn health(&self) -> Option<HealthSnapshot> {
        let live = self.shared.live.as_ref()?;
        let stats = self.stats();
        let over = live.over_target.load(Ordering::Relaxed);
        let refused = stats.queue.rejected + stats.queue.shed;
        let mut prev = live.window.lock().unwrap_or_else(|e| e.into_inner());
        let window_completed = stats.completed.saturating_sub(prev.completed);
        let window_over_target = over.saturating_sub(prev.over_target);
        let window_refused = refused.saturating_sub(prev.refused);
        *prev = HealthWindow {
            completed: stats.completed,
            over_target: over,
            refused,
        };
        drop(prev);
        let burn_rate = if window_completed > 0 && live.slo.budget_frac > 0.0 {
            (window_over_target as f64 / window_completed as f64) / live.slo.budget_frac
        } else {
            0.0
        };
        let saturated = window_refused > 0 || stats.queue_depth >= self.queue_depth as u64;
        let state = if saturated {
            HealthState::Saturated
        } else if burn_rate > 1.0 {
            HealthState::Degraded
        } else {
            HealthState::Ok
        };
        // First saturation observation dumps the flight recorder (if armed):
        // the rings hold the requests leading up to the overload.
        if state == HealthState::Saturated && !live.saturation_dumped.swap(true, Ordering::Relaxed)
        {
            fun3d_telemetry::blackbox::dump_now("slo_saturation");
        }
        Some(HealthSnapshot {
            state,
            burn_rate,
            queue_depth: stats.queue_depth,
            in_flight: stats.in_flight,
            window_completed,
            window_over_target,
            window_refused,
        })
    }

    /// Close the queue, drain remaining jobs, join the workers, and return
    /// the final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, max_batch: usize, w: usize) {
    while let Some(batch) = shared.queue.next_batch(max_batch) {
        let picked_up = Instant::now();
        let n = batch.len();
        shared.in_flight.fetch_add(n as u64, Ordering::Relaxed);
        let (state, hit) = shared.cache.get_or_build(&batch[0].req.scenario);
        let t_setup = picked_up.elapsed().as_secs_f64();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        for (i, job) in batch.into_iter().enumerate() {
            let enq = job.enqueued_at;
            let id = job.req.id;
            // Segment boundaries: queue (admission → pickup), batch
            // (pickup → this solve's start: state acquisition plus earlier
            // same-batch solves), solve, respond (fingerprint + assembly).
            // Measured off successive Instants, so the four segments
            // partition the end-to-end latency exactly.
            let t_queue = picked_up.duration_since(enq).as_secs_f64();
            let s0 = Instant::now();
            let t_batch = s0.duration_since(picked_up).as_secs_f64();
            let (history, q) =
                state.solve(&job.req.nks, &Registry::disabled(), &EventSink::disabled());
            let s1 = Instant::now();
            let t_solve = s1.duration_since(s0).as_secs_f64();
            let fingerprint = solution_fingerprint(&q);
            let s2 = Instant::now();
            let t_respond = s2.duration_since(s1).as_secs_f64();
            let latency = s2.duration_since(enq).as_secs_f64();
            // Only the batch's first job can miss: the rest reuse the
            // state it just built (or found).
            let cache_hit = hit || i > 0;
            let anomalous = history.anomaly.is_some();
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if anomalous {
                shared.failed.fetch_add(1, Ordering::Relaxed);
            }
            if n > 1 {
                shared.batched_jobs.fetch_add(1, Ordering::Relaxed);
            }
            // Decrement before the send so a completed wait() observes the
            // gauge already settled.
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            // Live recording precedes the send for the same reason: once a
            // waiter unblocks, its trace and histogram entry are visible.
            if shared.live_on.load(Ordering::Relaxed) {
                if let Some(live) = &shared.live {
                    live.lat_hist
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(latency);
                    // An anomaly-terminated request burns error budget even
                    // when it aborted quickly enough to meet the target.
                    if anomalous || latency > live.slo.latency_target_s {
                        live.over_target.fetch_add(1, Ordering::Relaxed);
                    }
                    live.sink.emit(EventRecord::RequestTrace {
                        id,
                        worker: w as u64,
                        batch_size: n as u64,
                        cache_hit,
                        t_queue_s: t_queue,
                        t_batch_s: t_batch,
                        t_setup_s: if i == 0 { t_setup } else { 0.0 },
                        t_solve_s: t_solve,
                        t_respond_s: t_respond,
                        latency_s: latency,
                    });
                    // Segment events on this worker's lane, timed against
                    // the shared engine epoch so lanes line up.
                    let reg = &live.regs[w];
                    let rel = |at: Instant| {
                        at.checked_duration_since(live.epoch)
                            .map_or(0.0, |d| d.as_secs_f64())
                    };
                    reg.record_event("serve/queue", TimeDomain::Measured, rel(enq), t_queue);
                    if i == 0 && t_setup > 0.0 {
                        reg.record_event(
                            "serve/setup",
                            TimeDomain::Measured,
                            rel(picked_up),
                            t_setup,
                        );
                    }
                    reg.record_event("serve/solve", TimeDomain::Measured, rel(s0), t_solve);
                    reg.record_event("serve/respond", TimeDomain::Measured, rel(s1), t_respond);
                }
            }
            let response = Box::new(SolveResponse {
                id,
                history,
                solution: q,
                solution_fingerprint: fingerprint,
                cache_hit,
                batch_size: n,
                t_queue_s: t_queue,
                t_batch_s: t_batch,
                // Shared acquisition is attributed to the job that paid it.
                t_setup_s: if i == 0 { t_setup } else { 0.0 },
                t_solve_s: t_solve,
                t_respond_s: t_respond,
                latency_s: latency,
            });
            // A dropped handle just means nobody is waiting on this job.
            let _ = job.tx.send(if anomalous {
                SolveOutcome::Failed(response)
            } else {
                SolveOutcome::Done(response)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::direct_solve;
    use crate::test_support::{tiny_nks, tiny_scenario};

    #[test]
    fn engine_serves_same_family_requests_from_one_cached_state() {
        let eng = Engine::start(&EngineConfig {
            workers: 2,
            queue_depth: 32,
            max_batch: 4,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..6).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let (hd, qd) = direct_solve(&sc, &nks);
        let mut hits = 0;
        for h in handles {
            let resp = h.wait().done().expect("no shedding under Reject");
            assert!(resp.history.converged);
            assert_eq!(resp.history.nsteps(), hd.nsteps());
            assert_eq!(resp.solution, qd, "bitwise identical to the direct path");
            assert_eq!(
                resp.solution_fingerprint,
                crate::scenario::solution_fingerprint(&qd)
            );
            assert!(resp.latency_s >= resp.t_solve_s);
            hits += resp.cache_hit as usize;
        }
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache.misses, 1, "one family, one build");
        assert_eq!(hits, 5);
        assert_eq!(stats.queue.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_hanging() {
        // One worker, depth 1: a burst must split into admitted + rejected
        // and every admitted job must resolve.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 1,
            max_batch: 1,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let mut admitted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..12 {
            match eng.submit(&sc, &nks) {
                Ok(h) => admitted.push(h),
                Err(SubmitError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        for h in admitted {
            assert!(h.wait().done().is_some());
        }
        let stats = eng.shutdown();
        assert_eq!(stats.queue.rejected, rejected);
        assert_eq!(stats.completed + rejected, 12);
        assert!(stats.queue.max_depth <= 1);
    }

    #[test]
    fn shed_policy_resolves_dropped_jobs_as_shed() {
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 1,
            policy: AdmissionPolicy::ShedOldest,
            max_batch: 1,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..10).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        let done = outcomes
            .iter()
            .filter(|o| matches!(o, SolveOutcome::Done(_)))
            .count();
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, SolveOutcome::Shed))
            .count();
        assert_eq!(done + shed, 10);
        let stats = eng.shutdown();
        assert_eq!(stats.queue.shed, shed as u64);
        assert_eq!(stats.queue.rejected, 0, "shedding admits every arrival");
    }

    #[test]
    fn batched_jobs_reuse_one_setup() {
        // One worker and a held queue: submit a burst before the worker can
        // start, so batching has material to work with.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 32,
            max_batch: 8,
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..8).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().done().unwrap())
            .collect();
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 8);
        // Fewer worker passes than jobs proves batching happened; jobs
        // beyond the first in a batch carry zero shared-setup cost.
        assert!(
            stats.batches < 8,
            "expected batching, got {} passes",
            stats.batches
        );
        let free_setups = responses
            .iter()
            .filter(|r| r.batch_size > 1 && r.t_setup_s == 0.0)
            .count();
        assert!(free_setups > 0);
    }

    /// The four response segments must partition the end-to-end latency
    /// (they are measured off successive `Instant`s, so only float rounding
    /// separates the sum from the direct measurement).
    fn assert_segments_partition(
        t_queue: f64,
        t_batch: f64,
        t_solve: f64,
        t_respond: f64,
        latency: f64,
    ) {
        let sum = t_queue + t_batch + t_solve + t_respond;
        assert!(
            (sum - latency).abs() <= 1e-9 * latency.max(1e-9),
            "segments {sum} must partition latency {latency}"
        );
    }

    #[test]
    fn live_telemetry_observes_without_perturbing_results() {
        let sc = tiny_scenario();
        let nks = tiny_nks();
        // Dark engine: live accessors are inert, one reference run.
        let dark = Engine::start(&EngineConfig {
            workers: 1,
            max_batch: 4,
            ..Default::default()
        });
        assert!(!dark.live_enabled());
        let handles: Vec<_> = (0..4).map(|_| dark.submit(&sc, &nks).unwrap()).collect();
        let dark_responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().done().unwrap())
            .collect();
        assert!(dark.health().is_none());
        assert!(dark.latency_hist().is_empty());
        assert!(dark.drain_trace_events().is_empty());
        assert!(dark.telemetry_snapshots().is_empty());
        dark.shutdown();
        // Live engine: same submissions, full observation.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            max_batch: 4,
            live: Some(SloConfig::default()),
            ..Default::default()
        });
        assert!(eng.live_enabled());
        let handles: Vec<_> = (0..4).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().done().unwrap())
            .collect();
        for (r, d) in responses.iter().zip(&dark_responses) {
            assert_eq!(
                r.solution, d.solution,
                "live telemetry must not perturb solver results"
            );
            assert_eq!(r.solution_fingerprint, d.solution_fingerprint);
            assert_segments_partition(
                r.t_queue_s,
                r.t_batch_s,
                r.t_solve_s,
                r.t_respond_s,
                r.latency_s,
            );
            // Batch assembly contains the shared-state acquisition.
            assert!(r.t_batch_s + 1e-12 >= r.t_setup_s);
        }
        // One trace per completed request, same partition contract.
        let traces = eng.drain_trace_events();
        assert_eq!(traces.len(), 4);
        let mut ids: Vec<u64> = Vec::new();
        for ev in &traces {
            match ev {
                EventRecord::RequestTrace {
                    id,
                    worker,
                    t_queue_s,
                    t_batch_s,
                    t_solve_s,
                    t_respond_s,
                    latency_s,
                    ..
                } => {
                    ids.push(*id);
                    assert_eq!(*worker, 0, "single-worker engine has one lane");
                    assert_segments_partition(
                        *t_queue_s,
                        *t_batch_s,
                        *t_solve_s,
                        *t_respond_s,
                        *latency_s,
                    );
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Draining empties the sink.
        assert!(eng.drain_trace_events().is_empty());
        // The latency histogram saw every completion.
        assert_eq!(eng.latency_hist().count(), 4);
        // One lane per worker carrying the segment events.
        let snaps = eng.telemetry_snapshots();
        assert_eq!(snaps.len(), 1);
        let paths: Vec<&str> = snaps[0].spans.iter().map(|s| s.path.as_str()).collect();
        for p in ["serve/queue", "serve/setup", "serve/solve", "serve/respond"] {
            assert!(paths.contains(&p), "missing lane span {p} in {paths:?}");
        }
        eng.shutdown();
    }

    #[test]
    fn anomalous_solves_fail_the_request_and_burn_error_budget() {
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            max_batch: 1,
            live: Some(SloConfig {
                latency_target_s: 1e9, // latency alone never burns budget here
                budget_frac: 0.05,
            }),
            ..Default::default()
        });
        let sc = tiny_scenario();
        let ok = eng.submit(&sc, &tiny_nks()).unwrap().wait();
        assert!(!ok.is_failed());
        assert!(ok.done().is_some());
        // A wedged solve: zero Krylov iterations means a zero Newton update,
        // so the residual is bitwise flat every step and the health
        // monitor's stagnation detector must trip.
        let mut wedged = tiny_nks();
        wedged.krylov.max_iters = 0;
        wedged.max_steps = 40;
        wedged.target_reduction = 1e-300;
        let out = eng.submit(&sc, &wedged).unwrap().wait();
        assert!(out.is_failed());
        let resp = out.response().expect("failed outcomes carry the response");
        let anomaly = resp
            .history
            .anomaly
            .as_ref()
            .expect("failed outcome must carry the anomaly verdict");
        assert_eq!(anomaly.kind, fun3d_solver::health::AnomalyKind::Stagnation);
        // The failure burns error budget despite the sky-high latency target.
        let h = eng.health().unwrap();
        assert_eq!(h.window_completed, 2);
        assert_eq!(h.window_over_target, 1);
        assert_eq!(h.state, HealthState::Degraded);
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn stats_expose_queue_and_in_flight_gauges() {
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            max_batch: 2,
            ..Default::default()
        });
        let s0 = eng.stats();
        assert_eq!((s0.queue_depth, s0.in_flight), (0, 0));
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let handles: Vec<_> = (0..6).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
        for h in handles {
            assert!(h.wait().done().is_some());
        }
        // in_flight is decremented before each response is sent, so after
        // every wait() returns both gauges are settled.
        let s = eng.stats();
        assert_eq!((s.queue_depth, s.in_flight), (0, 0));
        assert_eq!(s.completed, 6);
        let final_stats = eng.shutdown();
        assert_eq!((final_stats.queue_depth, final_stats.in_flight), (0, 0));
    }

    #[test]
    fn health_reports_saturation_then_burn_then_recovery() {
        // Zero latency target: every completion burns budget, so once the
        // overload clears, the engine reads degraded, then recovers when a
        // window sees no completions at all.
        let eng = Engine::start(&EngineConfig {
            workers: 1,
            queue_depth: 1,
            max_batch: 1,
            live: Some(SloConfig {
                latency_target_s: 0.0,
                budget_frac: 0.05,
            }),
            ..Default::default()
        });
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let mut admitted = Vec::new();
        for _ in 0..24 {
            if let Ok(h) = eng.submit(&sc, &nks) {
                admitted.push(h);
            }
        }
        assert!(
            admitted.len() < 24,
            "depth-1 queue must refuse part of an instant 24-burst"
        );
        let h1 = eng.health().expect("live engine has health");
        assert_eq!(h1.state, HealthState::Saturated);
        assert!(h1.window_refused > 0);
        for h in admitted {
            assert!(h.wait().done().is_some());
        }
        let h2 = eng.health().unwrap();
        assert_eq!(h2.state, HealthState::Degraded);
        assert!(h2.burn_rate > 1.0);
        assert_eq!(h2.window_refused, 0);
        assert!(h2.window_completed > 0);
        assert_eq!(h2.window_over_target, h2.window_completed);
        let h3 = eng.health().unwrap();
        assert_eq!(h3.state, HealthState::Ok);
        assert_eq!(h3.burn_rate, 0.0);
        assert_eq!(h3.window_completed, 0);
        eng.shutdown();
    }
}
