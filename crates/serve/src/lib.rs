//! `fun3d-serve`: a batched multi-scenario solve engine.
//!
//! The paper solves one case at a time; the production target is a
//! long-running engine serving many concurrent solve requests.  This crate
//! supplies the serving layer over the existing stack:
//!
//! * [`scenario`] — [`ScenarioClass`] (mesh family + physics + layout), its
//!   bit-exact [`FamilyKey`], and the request/response types.
//! * [`state`] — [`FamilyState`]: the immutable per-family state (ordered
//!   mesh, vertex-graph partition, symbolic ILU(k) and BCSR structure
//!   templates) split out of the solve path and shared behind an `Arc`.
//!   [`state::direct_solve`] is the uncached reference path; cached solves
//!   are **bitwise identical** to it (the templates only skip symbolic
//!   setup — numerics rerun in full, pinned by tests).
//! * [`cache`] — [`StateCache`]: bounded LRU over family states with
//!   build-once semantics under concurrency (per-entry `OnceLock`).
//! * [`queue`] — [`JobQueue`] *(crate-internal)* plus the public
//!   [`AdmissionPolicy`] / [`QueueStats`]: a bounded queue whose admission
//!   controller rejects or sheds load past the depth bound, and whose
//!   dequeue groups same-family jobs into batches.
//! * [`engine`] — [`Engine`]: the worker pool.  Workers pull family
//!   batches, acquire shared state through the cache, and run each solve
//!   warm on a pinned [`fun3d_sparse::par::ParCtx`] thread team.  With
//!   [`EngineConfig::live`] set ([`SloConfig`]), the engine additionally
//!   keeps a live latency histogram, emits one request trace per solve
//!   (queue → batch → solve → respond segments that partition the
//!   end-to-end latency), fills one chrome-trace lane per worker, and
//!   derives windowed SLO health ([`HealthSnapshot`]).
//!
//! The serving path is off by default everywhere: nothing in the solver or
//! driver changes behavior unless an [`Engine`] is constructed, and live
//! telemetry is itself off by default — solutions are bitwise identical
//! with it on or off.

pub mod cache;
pub mod engine;
pub mod queue;
pub mod scenario;
pub mod state;

pub use cache::{CacheStats, StateCache};
pub use engine::{
    Engine, EngineConfig, EngineStats, HealthSnapshot, HealthState, JobHandle, SloConfig,
    SubmitError,
};
pub use queue::{AdmissionPolicy, QueueStats};
pub use scenario::{
    solution_fingerprint, FamilyKey, ScenarioClass, SolveOutcome, SolveRequest, SolveResponse,
};
pub use state::{direct_solve, FamilyState};

/// Small, fast presets for tests and smoke experiments.
pub mod presets {
    use crate::scenario::ScenarioClass;
    use fun3d_mesh::generator::BumpChannelSpec;
    use fun3d_solver::gmres::GmresOptions;
    use fun3d_solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
    use fun3d_sparse::ilu::IluOptions;

    /// A tiny tuned-layout incompressible scenario (6×5×4 vertices) that
    /// solves in milliseconds.
    pub fn tiny_scenario() -> ScenarioClass {
        let mut sc = ScenarioClass::small();
        sc.mesh = BumpChannelSpec::with_dims(6, 5, 4);
        sc
    }

    /// Quick ΨNKS options for smoke-scale serving: few steps, loose
    /// tolerances, ILU(1).
    pub fn tiny_nks() -> PseudoTransientOptions {
        PseudoTransientOptions {
            cfl0: 5.0,
            cfl_exponent: 1.2,
            cfl_max: 1e6,
            max_steps: 40,
            target_reduction: 1e-6,
            krylov: GmresOptions {
                restart: 20,
                rtol: 1e-2,
                max_iters: 120,
                ..Default::default()
            },
            precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
            second_order_switch: None,
            matrix_free: false,
            line_search: true,
            bcsr_block: None,
            forcing: Forcing::Constant,
            pc_refresh: 1,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    pub use crate::presets::{tiny_nks, tiny_scenario};
}
